//! Serving quickstart: an async batched front over a sharded multi-SoC
//! scorer, with end-to-end telemetry.  32 utterances are enqueued into the
//! bounded request queue, two decoder workers coalesce them into
//! micro-batches over their own warmed scorers, every request is traced
//! admission-to-finish into a JSONL run directory, and the unified metrics
//! registry plus the stream-level hardware report show what the sharded
//! machines did.
//!
//! Run with: `cargo run --example serving --release`
//!
//! The run directory defaults to `target/obs-demo`; set `LVCSR_OBS_DIR` to
//! write the `facts.jsonl` somewhere else (CI points it at a scratch dir and
//! validates the document with the `obs_validate` tool).

use lvcsr::corpus::{align_wer, TaskConfig, TaskGenerator, WerScore};
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::obs::{ObsSink, RunDirSink, Telemetry};
use lvcsr::serve::{AsrServer, ServeConfig};
use lvcsr::LvcsrError;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), LvcsrError> {
    // 1. A synthetic task and a recogniser whose backend shards the
    //    active-senone set across four SoC instances.
    let task = TaskGenerator::new(2024).generate(&TaskConfig::small())?;
    let recognizer = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig::sharded_hardware(4),
    )?;

    // 2. Telemetry: an append-only run directory receiving one JSONL fact
    //    per span event and snapshot.  Installing the handle as the process
    //    global lets the shard pool attribute its dispatch events to the
    //    request trace that triggered them.
    let obs_dir = std::env::var("LVCSR_OBS_DIR").unwrap_or_else(|_| "target/obs-demo".to_string());
    // The sink appends; start each demo run from a fresh document so the
    // file always holds exactly one validatable run.
    let _ = std::fs::remove_file(std::path::Path::new(&obs_dir).join("facts.jsonl"));
    let sink = Arc::new(RunDirSink::create(&obs_dir).map_err(|e| {
        lvcsr::serve::ServeError::InvalidConfig(format!("cannot create run dir {obs_dir}: {e}"))
    })?);
    let telemetry = Telemetry::to_sink(sink.clone() as Arc<dyn ObsSink>);
    lvcsr::obs::set_global(telemetry.clone());

    // 3. The serving front: a bounded queue (typed backpressure when full)
    //    feeding two decoder workers, each coalescing micro-batches of up to
    //    8 requests (or 2 ms) through its own long-lived sharded scorer.
    let server = AsrServer::spawn_observed(
        recognizer,
        ServeConfig::default()
            .max_pending(64)
            .max_batch(8)
            .max_batch_delay(Duration::from_millis(2))
            .workers(2),
        telemetry,
    )?;

    // 4. Enqueue 32 utterances; every submit returns a future immediately.
    let test_set = task.synthesize_test_set(32, 3, 0.3);
    let pending: Vec<_> = test_set
        .iter()
        .map(|(features, _)| server.submit(features.clone()))
        .collect::<Result<_, _>>()?;

    // 5. Collect results (DecodeFuture also implements std::future::Future
    //    for async callers; wait() is the blocking form).
    let mut wer = WerScore::default();
    for ((_, reference), future) in test_set.iter().zip(pending) {
        let result = future.wait()?;
        wer = wer.merge(&align_wer(reference, &result.hypothesis.words));
    }

    // 6. What the serving layer and the sharded machine did.
    let stats = server.stats();
    let report = server.hardware_report().expect("hardware stream report");
    println!("served                  : {} utterances", stats.completed);
    println!(
        "micro-batching          : {} batches, mean size {:.1}, largest {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.largest_batch
    );
    let ms = |d: Option<Duration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    println!(
        "queue wait              : p50 {:.1} ms, p99 {:.1} ms",
        ms(stats.queue_wait_p50),
        ms(stats.queue_wait_p99)
    );
    println!(
        "service time            : p50 {:.1} ms, p99 {:.1} ms",
        ms(stats.service_p50),
        ms(stats.service_p99)
    );
    println!("word error rate         : {:.1}%", 100.0 * wer.wer());
    println!(
        "audio processed         : {:.1} s in {} frames",
        report.energy.audio_seconds, report.frames
    );
    println!(
        "frames meeting 10 ms    : {:.1}% (worst shard rtf {:.3})",
        100.0 * report.real_time_fraction,
        report.worst_frame_rtf
    );
    if let Some(share) = report.worst_shard_share() {
        println!(
            "shard balance           : {:?} senones/shard (worst share {:.1}%, {:.1}% = perfect)",
            report.shard_senones,
            100.0 * share,
            100.0 / report.shard_senones.len() as f64
        );
    }
    println!(
        "average power, 4 shards : {:.3} W (paper budget: 0.400 W per fully active SoC)",
        report.energy.average_power_w()
    );

    // 7. The unified metrics registry: every serving counter/gauge/histogram
    //    by name, in one snapshot.  The snapshot also exports as facts, so
    //    the run directory ends with the final metric values and the
    //    hardware report next to the per-request spans.
    let snapshot = server.metrics();
    println!("\nmetrics registry ({} entries):", snapshot.len());
    print!("{snapshot}");
    for fact in snapshot.to_facts() {
        sink.record(&fact);
    }
    sink.record(&report.snapshot_fact());
    server.close();
    lvcsr::obs::set_global(Telemetry::disabled());
    sink.flush();
    assert_eq!(sink.dropped(), 0, "telemetry sink dropped facts");
    println!(
        "\ntelemetry               : run directory {}",
        sink.facts_path().display()
    );
    Ok(())
}
