//! Serving quickstart: an async batched front over a sharded multi-SoC
//! scorer.  32 utterances are enqueued into the bounded request queue, two
//! decoder workers coalesce them into micro-batches over their own warmed
//! scorers, and the stream-level hardware report shows what the sharded
//! machines did.
//!
//! Run with: `cargo run --example serving --release`

use lvcsr::corpus::{align_wer, TaskConfig, TaskGenerator, WerScore};
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::serve::{AsrServer, ServeConfig};
use lvcsr::LvcsrError;
use std::time::Duration;

fn main() -> Result<(), LvcsrError> {
    // 1. A synthetic task and a recogniser whose backend shards the
    //    active-senone set across four SoC instances.
    let task = TaskGenerator::new(2024).generate(&TaskConfig::small())?;
    let recognizer = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig::sharded_hardware(4),
    )?;

    // 2. The serving front: a bounded queue (typed backpressure when full)
    //    feeding two decoder workers, each coalescing micro-batches of up to
    //    8 requests (or 2 ms) through its own long-lived sharded scorer.
    let server = AsrServer::spawn(
        recognizer,
        ServeConfig::default()
            .max_pending(64)
            .max_batch(8)
            .max_batch_delay(Duration::from_millis(2))
            .workers(2),
    )?;

    // 3. Enqueue 32 utterances; every submit returns a future immediately.
    let test_set = task.synthesize_test_set(32, 3, 0.3);
    let pending: Vec<_> = test_set
        .iter()
        .map(|(features, _)| server.submit(features.clone()))
        .collect::<Result<_, _>>()?;

    // 4. Collect results (DecodeFuture also implements std::future::Future
    //    for async callers; wait() is the blocking form).
    let mut wer = WerScore::default();
    for ((_, reference), future) in test_set.iter().zip(pending) {
        let result = future.wait()?;
        wer = wer.merge(&align_wer(reference, &result.hypothesis.words));
    }

    // 5. What the serving layer and the sharded machine did.
    let stats = server.stats();
    let report = server.hardware_report().expect("hardware stream report");
    println!("served                  : {} utterances", stats.completed);
    println!(
        "micro-batching          : {} batches, mean size {:.1}, largest {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.largest_batch
    );
    let ms = |d: Option<Duration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    println!(
        "queue wait              : p50 {:.1} ms, p99 {:.1} ms",
        ms(stats.queue_wait_p50),
        ms(stats.queue_wait_p99)
    );
    println!(
        "service time            : p50 {:.1} ms, p99 {:.1} ms",
        ms(stats.service_p50),
        ms(stats.service_p99)
    );
    println!("word error rate         : {:.1}%", 100.0 * wer.wer());
    println!(
        "audio processed         : {:.1} s in {} frames",
        report.energy.audio_seconds, report.frames
    );
    println!(
        "frames meeting 10 ms    : {:.1}% (worst shard rtf {:.3})",
        100.0 * report.real_time_fraction,
        report.worst_frame_rtf
    );
    if let Some(share) = report.worst_shard_share() {
        println!(
            "shard balance           : {:?} senones/shard (worst share {:.1}%, {:.1}% = perfect)",
            report.shard_senones,
            100.0 * share,
            100.0 / report.shard_senones.len() as f64
        );
    }
    println!(
        "average power, 4 shards : {:.3} W (paper budget: 0.400 W per fully active SoC)",
        report.energy.average_power_w()
    );
    server.close();
    Ok(())
}
