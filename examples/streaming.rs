//! Streaming quickstart: the real-time regime the paper's SoC was built for.
//!
//! Two demonstrations:
//!
//! 1. **Feature streaming** — one utterance pushed through a
//!    [`FeatureStreamSession`](lvcsr::stream::FeatureStreamSession) in small
//!    chunks, partial hypotheses surfacing as words complete, and the final
//!    result provably identical to the offline decode of the same frames.
//! 2. **Continuous audio** — raw PCM with silence around two tone bursts
//!    pushed into an [`AudioStreamSession`](lvcsr::stream::AudioStreamSession):
//!    the energy VAD opens an utterance per burst, decodes it incrementally
//!    while its audio is still arriving, and reports per-chunk latency and
//!    the stream's host real-time factor.
//!
//! Run with: `cargo run --example streaming --release`

use lvcsr::corpus::{TaskConfig, TaskGenerator};
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::frontend::FrontendConfig;
use lvcsr::stream::{StreamConfig, StreamEvent, StreamingRecognizer, VadConfig};
use lvcsr::LvcsrError;

fn main() -> Result<(), LvcsrError> {
    // --- 1. feature streaming: chunks in, partials out, offline-identical ---
    let task = TaskGenerator::new(11).generate(&TaskConfig::small())?;
    let recognizer = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig::hardware(2),
    )?;
    let (features, reference) = task.synthesize_utterance(4, 0.2, 3);
    let offline = recognizer.decode_features(&features)?;

    let streamer = StreamingRecognizer::feature_only(recognizer)?;
    let mut session = streamer.feature_session()?;
    println!("streaming {} frames in 5-frame chunks:", features.len());
    let mut last_words = 0;
    for chunk in features.chunks(5) {
        let partial = session.push_chunk(chunk)?;
        if partial.words.len() > last_words {
            last_words = partial.words.len();
            println!(
                "  after {:>3} frames: \"{}\"",
                partial.frames,
                partial.to_sentence()
            );
        }
    }
    let outcome = session.finish()?;
    println!(
        "final: \"{}\" ({})",
        outcome.result.hypothesis.to_sentence(),
        if outcome.result.hypothesis.words == reference {
            "correct"
        } else {
            "incorrect"
        }
    );
    assert_eq!(outcome.result.hypothesis, offline.hypothesis);
    println!(
        "identical to offline decode; {} chunks, p50 chunk latency {:.2} µs, \
         stream RTF {:.4}",
        outcome.timing.chunks(),
        outcome.timing.p50_latency_s() * 1.0e6,
        outcome.timing.real_time_factor()
    );
    let hw = outcome.result.hardware.expect("hardware backend report");
    println!(
        "SoC report: {} frames, host-side stream timing folded in ({} chunks)\n",
        hw.frames,
        hw.streaming.expect("stream timing").chunks()
    );

    // --- 2. continuous audio with VAD endpointing ---
    // A 13-dim task so the delta-less MFCC frontend matches the model.
    let audio_task = TaskGenerator::new(23).generate(&TaskConfig {
        feature_dim: 13,
        ..TaskConfig::tiny()
    })?;
    let audio_recognizer = Recognizer::new(
        audio_task.acoustic_model.clone(),
        audio_task.dictionary.clone(),
        audio_task.language_model.clone(),
        DecoderConfig::software(),
    )?;
    let streamer = StreamingRecognizer::new(
        audio_recognizer,
        StreamConfig {
            frontend: FrontendConfig {
                use_delta: false,
                use_delta_delta: false,
                ..FrontendConfig::default()
            },
            vad: VadConfig {
                energy_threshold: 0.05,
                min_speech_hops: 2,
                hangover_hops: 8,
                preroll_hops: 3,
                adaptive: None,
            },
            ..StreamConfig::default()
        },
    )?;
    let mut audio_session = streamer.audio_session()?;

    // 2 tone bursts with silence between: two utterances for the endpointer.
    let tone = |seconds: f32, freq: f32| -> Vec<f32> {
        (0..(seconds * 16_000.0) as usize)
            .map(|n| 0.5 * (2.0 * std::f32::consts::PI * freq * n as f32 / 16_000.0).sin())
            .collect()
    };
    let mut audio = vec![0.0f32; 2_400];
    audio.extend(tone(0.25, 440.0));
    audio.extend(vec![0.0f32; 3_200]);
    audio.extend(tone(0.20, 1200.0));
    audio.extend(vec![0.0f32; 3_200]);

    println!(
        "pushing {:.2} s of audio (two bursts) through the VAD in 50 ms chunks:",
        audio.len() as f32 / 16_000.0
    );
    for chunk in audio.chunks(800) {
        for event in audio_session.push_audio(chunk)? {
            match event {
                StreamEvent::UtteranceStarted => println!("  [VAD] speech started"),
                StreamEvent::Partial(p) => {
                    println!("  [partial] \"{}\" @ frame {}", p.to_sentence(), p.frames)
                }
                StreamEvent::UtteranceEnd(outcome) => println!(
                    "  [VAD] speech ended: {} frames decoded, stream RTF {:.4}",
                    outcome.result.stats.num_frames(),
                    outcome.timing.real_time_factor()
                ),
                StreamEvent::UtteranceForceEnded(outcome) => println!(
                    "  [VAD] forced endpoint at the frame budget: {} frames decoded",
                    outcome.result.stats.num_frames(),
                ),
            }
        }
    }
    let finished = audio_session.utterances_finished();
    let last = audio_session.close()?;
    println!(
        "closed: {finished} endpointed utterances, trailing session empty: {}",
        last.result.is_empty()
    );
    Ok(())
}
