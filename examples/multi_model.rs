//! Multi-model serving quickstart: two very different recognisers — a
//! synthetic dictation task and a voice-command model trained from rendered
//! audio — co-resident in one `AsrServer`, with routed traffic, per-model
//! stats/hardware reports, and a lock-free hot-swap under load.
//!
//! The flow:
//!
//! 1. build a "dictation" recogniser over a synthetic task (hardware backend),
//! 2. train a compact "voice_command" model from synthesised audio (the
//!    `voice_command` example's pipeline, abbreviated),
//! 3. register both in a [`ModelRegistry`] and spawn one two-worker server,
//! 4. submit mixed traffic routed by model id (and tagged by tenant),
//! 5. hot-swap the dictation model to a sharded backend mid-service,
//! 6. read per-model stats and hardware reports.
//!
//! Run with: `cargo run --example multi_model --release`

use lvcsr::acoustic::{
    AcousticModel, AcousticModelConfig, GaussianMixture, GmmTrainer, HmmTopology, PhoneId,
    SenoneId, SenonePool, TrainerConfig, TransitionMatrix, Triphone, TriphoneInventory,
};
use lvcsr::corpus::{align_wer, AudioSynthesizer, TaskConfig, TaskGenerator, WerScore};
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::frontend::{Frontend, FrontendConfig};
use lvcsr::lexicon::{Dictionary, NGramModel, Pronunciation};
use lvcsr::serve::{AsrServer, DecodeRequest, ModelRegistry, ServeConfig};
use lvcsr::LvcsrError;
use std::time::Duration;

/// The command vocabulary: (spelling, phone sequence).
const COMMANDS: &[(&str, &[u16])] = &[
    ("forward", &[1, 2, 3]),
    ("back", &[4, 5]),
    ("left", &[6, 7, 8]),
    ("right", &[9, 10, 11]),
];

/// Trains the compact voice-command recogniser from rendered audio, returning
/// it with the frontend and dictionary needed to feed it at decode time.
fn train_voice_command() -> Result<(Recognizer, Frontend, Dictionary), LvcsrError> {
    let synth = AudioSynthesizer::default_16khz();
    // Static cepstra only, no per-utterance mean normalisation: the phone
    // models are trained on isolated phone renderings, so the features of a
    // full command must be extracted the same way.
    let fe = Frontend::new(FrontendConfig {
        use_delta: false,
        use_delta_delta: false,
        cepstral_mean_norm: false,
        ..FrontendConfig::default()
    })?;
    let dim = fe.config().feature_dim();
    let phones: Vec<u16> = {
        let mut p: Vec<u16> = COMMANDS
            .iter()
            .flat_map(|(_, ph)| ph.iter().copied())
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    let num_phones = 1 + *phones.iter().max().unwrap() as usize;

    let trainer = GmmTrainer::new(TrainerConfig {
        num_components: 2,
        kmeans_iterations: 6,
        em_iterations: 3,
        ..TrainerConfig::default()
    });
    let states = 3usize;
    let mut mixtures: Vec<GaussianMixture> = Vec::new();
    let mut inventory = TriphoneInventory::new(HmmTopology::Three);
    for &phone in &phones {
        let mut per_state: Vec<Vec<Vec<f32>>> = vec![Vec::new(); states];
        for take in 0..6u64 {
            let audio = synth.render_phones(&[PhoneId(phone)], take * 31 + phone as u64);
            let frames = fe.process(&audio);
            let third = frames.len() / states;
            for (i, f) in frames.into_iter().enumerate() {
                let state = (i / third.max(1)).min(states - 1);
                per_state[state].push(f);
            }
        }
        let senone_base = mixtures.len() as u32;
        for state_frames in per_state {
            mixtures.push(trainer.fit(&state_frames)?);
        }
        inventory.add(
            Triphone::context_independent(PhoneId(phone)),
            (0..states as u32)
                .map(|k| SenoneId(senone_base + k))
                .collect(),
        )?;
    }
    let num_senones = mixtures.len();
    let model = AcousticModel::new(
        AcousticModelConfig {
            num_senones,
            num_components: 2,
            feature_dim: dim,
            topology: HmmTopology::Three,
            num_phones,
            self_loop_prob: 0.7,
        },
        SenonePool::new(mixtures)?,
        inventory,
        TransitionMatrix::bakis(HmmTopology::Three, 0.7)?,
    )?;
    let mut dictionary = Dictionary::new();
    for (spelling, phones) in COMMANDS {
        dictionary.add_word(
            spelling,
            Pronunciation::new(phones.iter().map(|&p| PhoneId(p)).collect()),
        )?;
    }
    let lm = NGramModel::uniform(dictionary.len())?;
    let recognizer = Recognizer::new(model, dictionary.clone(), lm, DecoderConfig::hardware(1))?;
    Ok((recognizer, fe, dictionary))
}

fn main() -> Result<(), LvcsrError> {
    // 1. The "dictation" model: a synthetic task on a two-structure SoC.
    let dictation_task = TaskGenerator::new(2024).generate(&TaskConfig::small())?;
    let dictation = |config: DecoderConfig| {
        Recognizer::new(
            dictation_task.acoustic_model.clone(),
            dictation_task.dictionary.clone(),
            dictation_task.language_model.clone(),
            config,
        )
    };

    // 2. The "voice_command" model, trained from rendered audio.
    println!("training the voice-command model from synthesised audio...");
    let (command_model, fe, command_dict) = train_voice_command()?;

    // 3. One server, both models.  Unnamed requests route to "dictation";
    //    the per-model quota keeps either workload from starving the other.
    let registry = ModelRegistry::new()
        .register("dictation", dictation(DecoderConfig::hardware(2))?)?
        .register("voice_command", command_model)?
        .default_model("dictation");
    let server = AsrServer::spawn_registry(
        registry,
        ServeConfig::default()
            .max_pending(64)
            .max_batch(8)
            .max_batch_delay(Duration::from_millis(2))
            .workers(2)
            .model_quota(48),
    )?;

    // 4. Mixed traffic: 16 dictation utterances (default route, so plain
    //    feature submissions still work) interleaved with spoken commands
    //    routed by model id and tagged by tenant.
    let synth = AudioSynthesizer::default_16khz();
    let dictation_set = dictation_task.synthesize_test_set(16, 3, 0.3);
    let mut dictation_pending = Vec::new();
    let mut command_pending = Vec::new();
    for (i, (features, _)) in dictation_set.iter().enumerate() {
        dictation_pending.push(server.submit(features.clone())?);
        let (spelling, _) = COMMANDS[i % COMMANDS.len()];
        let word = command_dict.id_of(spelling).expect("command in dictionary");
        let audio = synth.render_words(&command_dict, &[word], 1000 + i as u64);
        command_pending.push((
            spelling,
            server.submit(
                DecodeRequest::new(fe.process(&audio))
                    .model("voice_command")
                    .tenant("robot-7"),
            )?,
        ));
    }

    // 5. Hot-swap the dictation model to a 2-shard backend while the queue
    //    is still draining: in-flight requests finish on v1, new admissions
    //    decode on v2, and nothing is lost on either side.
    let v2 = server.swap_model("dictation", dictation(DecoderConfig::sharded_hardware(2))?)?;
    println!("hot-swapped 'dictation' to version {v2} (sharded backend) under load");
    let after_swap: Vec<_> = dictation_set
        .iter()
        .map(|(features, _)| server.submit(features.clone()))
        .collect::<Result<_, _>>()?;

    // 6. Collect both workloads and read per-model telemetry.
    let mut wer = WerScore::default();
    for ((_, reference), future) in dictation_set.iter().zip(dictation_pending) {
        wer = wer.merge(&align_wer(reference, &future.wait()?.hypothesis.words));
    }
    for ((_, reference), future) in dictation_set.iter().zip(after_swap) {
        wer = wer.merge(&align_wer(reference, &future.wait()?.hypothesis.words));
    }
    let mut correct = 0usize;
    let command_total = command_pending.len();
    for (spelling, future) in command_pending {
        let result = future.wait()?;
        if result.hypothesis.text.first().map(String::as_str) == Some(spelling) {
            correct += 1;
        }
    }

    for name in server.models() {
        let stats = server.model_stats(&name).expect("registered model");
        let report = server.model_hardware_report(&name).expect("served model");
        println!(
            "\nmodel '{name}' (version {}):",
            server.model_version(&name).expect("version")
        );
        println!(
            "  served       : {} utterances in {} micro-batches (largest {})",
            stats.completed, stats.batches, stats.largest_batch
        );
        let ms = |d: Option<Duration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
        println!(
            "  latency      : queue p50 {:.1} ms, service p50 {:.1} ms",
            ms(stats.queue_wait_p50),
            ms(stats.service_p50)
        );
        println!(
            "  hardware     : {:.1} s audio, {} frames, {:.3} W average",
            report.energy.audio_seconds,
            report.frames,
            report.energy.average_power_w()
        );
    }
    println!("\ndictation word error rate : {:.1}%", 100.0 * wer.wer());
    println!("command accuracy          : {correct}/{command_total}");
    server.close();
    Ok(())
}
