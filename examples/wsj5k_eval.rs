//! WSJ5K-style evaluation: word error rate versus stored-mantissa width,
//! the experiment behind the paper's claim that "the length of mantissa can be
//! reduced by couple of bits without compromising the accuracy of speech
//! recognition", together with the memory/bandwidth the narrower model needs.
//!
//! Run with: `cargo run --example wsj5k_eval --release`

use lvcsr::acoustic::{quantize_model, AcousticModelConfig, StorageLayout};
use lvcsr::corpus::{align_wer, WerScore, Wsj5kTask};
use lvcsr::decoder::{DecoderConfig, Recognizer, ScoringBackendKind};
use lvcsr::float::MantissaWidth;
use lvcsr::hw::OpuConfig;
use lvcsr::LvcsrError;

fn main() -> Result<(), LvcsrError> {
    // A scaled synthetic stand-in for the WSJ5K test set (the structure of the
    // task matches the paper's geometry; see DESIGN.md for the substitution).
    let task = Wsj5kTask::evaluation(100, 7)?;
    let test_set = task.synthesize_test_set(8, 4, 0.3);
    println!(
        "synthetic WSJ task: {} words, trigram LM, {} senones",
        task.dictionary.len(),
        task.acoustic_model.senones().len()
    );
    println!(
        "{:<16} {:>8} {:>16} {:>18} {:>14}",
        "mantissa", "WER", "model size (MB)", "bandwidth (GB/s)", "paper bound"
    );

    for width in MantissaWidth::PAPER_SWEEP {
        let model = quantize_model(&task.acoustic_model, width)?;
        let mut config = DecoderConfig::hardware(2);
        if let ScoringBackendKind::Hardware(soc) = &mut config.backend {
            soc.opu = OpuConfig::with_width(width);
        }
        let recognizer = Recognizer::new(
            model,
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )?;

        // One batched decode per width: the whole test set shares one scorer,
        // so the SoC model is built once instead of once per utterance.
        let utterances: Vec<&[Vec<f32>]> = test_set.iter().map(|(f, _)| f.as_slice()).collect();
        let results = recognizer.decode_batch(&utterances)?;
        let mut wer = WerScore::default();
        for ((_, reference), result) in test_set.iter().zip(&results) {
            wer = wer.merge(&align_wer(reference, &result.hypothesis.words));
        }
        // Storage/bandwidth at the *paper's* full 6000-senone geometry.
        let layout = StorageLayout::for_config(&AcousticModelConfig::paper_default(), width);
        let bound = match width.bits() {
            23 | 12 => "< 10%",
            _ => "-",
        };
        println!(
            "{:<16} {:>7.1}% {:>16.2} {:>18.3} {:>14}",
            format!("{width}"),
            100.0 * wer.wer(),
            layout.model_megabytes(),
            layout.worst_case_bandwidth_gb_per_s(),
            bound
        );
    }
    Ok(())
}
