//! Power/real-time design-space exploration: how many accelerator structures
//! are needed, what Conditional Down Sampling buys, and how the architecture
//! compares to the software baselines of the paper's Section V.
//!
//! Run with: `cargo run --example power_explorer --release`

use lvcsr::acoustic::AcousticModelConfig;
use lvcsr::baseline::{ComparisonTable, SoftwareBaseline, SoftwareCostModel, SoftwarePlatform};
use lvcsr::corpus::Wsj5kTask;
use lvcsr::decoder::{DecoderConfig, GmmSelectionConfig, Recognizer};
use lvcsr::hw::{OpuConfig, PowerModel};
use lvcsr::LvcsrError;

fn main() -> Result<(), LvcsrError> {
    let geometry = AcousticModelConfig::paper_default();
    let power = PowerModel::paper_calibrated();
    let opu = OpuConfig::default();

    // --- capacity: how many senones fit in a 10 ms frame per structure? ---
    let per_structure = opu.senone_capacity(geometry.feature_dim, geometry.num_components, 500_000);
    println!("-- capacity at 50 MHz --");
    for structures in 1..=4 {
        let capacity = structures * per_structure;
        println!(
            "{structures} structure(s): {capacity:>5} senones/frame ({:>4.1}% of 6000), {:.3} W fully active, {:.1} mm2",
            100.0 * capacity as f64 / geometry.num_senones as f64,
            structures as f64 * power.structure_full_power_w(),
            structures as f64 * power.area.structure_mm2(),
        );
    }

    // --- measured decode: CDS ablation on a synthetic task ---
    println!("\n-- Conditional Down Sampling on a synthetic task (2 structures) --");
    let task = Wsj5kTask::evaluation(200, 3)?;
    let test_set = task.synthesize_test_set(3, 4, 0.3);
    for period in [1usize, 2, 3] {
        let mut config = DecoderConfig::hardware(2);
        config.gmm_selection = GmmSelectionConfig::with_cds(period);
        let recognizer = Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )?;
        let mut senones = 0.0f64;
        let mut watts = 0.0f64;
        let mut n = 0.0f64;
        for (features, _) in &test_set {
            let result = recognizer.decode_features(features)?;
            senones += result.stats.mean_senones_scored();
            if let Some(hw) = result.hardware {
                watts += hw.energy.average_power_w();
                n += 1.0;
            }
        }
        println!(
            "CDS period {period}: {:>6.1} senones scored/frame, average SoC power {:.3} W",
            senones / test_set.len() as f64,
            watts / n.max(1.0)
        );
    }

    // --- the Section V comparison ---
    println!("\n-- related work comparison (paper Section V) --");
    print!(
        "{}",
        ComparisonTable::section_v(&geometry, 2 * per_structure).to_text()
    );

    // --- why software alone is not enough ---
    println!("\n-- software-only decoding of the full 6000-senone task --");
    for platform in [
        SoftwarePlatform::EmbeddedArm,
        SoftwarePlatform::DesktopPentium,
    ] {
        let report =
            SoftwareBaseline::new(platform, SoftwareCostModel::scalar_decoder(), &geometry)
                .evaluate_full_evaluation();
        println!(
            "{:?}: RTF {:.2}, {:.2} W, {:.2} J per second of audio",
            platform,
            report.real_time_factor,
            report.average_power_w,
            report.energy_per_audio_second_j
        );
    }
    Ok(())
}
