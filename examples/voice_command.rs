//! Voice-command pipeline from raw audio: the paper's motivating use case of
//! controlling a device by speech on a low-power platform.
//!
//! This example runs the *whole* chain with no shortcuts:
//!
//! 1. render command words to waveforms ([`lvcsr::corpus::AudioSynthesizer`]),
//! 2. extract MFCC features with the software frontend (Figure 1's first box),
//! 3. train senone Gaussians from those features with the k-means/EM trainer,
//! 4. build a recogniser over the command dictionary,
//! 5. decode new renderings of spoken commands on the hardware model.
//!
//! Run with: `cargo run --example voice_command --release`

use lvcsr::acoustic::{
    AcousticModel, AcousticModelConfig, GaussianMixture, GmmTrainer, HmmTopology, PhoneId,
    SenoneId, SenonePool, TrainerConfig, TransitionMatrix, Triphone, TriphoneInventory,
};
use lvcsr::corpus::AudioSynthesizer;
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::frontend::{Frontend, FrontendConfig};
use lvcsr::lexicon::{Dictionary, NGramModel, Pronunciation};
use lvcsr::LvcsrError;

/// The command vocabulary: (spelling, phone sequence).
const COMMANDS: &[(&str, &[u16])] = &[
    ("forward", &[1, 2, 3]),
    ("back", &[4, 5]),
    ("left", &[6, 7, 8]),
    ("right", &[9, 10, 11]),
    ("stop", &[12, 13]),
    ("faster", &[14, 15, 16]),
];

fn frontend() -> Frontend {
    // 13 static cepstra, no deltas: keeps the trained models small.  Per-
    // utterance cepstral mean normalisation is disabled because the phone
    // models are trained on isolated phone renderings whose utterance mean
    // differs from that of a full command — the features must match.
    let cfg = FrontendConfig {
        use_delta: false,
        use_delta_delta: false,
        cepstral_mean_norm: false,
        ..FrontendConfig::default()
    };
    Frontend::new(cfg).expect("frontend configuration is valid")
}

fn main() -> Result<(), LvcsrError> {
    let synth = AudioSynthesizer::default_16khz();
    let fe = frontend();
    let dim = fe.config().feature_dim();
    let phones: Vec<u16> = {
        let mut p: Vec<u16> = COMMANDS
            .iter()
            .flat_map(|(_, ph)| ph.iter().copied())
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    let num_phones = 1 + *phones.iter().max().unwrap() as usize;

    // --- train one 3-state model per phone from rendered audio ---
    println!(
        "training {} phone models from synthesised audio...",
        phones.len()
    );
    let trainer = GmmTrainer::new(TrainerConfig {
        num_components: 2,
        kmeans_iterations: 6,
        em_iterations: 3,
        ..TrainerConfig::default()
    });
    let states = 3usize;
    let mut mixtures: Vec<GaussianMixture> = Vec::new();
    let mut inventory = TriphoneInventory::new(HmmTopology::Three);
    for &phone in &phones {
        // Several renderings of the phone give training data; each rendering's
        // frames are split into three equal thirds, one per HMM state.
        let mut per_state: Vec<Vec<Vec<f32>>> = vec![Vec::new(); states];
        for take in 0..6u64 {
            let audio = synth.render_phones(&[PhoneId(phone)], take * 31 + phone as u64);
            let frames = fe.process(&audio);
            let third = frames.len() / states;
            for (i, f) in frames.into_iter().enumerate() {
                let state = (i / third.max(1)).min(states - 1);
                per_state[state].push(f);
            }
        }
        let senone_base = mixtures.len() as u32;
        for state_frames in per_state {
            mixtures.push(trainer.fit(&state_frames)?);
        }
        inventory.add(
            Triphone::context_independent(PhoneId(phone)),
            (0..states as u32)
                .map(|k| SenoneId(senone_base + k))
                .collect(),
        )?;
    }
    let num_senones = mixtures.len();
    let model = AcousticModel::new(
        AcousticModelConfig {
            num_senones,
            num_components: 2,
            feature_dim: dim,
            topology: HmmTopology::Three,
            num_phones,
            self_loop_prob: 0.7,
        },
        SenonePool::new(mixtures)?,
        inventory,
        TransitionMatrix::bakis(HmmTopology::Three, 0.7)?,
    )?;

    // --- dictionary + uniform LM over the commands ---
    let mut dictionary = Dictionary::new();
    for (spelling, phones) in COMMANDS {
        dictionary.add_word(
            spelling,
            Pronunciation::new(phones.iter().map(|&p| PhoneId(p)).collect()),
        )?;
    }
    let lm = NGramModel::uniform(dictionary.len())?;
    let recognizer = Recognizer::new(model, dictionary.clone(), lm, DecoderConfig::hardware(1))?;

    // --- recognise freshly rendered commands ---
    println!("\nrecognising spoken commands (fresh renderings, decoded from audio):");
    let mut correct = 0usize;
    for (i, (spelling, _)) in COMMANDS.iter().enumerate() {
        let word = dictionary.id_of(spelling).expect("command in dictionary");
        let audio = synth.render_words(&dictionary, &[word], 1000 + i as u64);
        let result = recognizer.decode_audio(&audio, &fe)?;
        let ok = result.hypothesis.text.first().map(String::as_str) == Some(*spelling);
        if ok {
            correct += 1;
        }
        println!(
            "  said '{spelling}' -> heard '{}' {}",
            result.hypothesis.to_sentence(),
            if ok { "✓" } else { "✗" }
        );
    }
    println!(
        "\ncommand accuracy: {}/{} with a single 50 MHz structure",
        correct,
        COMMANDS.len()
    );
    Ok(())
}
