//! Quickstart: generate a small synthetic task, decode a few utterances on the
//! cycle-accurate hardware model and print what the accelerator did.
//!
//! Run with: `cargo run --example quickstart --release`

use lvcsr::corpus::{align_wer, TaskConfig, TaskGenerator, WerScore};
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::LvcsrError;

fn main() -> Result<(), LvcsrError> {
    // 1. A synthetic task: acoustic model + dictionary + language model.
    let task = TaskGenerator::new(2024).generate(&TaskConfig::small())?;
    println!(
        "task: {} words, {} phones, {} senones, {}-dim features",
        task.dictionary.len(),
        task.config.num_phones,
        task.acoustic_model.senones().len(),
        task.acoustic_model.feature_dim()
    );

    // 2. The paper's system: two OP-unit + Viterbi-unit structures at 50 MHz.
    let recognizer = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig::hardware(2),
    )?;

    // 3. Decode a small test set as one batch — one SoC model serves every
    //    utterance — and fold the per-utterance hardware reports into a
    //    stream-level report.
    let test_set = task.synthesize_test_set(5, 4, 0.3);
    let utterances: Vec<&[Vec<f32>]> = test_set.iter().map(|(f, _)| f.as_slice()).collect();
    let results = recognizer.decode_batch(&utterances)?;
    let mut wer = WerScore::default();
    let mut active_fraction = 0.0;
    let mut stream = lvcsr::hw::UtteranceReport::default();
    for (i, ((_, reference), result)) in test_set.iter().zip(&results).enumerate() {
        let ref_text: Vec<&str> = reference
            .iter()
            .map(|&w| task.dictionary.spelling(w).unwrap_or("<unk>"))
            .collect();
        println!(
            "utterance {i}: ref = [{}]  hyp = [{}]",
            ref_text.join(" "),
            result.hypothesis.to_sentence()
        );
        wer = wer.merge(&align_wer(reference, &result.hypothesis.words));
        active_fraction += result.stats.mean_active_senone_fraction();
        if let Some(hw) = &result.hardware {
            stream = stream.merge(hw);
        }
    }
    let n = test_set.len() as f64;
    println!();
    println!("word error rate           : {:.1}%", 100.0 * wer.wer());
    println!(
        "active senones per frame  : {:.1}% of the inventory",
        100.0 * active_fraction / n
    );
    println!(
        "frames meeting 10 ms      : {:.1}% of {} frames",
        100.0 * stream.real_time_fraction,
        stream.frames
    );
    println!(
        "average SoC power         : {:.3} W (paper budget: 0.400 W fully active)",
        stream.energy.average_power_w()
    );
    Ok(())
}
