//! Steady-state zero-spawn acceptance: a warm sharded decoder — whether
//! driven directly through `decode_batch` or behind a multi-worker
//! `AsrServer` — must not spawn threads per utterance.  The shard pool
//! spawns its workers once, on the first parallel frame, and lives until the
//! scorer is dropped.
//!
//! These tests watch the process-global `shard_threads_spawned_total()`
//! counter, so they live in their own test binary (no sibling tests spawning
//! shard threads concurrently) and serialise against each other through a
//! lock.  On single-CPU hosts the parallelism heuristic keeps scoring
//! inline, making zero spawns trivially true here — the forced-parallel pool
//! lifetime property is carried by the asr-core shard tests either way.

// The legacy free-function counter is deprecated in favour of the
// `shard.threads_spawned_total` registry counter; these tests deliberately
// keep exercising the shim so its readings stay wired to the registry.
#![allow(deprecated)]

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{shard_threads_spawned_total, DecoderConfig, Recognizer};
use lvcsr::serve::{AsrServer, ServeConfig};
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn build_task() -> SyntheticTask {
    TaskGenerator::new(31415)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

/// A 16-utterance `decode_batch` over a 4-shard backend costs at most one
/// pool spawn (3 worker threads) for the whole batch — not one per
/// utterance, as a `finish_utterance`-scoped pool would.
#[test]
fn decode_batch_pays_at_most_one_pool_spawn_for_16_utterances() {
    let _serial = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let task = build_task();
    let rec = build_recognizer(&task, DecoderConfig::sharded_hardware(4));
    let utterances: Vec<Vec<Vec<f32>>> = (0..16)
        .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
        .collect();
    let before = shard_threads_spawned_total();
    let results = rec.decode_batch(&utterances).expect("batch decode");
    assert_eq!(results.len(), 16);
    let spawned = shard_threads_spawned_total() - before;
    assert!(
        spawned <= 3,
        "one 4-shard pool spawn (3 threads) may serve the whole batch, \
         but {spawned} threads were spawned — is the pool per-utterance again?"
    );
}

/// A warm multi-worker server decodes indefinitely with zero thread spawns:
/// after each worker's long-lived decoder has warmed its pool, further
/// traffic leaves the global spawn counter untouched.
#[test]
fn a_warm_multi_worker_server_decodes_with_zero_thread_spawns() {
    let _serial = COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let task = build_task();
    let server = AsrServer::spawn(
        build_recognizer(&task, DecoderConfig::sharded_hardware(3)),
        ServeConfig::default().workers(2),
    )
    .expect("server");
    let (features, reference) = task.synthesize_utterance(1, 0.2, 7);
    let decode_round = |n: usize| {
        let futures: Vec<_> = (0..n)
            .map(|_| server.submit(features.clone()).expect("submit"))
            .collect();
        for future in futures {
            assert_eq!(future.wait().expect("decode").hypothesis.words, reference);
        }
    };
    // Warm-up: each worker's pool spawns once, on its first parallel frame;
    // loop until a whole round adds nothing (at most workers+1 rounds).
    let mut warm = shard_threads_spawned_total();
    loop {
        decode_round(4);
        let now = shard_threads_spawned_total();
        if now == warm {
            break;
        }
        warm = now;
    }
    // Steady state: 16 more utterances across both workers spawn nothing.
    for _ in 0..4 {
        decode_round(4);
    }
    assert_eq!(
        shard_threads_spawned_total(),
        warm,
        "a warm server must not spawn threads per utterance"
    );
    server.close();
}
