//! Streaming integration tests: the central invariant of the streaming
//! subsystem is that **chunking is invisible** — feeding an utterance's
//! feature frames through a streaming session in chunks of any size produces
//! the identical hypothesis, score and statistics as the offline
//! `decode_features` on the concatenated input, on every backend; and the
//! partial hypotheses surfaced between chunks are prefix-consistent with
//! monotone frame counts.

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{
    DecodeResult, DecoderConfig, PartialHypothesis, Recognizer, ScoringBackendKind,
};
use lvcsr::stream::{StreamEvent, StreamingRecognizer, VadConfig};
use proptest::prelude::*;

fn build_task() -> SyntheticTask {
    TaskGenerator::new(4242)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, backend: ScoringBackendKind) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig {
            backend,
            ..DecoderConfig::default()
        },
    )
    .expect("recogniser")
}

fn backend(index: usize) -> ScoringBackendKind {
    match index % 4 {
        0 => ScoringBackendKind::Software,
        1 => ScoringBackendKind::Simd,
        2 => ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default()),
        _ => ScoringBackendKind::Sharded {
            shards: 2,
            inner: Box::new(ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default())),
            tuning: lvcsr::decoder::ShardTuning::default(),
        },
    }
}

/// The decode surface that must not change under chunking: both hypotheses,
/// the live score, the statistics, the lattice shape and the hardware work
/// counters.
type Fingerprint = (
    Vec<u32>,
    Vec<u32>,
    f32,
    usize,
    u64,
    usize,
    Option<(usize, u64)>,
);

fn fingerprint(r: &DecodeResult) -> Fingerprint {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.live_hypothesis.words.iter().map(|w| w.0).collect(),
        r.best_score.raw(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.lattice.len(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

proptest! {
    /// The acceptance property: for chunk sizes 1, 3, 7 and whole-utterance,
    /// on every backend (software / simd / soc / sharded), a streaming
    /// session equals the offline decode, and its partials are
    /// prefix-consistent with monotone frame counts.
    #[test]
    fn streaming_equals_offline_on_every_backend_and_chunking(
        backend_index in 0usize..4,
        chunk_index in 0usize..4,
        words in 1usize..4,
        seed in 0u64..300,
    ) {
        let task = build_task();
        let rec = build_recognizer(&task, backend(backend_index));
        let (features, _) = task.synthesize_utterance(words, 0.2, seed);
        let chunk = [1usize, 3, 7, features.len()][chunk_index].max(1);

        let offline = rec.decode_features(&features).expect("offline decode");

        let streamer = StreamingRecognizer::feature_only(rec).expect("streamer");
        let mut session = streamer.feature_session().expect("session");
        let mut previous = PartialHypothesis::default();
        for piece in features.chunks(chunk) {
            let partial = session.push_chunk(piece).expect("chunk decodes");
            // Monotone frame counts…
            prop_assert!(partial.frames > previous.frames);
            prop_assert_eq!(partial.frames, session.frames());
            // …and prefix-consistent words.
            prop_assert!(
                partial.words.starts_with(&previous.words),
                "partial {:?} must extend {:?}",
                partial.words,
                previous.words
            );
            previous = partial;
        }
        let outcome = session.finish().expect("finish");
        prop_assert_eq!(fingerprint(&outcome.result), fingerprint(&offline));
        // The latency record covered every chunk and all the audio.
        prop_assert_eq!(outcome.timing.chunks(), features.len().div_ceil(chunk));
        let audio = outcome.timing.audio_seconds();
        prop_assert!((audio - features.len() as f64 * 0.010).abs() < 1e-9);
        // Hardware backends carry the fold into their report.
        if let Some(hw) = &outcome.result.hardware {
            prop_assert_eq!(
                hw.streaming.as_ref().expect("timing folded").chunks(),
                outcome.timing.chunks()
            );
        }
    }
}

/// The serve-layer stream sessions obey the same equality, across backends.
#[test]
fn serve_stream_sessions_equal_offline_on_every_backend() {
    let task = build_task();
    let (features, reference) = task.synthesize_utterance(2, 0.2, 77);
    for backend_index in 0..4 {
        let offline = build_recognizer(&task, backend(backend_index))
            .decode_features(&features)
            .expect("offline");
        let server = lvcsr::serve::AsrServer::spawn(
            build_recognizer(&task, backend(backend_index)),
            lvcsr::serve::ServeConfig::default(),
        )
        .expect("server");
        let handle = server.open_stream().expect("stream");
        for chunk in features.chunks(5) {
            handle.push_chunk(chunk).expect("push");
        }
        let result = handle.finish().expect("finish").wait().expect("decode");
        assert_eq!(
            fingerprint(&result),
            fingerprint(&offline),
            "backend {backend_index}"
        );
        assert_eq!(result.hypothesis.words, reference);
        server.close();
    }
}

/// A continuous-audio session over silence only: the VAD never opens an
/// utterance and close() is the typed empty result — not an error.
#[test]
fn silent_audio_session_closes_empty() {
    let task = TaskGenerator::new(99)
        .generate(&TaskConfig {
            feature_dim: 13,
            ..TaskConfig::tiny()
        })
        .expect("task");
    let rec = build_recognizer(&task, ScoringBackendKind::Software);
    let streamer = StreamingRecognizer::new(
        rec,
        lvcsr::stream::StreamConfig {
            frontend: lvcsr::frontend::FrontendConfig {
                use_delta: false,
                use_delta_delta: false,
                ..lvcsr::frontend::FrontendConfig::default()
            },
            vad: VadConfig::default(),
            ..lvcsr::stream::StreamConfig::default()
        },
    )
    .expect("streamer");
    let mut session = streamer.audio_session().expect("audio session");
    let events = session.push_audio(&vec![0.0f32; 16_000]).expect("push");
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, StreamEvent::UtteranceStarted)),
        "silence must not trigger the VAD"
    );
    let outcome = session.close().expect("close");
    assert!(outcome.result.is_empty());
    assert_eq!(outcome.result.hypothesis.words.len(), 0);
}
