//! Batch-decoding integration tests: `Recognizer::decode_batch` must be
//! observationally identical to decoding each utterance alone, on every
//! backend — the property that makes the batch API a pure throughput
//! optimisation.

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{DecodeResult, DecoderConfig, GmmSelectionConfig, Recognizer};
use proptest::prelude::*;

fn build_task() -> SyntheticTask {
    TaskGenerator::new(4242)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

fn backend_config(index: usize) -> DecoderConfig {
    match index % 3 {
        0 => DecoderConfig::software(),
        1 => DecoderConfig::simd(),
        _ => DecoderConfig::hardware(2),
    }
}

/// The full observable surface of a decode, comparable across call paths.
type Fingerprint = (Vec<u32>, Vec<u32>, usize, u64, usize, Option<(usize, u64)>);

fn fingerprint(r: &DecodeResult) -> Fingerprint {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.live_hypothesis.words.iter().map(|w| w.0).collect(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.lattice.len(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

proptest! {
    /// decode_batch == N × decode_features, for every backend, including
    /// under Conditional Down Sampling (whose cache is exactly the state
    /// that could leak between utterances).
    #[test]
    fn batch_decoding_matches_per_utterance_decoding(
        backend_index in 0usize..3,
        cds_period in 1usize..3,
        num_utterances in 1usize..3,
        words_per_utterance in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let task = build_task();
        let mut config = backend_config(backend_index);
        config.gmm_selection = GmmSelectionConfig::with_cds(cds_period);
        let rec = build_recognizer(&task, config);
        let utterances: Vec<Vec<Vec<f32>>> = (0..num_utterances)
            .map(|i| {
                task.synthesize_utterance(words_per_utterance, 0.2, seed.wrapping_add(i as u64))
                    .0
            })
            .collect();
        let batch = rec.decode_batch(&utterances).expect("batch decode");
        prop_assert_eq!(batch.len(), utterances.len());
        for (features, batched) in utterances.iter().zip(&batch) {
            let single = rec.decode_features(features).expect("single decode");
            prop_assert_eq!(fingerprint(batched), fingerprint(&single));
        }
    }
}

#[test]
fn empty_utterances_yield_typed_empty_results_in_and_out_of_batches() {
    let task = build_task();
    for config in [
        DecoderConfig::software(),
        DecoderConfig::simd(),
        DecoderConfig::hardware(2),
    ] {
        let rec = build_recognizer(&task, config);
        let alone = rec.decode_features(&[]).expect("empty decode");
        assert!(alone.is_empty());
        assert!(alone.hardware.is_none());

        let (utt, _) = task.synthesize_utterance(2, 0.2, 9);
        let batch = rec
            .decode_batch(&[utt.clone(), Vec::new(), utt.clone()])
            .expect("batch with empty utterance");
        assert!(batch[1].is_empty());
        // The empty utterance leaves no stale state behind: its neighbours
        // decode identically.
        assert_eq!(batch[0].hypothesis, batch[2].hypothesis);
        assert_eq!(
            batch[0].stats.total_senones_scored(),
            batch[2].stats.total_senones_scored()
        );
    }
}

#[test]
fn batch_hardware_reports_merge_into_a_stream_report() {
    let task = build_task();
    let rec = build_recognizer(&task, DecoderConfig::hardware(2));
    let utterances: Vec<Vec<Vec<f32>>> = (0..4)
        .map(|i| task.synthesize_utterance(2, 0.2, 100 + i).0)
        .collect();
    let results = rec.decode_batch(&utterances).expect("batch decode");
    let merged = results
        .iter()
        .filter_map(|r| r.hardware.clone())
        .fold(lvcsr::hw::UtteranceReport::default(), |acc, r| {
            acc.merge(&r)
        });
    let total_frames: usize = utterances.iter().map(Vec::len).sum();
    assert_eq!(merged.frames, total_frames);
    assert!(merged.real_time_fraction > 0.99);
    assert!(merged.energy.total_energy_j() > 0.0);
}
