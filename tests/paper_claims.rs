//! Integration tests that pin the paper's quantitative claims to the
//! experiment harness (the same functions the `experiments` binary prints).

use asr_bench::{
    e1_memory_bandwidth, e4_active_senones, e5_realtime_capacity, e6_comparison, f2_opu_figures,
    f3_viterbi_figures,
};
use lvcsr::hw::{AreaBudget, PowerModel};

#[test]
fn e1_table_matches_paper_numbers() {
    let rows = e1_memory_bandwidth();
    let expected = [(15.16, 1.516), (11.37, 1.137), (9.95, 0.995)];
    for (row, (mb, gbps)) in rows.iter().zip(expected) {
        assert!((row.measured_memory_mb - mb).abs() < 0.02, "{row:?}");
        assert!(
            (row.measured_bandwidth_gbps - gbps).abs() < 0.002,
            "{row:?}"
        );
        assert!((row.paper_memory_mb - mb).abs() < 1e-9);
    }
    // Shape: memory and bandwidth fall monotonically as the mantissa narrows.
    assert!(rows[0].measured_memory_mb > rows[1].measured_memory_mb);
    assert!(rows[1].measured_memory_mb > rows[2].measured_memory_mb);
}

#[test]
fn e2_power_and_area_match_synthesis() {
    let p = PowerModel::paper_calibrated();
    assert!((p.structure_full_power_w() - 0.2).abs() < 1e-9);
    assert!((AreaBudget::PAPER.structure_mm2() - 2.2).abs() < 1e-9);
    assert!((AreaBudget::PAPER.total_mm2(2) - 4.4).abs() < 1e-9);
}

#[test]
fn e4_feedback_keeps_active_senones_under_half() {
    let report = e4_active_senones(400, 2);
    assert!(report.with_feedback_mean < 0.5);
    assert!(report.with_feedback_mean < report.without_feedback_mean / 2.0);
}

#[test]
fn e5_two_structures_cover_just_under_half_the_inventory() {
    let report = e5_realtime_capacity(400);
    assert!(report.senones_per_frame_two_structures > 2_000);
    assert!(report.capacity_fraction_of_inventory < 0.5);
    assert!(report.capacity_fraction_of_inventory > 0.3);
    assert!(report.measured_worst_rtf < 1.0);
}

#[test]
fn e6_ours_is_the_lowest_power_realtime_large_vocabulary_system() {
    let table = e6_comparison(2_500);
    let ours = table.ours();
    assert!(ours.is_real_time());
    for row in table.rows().iter().skip(1) {
        if row.vocabulary >= 5_000 && row.is_real_time() {
            assert!(ours.power_w < row.power_w, "{row:?}");
        }
    }
}

#[test]
fn figure_level_characterisation() {
    let f2 = f2_opu_figures();
    assert_eq!(f2.logadd_sram_bytes, 512);
    assert!(f2.max_score_deviation < 0.1);
    let f3 = f3_viterbi_figures();
    assert_eq!(f3.len(), 3);
    // The unit sustains far more HMM updates per frame than the decoder needs.
    assert!(f3[0].hmms_per_frame > 10_000);
}
