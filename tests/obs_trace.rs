//! Trace-completeness acceptance: under randomised mixed traffic — batch
//! decodes, finished streams, cancelled streams, and quota-rejected
//! admissions — every admitted trace must form a balanced span sequence:
//! it opens with exactly one `admitted` event, closes with exactly one
//! terminal (`finished` or `rejected`), carries strictly increasing
//! sequence numbers and monotone timestamps, and no events leak outside a
//! trace (aside from worker-scope facts explicitly recorded on the nil
//! trace, e.g. shard dispatches from untraced tests sharing the process).
//!
//! The test installs the process-global telemetry so `ShardDispatch` events
//! from the decode pool attribute to the decode traces that triggered them
//! — which is why it lives in its own binary.

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{DecoderConfig, Recognizer};
use lvcsr::obs::{Fact, FieldValue, Telemetry};
use lvcsr::serve::{AsrServer, DecodeRequest, QueueScope, ServeConfig, ServeError};
use proptest::prelude::*;
use std::time::Duration;

fn build_task() -> SyntheticTask {
    TaskGenerator::new(27182)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

/// The four stock backends the trace taxonomy must hold over.
fn backend(index: usize) -> DecoderConfig {
    match index % 4 {
        0 => DecoderConfig::software(),
        1 => DecoderConfig::simd(),
        2 => DecoderConfig::hardware(2),
        _ => DecoderConfig::sharded_hardware(4),
    }
}

fn str_field<'f>(fact: &'f Fact, name: &str) -> &'f str {
    fact.field(name)
        .and_then(FieldValue::as_str)
        .unwrap_or_else(|| panic!("span fact missing string field {name}: {fact:?}"))
}

fn u64_field(fact: &Fact, name: &str) -> u64 {
    fact.field(name)
        .and_then(FieldValue::as_u64)
        .unwrap_or_else(|| panic!("span fact missing u64 field {name}: {fact:?}"))
}

proptest! {
    /// Every admitted trace is balanced, on every backend × worker count,
    /// under decode, stream-finish, stream-cancel, and rejected traffic.
    #[test]
    fn every_trace_is_balanced_under_mixed_traffic(
        backend_index in 0usize..4,
        workers_index in 0usize..3,
        n_decodes in 1usize..4,
        n_over_quota in 2usize..4,
        chunk in 1usize..5,
        seed in 0u64..500,
    ) {
        let workers = [1usize, 2, 4][workers_index];
        let task = build_task();
        let (telemetry, sink) = Telemetry::to_memory();
        // Install the global so the shard pool's dispatch events reach this
        // run's sink, attributed to the worker's pinned trace.
        lvcsr::obs::set_global(telemetry.clone());
        let server = AsrServer::spawn_observed(
            build_recognizer(&task, backend(backend_index)),
            ServeConfig::default()
                .workers(workers)
                // Deep shared queue: the only admissions that may bounce in
                // this scenario are the tenant burst's.
                .max_pending(4096)
                .max_batch(64)
                // A coalescing window long enough that the whole admission
                // burst lands while the first tenant-tagged request is still
                // queued — the quota then rejects the rest of its tenant's
                // burst deterministically.
                .max_batch_delay(Duration::from_millis(60))
                .tenant_quota(1),
            telemetry.clone(),
        )
        .expect("server");

        // Two stream sessions ride along with the batch traffic: one is
        // finished (worker-side Finished{completed}), one dropped mid-stream
        // (StreamCancel -> Finished{cancelled}).
        let finished_stream = server.open_stream().expect("open finished stream");
        let cancelled_stream = server.open_stream().expect("open cancelled stream");

        let futures: Vec<_> = (0..n_decodes)
            .map(|i| {
                let (features, _) = task.synthesize_utterance(1, 0.2, seed + i as u64);
                server.submit(features).expect("submit")
            })
            .collect();

        // A burst from one tenant against a quota of one: the first request
        // occupies the quota for as long as it stays queued, the rest of
        // the burst rejects at tenant scope.
        let mut tenant_accepted = Vec::new();
        let mut tenant_rejected = 0usize;
        let (noisy, _) = task.synthesize_utterance(1, 0.2, seed + 900);
        for _ in 0..n_over_quota {
            match server.submit(DecodeRequest::new(noisy.clone()).tenant("noisy")) {
                Ok(future) => tenant_accepted.push(future),
                Err(ServeError::QueueFull { scope, .. }) => {
                    prop_assert_eq!(scope, QueueScope::Tenant("noisy".into()));
                    tenant_rejected += 1;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        prop_assert!(tenant_rejected >= 1, "a 1-deep tenant quota must push back");

        let (stream_features, _) = task.synthesize_utterance(2, 0.2, seed + 1000);
        for feats in stream_features.chunks(chunk) {
            finished_stream.push_chunk(feats).expect("push finished");
            cancelled_stream.push_chunk(feats).expect("push cancelled");
        }
        let stream_future = finished_stream.finish().expect("finish stream");
        drop(cancelled_stream);

        for future in futures.into_iter().chain(tenant_accepted) {
            future.wait().expect("decode");
        }
        stream_future.wait().expect("stream decode");
        // Draining close: the dropped stream's cancel command is processed
        // before the workers exit.
        server.close();
        lvcsr::obs::set_global(Telemetry::disabled());

        // Group the span facts by trace, preserving emission order.
        let facts = sink.facts();
        let mut traces: Vec<(u64, Vec<Fact>)> = Vec::new();
        for fact in facts.iter().filter(|f| f.kind == "span") {
            let trace = u64_field(fact, "trace");
            if trace == 0 {
                // Worker-scope events recorded outside any trace (a shard
                // dispatch with no pinned request) are legal but excluded
                // from per-trace balance.
                continue;
            }
            match traces.iter_mut().find(|(t, _)| *t == trace) {
                Some((_, events)) => events.push(fact.clone()),
                None => traces.push((trace, vec![fact.clone()])),
            }
        }

        // One trace per admission: plain decodes, the accepted + rejected
        // tenant burst, and both stream sessions.
        prop_assert_eq!(traces.len(), n_decodes + n_over_quota + 2);

        let mut rejected_traces = 0usize;
        let mut cancelled_traces = 0usize;
        for (trace, events) in &traces {
            prop_assert_eq!(
                str_field(&events[0], "event"), "admitted",
                "trace {} must open with admitted", trace
            );
            let terminals = events
                .iter()
                .filter(|f| matches!(str_field(f, "event"), "finished" | "rejected"))
                .count();
            prop_assert_eq!(terminals, 1, "trace {} must terminate exactly once", trace);
            let last = events.last().expect("non-empty trace");
            let last_event = str_field(last, "event");
            prop_assert!(
                matches!(last_event, "finished" | "rejected"),
                "trace {} must end on its terminal, ended on {}",
                trace,
                last_event
            );
            match last_event {
                "rejected" => {
                    prop_assert_eq!(str_field(last, "scope"), "tenant");
                    rejected_traces += 1;
                }
                _ if str_field(last, "outcome") == "cancelled" => cancelled_traces += 1,
                _ => {}
            }
            for pair in events.windows(2) {
                prop_assert!(
                    u64_field(&pair[0], "seq") < u64_field(&pair[1], "seq"),
                    "trace {} sequence numbers must strictly increase", trace
                );
                prop_assert!(
                    pair[0].ts_us <= pair[1].ts_us,
                    "trace {} timestamps must be monotone", trace
                );
            }
        }
        prop_assert_eq!(rejected_traces, tenant_rejected);
        prop_assert_eq!(cancelled_traces, 1, "the dropped stream must cancel");
    }
}
