//! Multi-model serving integration tests: a registry of named models behind
//! one queue must route every request to exactly the model (and version) it
//! was admitted under — across mixed traffic, per-model/per-tenant admission
//! control, and live hot-swaps — while staying observationally identical to
//! decoding on each model directly.

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{DecodeResult, DecoderConfig, Recognizer};
use lvcsr::serve::{
    AsrServer, DecodeRequest, ModelRegistry, QueueScope, ServeConfig, ServeError, StreamOptions,
    DEFAULT_MODEL,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn build_task(seed: u64) -> SyntheticTask {
    TaskGenerator::new(seed)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

fn fingerprint(r: &DecodeResult) -> (Vec<u32>, usize, u64, Option<(usize, u64)>) {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

/// The four stock backends the multi-model layer must be transparent over.
fn backend(index: usize) -> DecoderConfig {
    match index % 4 {
        0 => DecoderConfig::software(),
        1 => DecoderConfig::simd(),
        2 => DecoderConfig::hardware(2),
        _ => DecoderConfig::sharded_hardware(4),
    }
}

/// Acceptance: two named models served concurrently from one queue, every
/// request decoded by exactly the model it named, with per-model stats and
/// per-model hardware reports splitting the shared totals.
#[test]
fn two_models_serve_concurrently_with_per_model_stats_and_reports() {
    let task_a = build_task(31415);
    let task_b = build_task(27182);
    let direct_a = build_recognizer(&task_a, DecoderConfig::hardware(2));
    let direct_b = build_recognizer(&task_b, DecoderConfig::hardware(2));
    let registry = ModelRegistry::new()
        .register(
            "dictation",
            build_recognizer(&task_a, DecoderConfig::hardware(2)),
        )
        .expect("register")
        .register(
            "voice_command",
            build_recognizer(&task_b, DecoderConfig::hardware(2)),
        )
        .expect("register")
        .default_model("dictation");
    let server =
        AsrServer::spawn_registry(registry, ServeConfig::default().workers(2)).expect("server");
    assert_eq!(server.models(), ["dictation", "voice_command"]);
    assert_eq!(server.default_model(), "dictation");

    let a_utts: Vec<Vec<Vec<f32>>> = (0..4)
        .map(|seed| task_a.synthesize_utterance(1, 0.2, seed).0)
        .collect();
    let b_utts: Vec<Vec<Vec<f32>>> = (0..3)
        .map(|seed| task_b.synthesize_utterance(1, 0.2, 50 + seed).0)
        .collect();
    let want_a = direct_a.decode_batch(&a_utts).expect("direct a");
    let want_b = direct_b.decode_batch(&b_utts).expect("direct b");

    // Interleave the two models' traffic through the one queue.
    let futures_a: Vec<_> = a_utts
        .iter()
        .map(|u| {
            server
                .submit(DecodeRequest::new(u.clone()).model("dictation"))
                .expect("submit a")
        })
        .collect();
    let futures_b: Vec<_> = b_utts
        .iter()
        .map(|u| {
            server
                .submit(DecodeRequest::new(u.clone()).model("voice_command"))
                .expect("submit b")
        })
        .collect();
    for (future, want) in futures_a.into_iter().zip(&want_a) {
        assert_eq!(
            fingerprint(&future.wait().expect("decode a")),
            fingerprint(want),
            "dictation requests must decode on the dictation model"
        );
    }
    for (future, want) in futures_b.into_iter().zip(&want_b) {
        assert_eq!(
            fingerprint(&future.wait().expect("decode b")),
            fingerprint(want),
            "voice_command requests must decode on the voice_command model"
        );
    }

    // Per-model stats split the shared totals exactly.
    let stats = server.stats();
    let stats_a = server.model_stats("dictation").expect("dictation stats");
    let stats_b = server
        .model_stats("voice_command")
        .expect("voice_command stats");
    assert_eq!(stats_a.completed, 4);
    assert_eq!(stats_b.completed, 3);
    assert_eq!(stats.completed, 7);
    assert_eq!(stats_a.submitted + stats_b.submitted, stats.submitted);
    assert_eq!(stats.failed, 0);

    // Per-model hardware reports: each model saw exactly its own frames.
    let frames_a: usize = a_utts.iter().map(Vec::len).sum();
    let frames_b: usize = b_utts.iter().map(Vec::len).sum();
    let report_a = server
        .model_hardware_report("dictation")
        .expect("dictation report");
    let report_b = server
        .model_hardware_report("voice_command")
        .expect("voice_command report");
    // Each worker folds its share sequentially; across the two workers the
    // per-model frames fold with max, so the per-model figure is bounded by
    // the sequential total and is at least one worker's share.
    assert!(report_a.frames <= frames_a);
    assert!(report_b.frames <= frames_b);
    assert!(report_a.frames > 0);
    assert!(report_b.frames > 0);
    assert!(server.hardware_report().is_some());
    server.close();
}

/// An unnamed request routes to the default model; [`AsrServer::spawn`] keeps
/// the whole single-model surface working without naming anything.
#[test]
fn default_model_routing_keeps_single_model_callers_working() {
    let task = build_task(31415);
    let direct = build_recognizer(&task, DecoderConfig::simd());
    let server = AsrServer::spawn(
        build_recognizer(&task, DecoderConfig::simd()),
        ServeConfig::default(),
    )
    .expect("server");
    assert_eq!(server.default_model(), DEFAULT_MODEL);
    let (features, _) = task.synthesize_utterance(1, 0.2, 11);
    let want = direct.decode_features(&features).expect("direct");

    // Bare features, an unnamed DecodeRequest, and an explicitly-named one
    // all land on the same model.
    let plain = server.submit(features.clone()).expect("plain");
    let unnamed = server
        .submit(DecodeRequest::new(features.clone()))
        .expect("unnamed");
    let named = server
        .submit(DecodeRequest::new(features.clone()).model(DEFAULT_MODEL))
        .expect("named");
    for future in [plain, unnamed, named] {
        assert_eq!(
            fingerprint(&future.wait().expect("decode")),
            fingerprint(&want)
        );
    }
    // Streams route the same way.
    let stream = server
        .open_stream_with(StreamOptions::new())
        .expect("stream");
    assert_eq!(stream.model(), DEFAULT_MODEL);
    stream.push_chunk(&features).expect("push");
    assert_eq!(
        fingerprint(&stream.finish().expect("finish").wait().expect("result")),
        fingerprint(&want)
    );
    assert_eq!(
        server.model_stats(DEFAULT_MODEL).expect("stats").completed,
        4
    );
    // Naming a model nobody registered is a typed error, not a fallback.
    assert!(matches!(
        server.submit(DecodeRequest::new(features).model("absent")),
        Err(ServeError::UnknownModel { model, .. }) if model == "absent"
    ));
}

/// Per-model quota: one model's burst is rejected at its own scope while the
/// co-resident model keeps admitting — the noisy neighbour is contained.
#[test]
fn per_model_quota_rejects_with_the_model_scope() {
    let task_a = build_task(31415);
    let task_b = build_task(27182);
    let registry = ModelRegistry::new()
        .register("noisy", build_recognizer(&task_a, DecoderConfig::simd()))
        .expect("register")
        .register("quiet", build_recognizer(&task_b, DecoderConfig::simd()))
        .expect("register");
    let server = AsrServer::spawn_registry(
        registry,
        ServeConfig::default()
            .max_batch(64)
            // A long coalescing window keeps requests queued while the burst
            // overfills the model quota.
            .max_batch_delay(Duration::from_millis(300))
            .model_quota(2),
    )
    .expect("server");
    let (features_a, _) = task_a.synthesize_utterance(1, 0.2, 1);
    let (features_b, _) = task_b.synthesize_utterance(1, 0.2, 2);
    let mut accepted = Vec::new();
    let mut noisy_rejections = 0u64;
    for _ in 0..12 {
        match server.submit(DecodeRequest::new(features_a.clone()).model("noisy")) {
            Ok(future) => accepted.push(future),
            Err(ServeError::QueueFull {
                capacity, scope, ..
            }) => {
                assert_eq!(capacity, 2);
                assert_eq!(scope, QueueScope::Model("noisy".into()));
                noisy_rejections += 1;
                // The moment the noisy model's quota pushes back, its idle
                // neighbour still admits — the burst is contained to the
                // scope that caused it.
                accepted.push(
                    server
                        .submit(DecodeRequest::new(features_b.clone()).model("quiet"))
                        .expect("the quiet model must keep admitting"),
                );
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(noisy_rejections > 0, "the model quota must push back");
    for future in accepted {
        assert!(future.wait().is_ok());
    }
    assert_eq!(
        server.model_stats("noisy").expect("stats").rejected,
        noisy_rejections
    );
    assert_eq!(server.model_stats("quiet").expect("stats").rejected, 0);
}

/// Per-tenant quota: one tenant's burst is rejected at its own scope while
/// another tenant of the *same model* keeps admitting.
#[test]
fn per_tenant_quota_rejects_with_the_tenant_scope() {
    let task = build_task(31415);
    let server = AsrServer::spawn(
        build_recognizer(&task, DecoderConfig::simd()),
        ServeConfig::default()
            .max_batch(64)
            .max_batch_delay(Duration::from_millis(300))
            .tenant_quota(2),
    )
    .expect("server");
    let (features, _) = task.synthesize_utterance(1, 0.2, 1);
    let mut accepted = Vec::new();
    let mut acme_rejections = 0u64;
    for _ in 0..12 {
        match server.submit(DecodeRequest::new(features.clone()).tenant("acme")) {
            Ok(future) => accepted.push(future),
            Err(ServeError::QueueFull {
                capacity, scope, ..
            }) => {
                assert_eq!(capacity, 2);
                assert_eq!(scope, QueueScope::Tenant("acme".into()));
                acme_rejections += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(acme_rejections > 0, "the tenant quota must push back");
    // A different tenant — and anonymous traffic — still admit.
    accepted.push(
        server
            .submit(DecodeRequest::new(features.clone()).tenant("globex"))
            .expect("another tenant must keep admitting"),
    );
    accepted.push(
        server
            .submit(features.clone())
            .expect("anonymous traffic is not charged to any tenant"),
    );
    for future in accepted {
        assert!(future.wait().is_ok());
    }
    assert_eq!(server.stats().rejected, acme_rejections);
}

/// Hot-swap, deterministically: requests submitted before the swap decode on
/// the old version, requests after it on the new one, no drain in between —
/// and a pinned stream session opened before the swap finishes on the
/// version that opened it.
#[test]
fn hot_swap_routes_new_admissions_and_pins_old_ones() {
    let task_v1 = build_task(31415);
    let task_v2 = build_task(27182);
    let rec_v1 = Arc::new(build_recognizer(&task_v1, DecoderConfig::simd()));
    let rec_v2 = Arc::new(build_recognizer(&task_v2, DecoderConfig::simd()));
    let registry = ModelRegistry::new()
        .register_shared("m", Arc::clone(&rec_v1))
        .expect("register");
    let server = AsrServer::spawn_registry(
        registry,
        // A long window so pre-swap submissions are still queued when the
        // swap lands — the version pin, not timing, must route them.
        ServeConfig::default()
            .max_batch(64)
            .max_batch_delay(Duration::from_millis(200)),
    )
    .expect("server");
    let (features, _) = task_v1.synthesize_utterance(2, 0.2, 5);
    let want_v1 = rec_v1.decode_features(&features).expect("direct v1");
    let want_v2 = rec_v2.decode_features(&features).expect("direct v2");
    assert_ne!(
        fingerprint(&want_v1),
        fingerprint(&want_v2),
        "the two versions must be distinguishable for this test to mean anything"
    );

    let stream = server
        .open_stream_with(StreamOptions::new().model("m"))
        .expect("stream");
    stream.push_chunk(&features[..3]).expect("push");
    let before: Vec<_> = (0..3)
        .map(|_| server.submit(features.clone()).expect("submit before"))
        .collect();
    assert_eq!(server.model_version("m"), Some(1));
    assert_eq!(
        server
            .swap_model_shared("m", Arc::clone(&rec_v2))
            .expect("swap"),
        2
    );
    assert_eq!(server.model_version("m"), Some(2));
    let after: Vec<_> = (0..3)
        .map(|_| server.submit(features.clone()).expect("submit after"))
        .collect();
    stream.push_chunk(&features[3..]).expect("push after swap");

    for future in before {
        assert_eq!(
            fingerprint(&future.wait().expect("before")),
            fingerprint(&want_v1),
            "pre-swap admissions must decode on the version that admitted them"
        );
    }
    for future in after {
        assert_eq!(
            fingerprint(&future.wait().expect("after")),
            fingerprint(&want_v2),
            "post-swap admissions must decode on the new version"
        );
    }
    // The stream pinned v1 at open: chunks pushed after the swap still
    // decode there, and the final result is v1's offline decode.
    assert_eq!(
        fingerprint(&stream.finish().expect("finish").wait().expect("stream")),
        fingerprint(&want_v1),
        "a session spans the swap on the version that opened it"
    );
    // Swapping an unregistered name is a typed error, not an insert.
    assert!(matches!(
        server.swap_model_shared("absent", rec_v2),
        Err(ServeError::UnknownModel { model, .. }) if model == "absent"
    ));
    let stats = server.model_stats("m").expect("stats");
    assert_eq!(stats.completed, 7);
    assert_eq!(stats.failed, 0);
    server.close();
}

proptest! {
    /// Acceptance: hot-swap under sustained mixed load loses and misroutes
    /// nothing, on every backend and worker count.  A co-resident "other"
    /// model takes interleaved traffic throughout; "m" is swapped mid-flood;
    /// every future resolves, pre-swap admissions match direct decoding on
    /// v1, post-swap admissions on v2, and the other model's results are
    /// untouched by its neighbour's swap.
    #[test]
    fn hot_swap_under_load_loses_and_misroutes_nothing(
        backend_index in 0usize..4,
        workers_index in 0usize..3,
        n_before in 1usize..4,
        n_after in 1usize..4,
        seed in 0u64..200,
    ) {
        let workers = [1usize, 2, 4][workers_index];
        let task_v1 = build_task(31415);
        let task_v2 = build_task(27182);
        let config = backend(backend_index);
        let rec_v1 = Arc::new(build_recognizer(&task_v1, config.clone()));
        let rec_v2 = Arc::new(build_recognizer(&task_v2, config.clone()));
        let rec_other = Arc::new(build_recognizer(&task_v2, config));

        let (features, _) = task_v1.synthesize_utterance(2, 0.2, seed);
        let (other_features, _) = task_v2.synthesize_utterance(1, 0.2, seed + 1000);
        let want_v1 = rec_v1.decode_features(&features).expect("direct v1");
        let want_v2 = rec_v2.decode_features(&features).expect("direct v2");
        let want_other = rec_other.decode_features(&other_features).expect("direct other");
        prop_assume!(fingerprint(&want_v1) != fingerprint(&want_v2));

        let registry = ModelRegistry::new()
            .register_shared("m", Arc::clone(&rec_v1)).expect("register m")
            .register_shared("other", Arc::clone(&rec_other)).expect("register other");
        let server = AsrServer::spawn_registry(
            registry,
            ServeConfig::default().workers(workers),
        ).expect("server");

        let mut other_futures = Vec::new();
        let mut submit_other = |server: &AsrServer| {
            other_futures.push(
                server
                    .submit(DecodeRequest::new(other_features.clone()).model("other"))
                    .expect("submit other"),
            );
        };
        let before: Vec<_> = (0..n_before)
            .map(|_| {
                submit_other(&server);
                server.submit(features.clone()).expect("submit before")
            })
            .collect();
        prop_assert_eq!(
            server.swap_model_shared("m", Arc::clone(&rec_v2)).expect("swap"),
            2
        );
        let after: Vec<_> = (0..n_after)
            .map(|_| {
                submit_other(&server);
                server.submit(features.clone()).expect("submit after")
            })
            .collect();

        for future in before {
            prop_assert_eq!(
                fingerprint(&future.wait().expect("before resolves")),
                fingerprint(&want_v1)
            );
        }
        for future in after {
            prop_assert_eq!(
                fingerprint(&future.wait().expect("after resolves")),
                fingerprint(&want_v2)
            );
        }
        for future in other_futures {
            prop_assert_eq!(
                fingerprint(&future.wait().expect("other resolves")),
                fingerprint(&want_other)
            );
        }
        let total = (n_before + n_after) as u64;
        let stats = server.stats();
        prop_assert_eq!(stats.completed, 2 * total);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(server.model_stats("m").expect("m stats").completed, total);
        prop_assert_eq!(server.model_stats("other").expect("other stats").completed, total);
        server.close();
    }
}
