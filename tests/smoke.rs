//! Smoke test for the workspace bring-up: generate a tiny synthetic task,
//! decode the same utterance on both backends, and check the whole pipeline is
//! deterministic for a fixed seed — rebuilding every object from scratch must
//! reproduce the identical hypothesis and statistics.

use lvcsr::corpus::{TaskConfig, TaskGenerator};
use lvcsr::decoder::{DecodeResult, DecoderConfig, Recognizer};
use lvcsr::lexicon::WordId;

const TASK_SEED: u64 = 2006;
const UTTERANCE_SEED: u64 = 5;

/// Builds everything from scratch and decodes one fixed utterance.
fn decode_once(config: DecoderConfig) -> (DecodeResult, Vec<WordId>) {
    let task = TaskGenerator::new(TASK_SEED)
        .generate(&TaskConfig::tiny())
        .expect("task generation");
    let recognizer = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser construction");
    let (features, reference) = task.synthesize_utterance(3, 0.2, UTTERANCE_SEED);
    let result = recognizer.decode_features(&features).expect("decode");
    (result, reference)
}

#[test]
fn hardware_decode_is_deterministic() {
    let (a, ref_a) = decode_once(DecoderConfig::hardware(2));
    let (b, ref_b) = decode_once(DecoderConfig::hardware(2));
    assert_eq!(ref_a, ref_b, "task synthesis must be deterministic");
    assert_eq!(a.hypothesis.words, b.hypothesis.words);
    assert_eq!(a.hypothesis.text, b.hypothesis.text);
    assert_eq!(
        a.stats.total_senones_scored(),
        b.stats.total_senones_scored()
    );
    let (hw_a, hw_b) = (a.hardware.expect("report"), b.hardware.expect("report"));
    assert_eq!(hw_a.senones_scored, hw_b.senones_scored);
    assert_eq!(hw_a.frames, hw_b.frames);
}

#[test]
fn software_decode_is_deterministic() {
    let (a, ref_a) = decode_once(DecoderConfig::software());
    let (b, ref_b) = decode_once(DecoderConfig::software());
    assert_eq!(ref_a, ref_b);
    assert_eq!(a.hypothesis.words, b.hypothesis.words);
    assert_eq!(a.hypothesis.text, b.hypothesis.text);
    assert!(
        a.hardware.is_none(),
        "software backend has no hardware report"
    );
}

#[test]
fn wrong_feature_dimension_is_rejected_on_both_backends() {
    for config in [DecoderConfig::hardware(2), DecoderConfig::software()] {
        let task = TaskGenerator::new(TASK_SEED)
            .generate(&TaskConfig::tiny())
            .expect("task generation");
        let recognizer = Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .expect("recogniser construction");
        let model_dim = task.acoustic_model.feature_dim();
        let short_frames = vec![vec![0.0f32; 3]];
        let err = recognizer
            .decode_features(&short_frames)
            .expect_err("short frames must be rejected, not silently truncated");
        match err {
            lvcsr::decoder::DecodeError::DimensionMismatch { expected, got } => {
                assert_eq!(expected, model_dim);
                assert_eq!(got, 3);
            }
            other => panic!("expected DimensionMismatch, got {other}"),
        }
    }
}

#[test]
fn backends_decode_the_reference_on_an_easy_task() {
    let (hw, reference) = decode_once(DecoderConfig::hardware(2));
    let (sw, _) = decode_once(DecoderConfig::software());
    assert_eq!(hw.hypothesis.words, reference);
    assert_eq!(sw.hypothesis.words, reference);
}
