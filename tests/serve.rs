//! Serving-front integration tests: the queue + micro-batcher must be
//! observationally identical to calling `decode_batch` directly, on every
//! backend, and overload must surface as the typed backpressure error rather
//! than dropped or corrupted requests.

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{DecodeResult, DecoderConfig, Recognizer};
use lvcsr::serve::{AsrServer, PartialHypothesis, ServeConfig, ServeError};
use proptest::prelude::*;
use std::time::Duration;

fn build_task() -> SyntheticTask {
    TaskGenerator::new(31415)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

fn fingerprint(r: &DecodeResult) -> (Vec<u32>, usize, u64, Option<(usize, u64)>) {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

/// Acceptance: `decode_batch` routed through the serving queue matches a
/// direct `decode_batch` call, on every backend (including the sharded
/// scale-out one).
#[test]
fn queued_decoding_matches_direct_decode_batch_on_every_backend() {
    let task = build_task();
    let utterances: Vec<Vec<Vec<f32>>> = (0..8)
        .map(|seed| {
            task.synthesize_utterance(1 + (seed as usize) % 2, 0.2, seed)
                .0
        })
        .collect();
    for config in [
        DecoderConfig::software(),
        DecoderConfig::simd(),
        DecoderConfig::hardware(2),
        DecoderConfig::sharded_hardware(4),
    ] {
        let direct = build_recognizer(&task, config.clone())
            .decode_batch(&utterances)
            .expect("direct decode");
        let server = AsrServer::spawn(
            build_recognizer(&task, config.clone()),
            ServeConfig::default(),
        )
        .expect("server");
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).expect("submit"))
            .collect();
        for (future, want) in futures.into_iter().zip(&direct) {
            let got = future.wait().expect("queued decode");
            assert_eq!(
                fingerprint(&got),
                fingerprint(want),
                "queue must not change results for {config:?}"
            );
        }
    }
}

/// The four stock backends the serving front must be transparent over.
fn backend(index: usize) -> DecoderConfig {
    match index % 4 {
        0 => DecoderConfig::software(),
        1 => DecoderConfig::simd(),
        2 => DecoderConfig::hardware(2),
        _ => DecoderConfig::sharded_hardware(4),
    }
}

proptest! {
    /// Acceptance: an M-worker server is observationally identical to direct
    /// decoding for workers ∈ {1, 2, 4} on every backend — batch submissions
    /// match `decode_batch`, and stream sessions interleaved with the batch
    /// traffic match offline decodes of their chunks, with partials
    /// prefix-consistent and per-session chunk order preserved (the pinning
    /// rule at work: more workers must never reorder one session's chunks).
    #[test]
    fn multi_worker_serving_matches_direct_decoding_on_every_backend(
        backend_index in 0usize..4,
        workers_index in 0usize..3,
        n_utterances in 2usize..6,
        chunk in 1usize..5,
        seed in 0u64..500,
    ) {
        let workers = [1usize, 2, 4][workers_index];
        let task = build_task();
        let config = backend(backend_index);
        let direct = build_recognizer(&task, config.clone());
        let server = AsrServer::spawn(
            build_recognizer(&task, config),
            ServeConfig::default().workers(workers),
        )
        .expect("server");

        let utterances: Vec<Vec<Vec<f32>>> = (0..n_utterances)
            .map(|i| {
                task.synthesize_utterance(1 + i % 2, 0.2, seed + i as u64).0
            })
            .collect();
        let want_batch = direct.decode_batch(&utterances).expect("direct batch");
        let (stream_a, _) = task.synthesize_utterance(1, 0.2, seed + 1000);
        let (stream_b, _) = task.synthesize_utterance(2, 0.2, seed + 2000);
        let want_a = direct.decode_features(&stream_a).expect("direct a");
        let want_b = direct.decode_features(&stream_b).expect("direct b");

        // Open both sessions, then flood the batch traffic, then interleave
        // the two sessions' chunks — everything shares the one queue.
        let a = server.open_stream().expect("open a");
        let b = server.open_stream().expect("open b");
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).expect("submit"))
            .collect();
        let mut pushed = [0usize; 2];
        let mut previous = [PartialHypothesis::default(), PartialHypothesis::default()];
        let sessions = [(&a, &stream_a), (&b, &stream_b)];
        loop {
            let mut advanced = false;
            for (i, (handle, features)) in sessions.iter().enumerate() {
                if pushed[i] < features.len() {
                    let end = (pushed[i] + chunk).min(features.len());
                    handle.push_chunk(&features[pushed[i]..end]).expect("push");
                    pushed[i] = end;
                    advanced = true;
                    // Wait for the pinned worker to publish, then check the
                    // partial extends (never rewrites) the previous snapshot.
                    while handle.partial().frames < pushed[i] {
                        std::thread::yield_now();
                    }
                    let partial = handle.partial();
                    prop_assert!(partial.words.starts_with(&previous[i].words));
                    previous[i] = partial;
                }
            }
            if !advanced {
                break;
            }
        }
        let got_a = a.finish().expect("finish a").wait().expect("stream a");
        let got_b = b.finish().expect("finish b").wait().expect("stream b");
        prop_assert_eq!(fingerprint(&got_a), fingerprint(&want_a));
        prop_assert_eq!(fingerprint(&got_b), fingerprint(&want_b));
        for (future, want) in futures.into_iter().zip(&want_batch) {
            let got = future.wait().expect("queued decode");
            prop_assert_eq!(fingerprint(&got), fingerprint(want));
        }
        let stats = server.stats();
        prop_assert_eq!(stats.completed, n_utterances as u64 + 2);
        prop_assert_eq!(stats.failed, 0);
        server.close();
    }
}

/// Overload: a full queue refuses with the typed [`ServeError::QueueFull`]
/// and *every accepted request still completes* — backpressure sheds at the
/// door, it never drops admitted work.
#[test]
fn overload_returns_typed_backpressure_and_drops_nothing() {
    let task = build_task();
    let server = AsrServer::spawn(
        build_recognizer(&task, DecoderConfig::simd()),
        ServeConfig::default()
            .max_pending(3)
            .max_batch(16)
            // A long coalescing window keeps the worker waiting while the
            // burst overfills the queue.
            .max_batch_delay(Duration::from_millis(300)),
    )
    .expect("server");
    let (features, reference) = task.synthesize_utterance(1, 0.2, 7);
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..24 {
        match server.submit(features.clone()) {
            Ok(future) => accepted.push(future),
            Err(ServeError::QueueFull {
                capacity, scope, ..
            }) => {
                assert_eq!(capacity, 3);
                assert_eq!(scope, lvcsr::serve::QueueScope::Queue);
                rejected += 1;
            }
            Err(other) => panic!("overload must be QueueFull, got {other}"),
        }
    }
    assert!(rejected > 0, "a 3-deep queue must push back on a 24-burst");
    assert!(!accepted.is_empty(), "admission must still work under load");
    let accepted_count = accepted.len() as u64;
    for future in accepted {
        let result = future.wait().expect("accepted requests complete");
        assert_eq!(result.hypothesis.words, reference);
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, accepted_count);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.submitted, accepted_count);
}

/// The stream-level hardware report accumulates across queued utterances
/// exactly like a manual `UtteranceReport::merge` fold over direct decodes.
#[test]
fn stream_hardware_report_matches_a_direct_fold() {
    let task = build_task();
    let utterances: Vec<Vec<Vec<f32>>> = (0..5)
        .map(|seed| task.synthesize_utterance(1, 0.2, 40 + seed).0)
        .collect();
    let direct = build_recognizer(&task, DecoderConfig::hardware(2))
        .decode_batch(&utterances)
        .expect("direct decode");
    let mut want = lvcsr::hw::UtteranceReport::default();
    for result in &direct {
        want = want.merge(result.hardware.as_ref().expect("report"));
    }
    let server = AsrServer::spawn(
        build_recognizer(&task, DecoderConfig::hardware(2)),
        ServeConfig::default(),
    )
    .expect("server");
    let futures: Vec<_> = utterances
        .iter()
        .map(|u| server.submit(u.clone()).expect("submit"))
        .collect();
    for future in futures {
        future.wait().expect("queued decode");
    }
    let got = server.hardware_report().expect("stream report");
    assert_eq!(got.frames, want.frames);
    assert_eq!(got.senones_scored, want.senones_scored);
    assert!((got.energy.audio_seconds - want.energy.audio_seconds).abs() < 1e-12);
}

/// Shutdown is graceful: accepted work drains, later submissions fail
/// `Closed`, and nothing hangs.
#[test]
fn shutdown_drains_accepted_work() {
    let task = build_task();
    let server = AsrServer::spawn(
        build_recognizer(&task, DecoderConfig::simd()),
        ServeConfig::default().max_batch_delay(Duration::from_millis(200)),
    )
    .expect("server");
    let (features, reference) = task.synthesize_utterance(1, 0.2, 3);
    let pending: Vec<_> = (0..6)
        .map(|_| server.submit(features.clone()).expect("submit"))
        .collect();
    server.close();
    for future in pending {
        assert_eq!(
            future.wait().expect("drained on close").hypothesis.words,
            reference
        );
    }
}
