//! Sharding integration tests: a `ShardedScorer` must be observationally
//! identical to its unsharded inner scorer — same senone scores, same
//! hypotheses, same decode statistics — for any shard count.  Sharding is a
//! pure throughput optimisation, exactly like batching.

use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{
    DecodeResult, DecoderConfig, GmmSelectionConfig, PhoneDecoder, Recognizer, ScoringBackendKind,
    SenoneScorer, ShardedScorer,
};
use proptest::prelude::*;

fn build_task() -> SyntheticTask {
    TaskGenerator::new(2424)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

fn inner_backend(index: usize) -> ScoringBackendKind {
    match index % 3 {
        0 => ScoringBackendKind::Software,
        1 => ScoringBackendKind::Simd,
        _ => ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default()),
    }
}

/// The decode surface that must not change under sharding.  The hardware
/// report is compared through its work counters (frames, senones): the
/// sharded report's cycle/energy shape legitimately differs (N machines),
/// but the amount of audio and scoring work must not.
type Fingerprint = (Vec<u32>, Vec<u32>, usize, u64, usize, Option<(usize, u64)>);

fn fingerprint(r: &DecodeResult) -> Fingerprint {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.live_hypothesis.words.iter().map(|w| w.0).collect(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.lattice.len(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

proptest! {
    /// Sharded(n, inner) == inner, for n in {1, 2, 4}, every inner backend,
    /// with and without Conditional Down Sampling in the loop.
    #[test]
    fn sharded_decoding_matches_the_unsharded_inner_scorer(
        backend_index in 0usize..3,
        shards_index in 0usize..3,
        cds_period in 1usize..3,
        words in 1usize..3,
        seed in 0u64..500,
    ) {
        let shards = [1usize, 2, 4][shards_index];
        let task = build_task();
        let inner = inner_backend(backend_index);
        let selection = GmmSelectionConfig::with_cds(cds_period);

        let mut plain_config = DecoderConfig {
            backend: inner.clone(),
            ..DecoderConfig::default()
        };
        plain_config.gmm_selection = selection;
        let mut sharded_config = DecoderConfig {
            backend: ScoringBackendKind::Sharded {
                shards,
                inner: Box::new(inner),
            },
            ..DecoderConfig::default()
        };
        sharded_config.gmm_selection = selection;

        let plain = build_recognizer(&task, plain_config);
        let sharded = build_recognizer(&task, sharded_config);
        let (features, _) = task.synthesize_utterance(words, 0.2, seed);

        let want = plain.decode_features(&features).expect("plain decode");
        let got = sharded.decode_features(&features).expect("sharded decode");
        prop_assert_eq!(fingerprint(&want), fingerprint(&got));
    }
}

/// The scoped-thread path must give the same results as the sequential
/// fan-out path on the same shards — run both explicitly so the parallel
/// code is exercised even where the host heuristic would disable it
/// (single-CPU CI containers).
#[test]
fn forced_parallel_decode_matches_sequential_decode() {
    let task = build_task();
    let rec = build_recognizer(&task, DecoderConfig::software());
    let (features, _) = task.synthesize_utterance(2, 0.2, 11);
    let decode_with = |parallel: bool| -> DecodeResult {
        let selection = GmmSelectionConfig::default();
        let shards: Vec<Box<dyn SenoneScorer>> = (0..4)
            .map(|_| {
                ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default())
                    .build_scorer(&selection)
                    .expect("shard")
            })
            .collect();
        let scorer = ShardedScorer::new(shards)
            .expect("sharded scorer")
            .with_parallelism(parallel);
        let mut decoder = PhoneDecoder::new(Box::new(scorer), selection);
        rec.decode_features_with(&features, &mut decoder)
            .expect("decode")
    };
    let threaded = decode_with(true);
    let sequential = decode_with(false);
    assert_eq!(fingerprint(&threaded), fingerprint(&sequential));
    // Both produced a merged hardware report covering the whole utterance.
    let hw = threaded.hardware.expect("sharded SoC report");
    assert_eq!(hw.frames, features.len());
}

/// Sharding the SoC quarters the per-shard accelerator load, which the
/// merged report shows as per-frame real-time slack — the scale-out effect
/// the serving layer banks on, measured in *simulated cycles* rather than
/// host wall-clock so it holds deterministically on any machine (including
/// single-CPU CI containers where no wall-clock win is possible).
#[test]
fn sharding_creates_real_time_slack_in_simulated_cycles() {
    use lvcsr::acoustic::SenoneId;
    // A heavy acoustic load: every senone of a 12-component, 39-dim model
    // scored every frame, with no host-stage charge, so the real-time factor
    // is purely the accelerator's.
    let task = TaskGenerator::new(88)
        .generate(&TaskConfig {
            vocabulary_size: 20,
            num_phones: 40,
            feature_dim: 39,
            components_per_senone: 12,
            ..TaskConfig::small()
        })
        .expect("task");
    let model = &task.acoustic_model;
    let ids: Vec<SenoneId> = (0..model.senones().len() as u32).map(SenoneId).collect();
    let run = |backend: lvcsr::decoder::ScoringBackendKind| {
        let mut scorer = backend
            .build_scorer(&GmmSelectionConfig::default())
            .expect("scorer");
        for f in 0..10 {
            let x: Vec<f32> = (0..model.feature_dim())
                .map(|d| 0.01 * (f + d) as f32)
                .collect();
            scorer.begin_frame(&x);
            scorer.score_senones(model, &ids, &x).expect("score");
            scorer.end_frame(0, 0);
        }
        scorer.finish_utterance().expect("report")
    };
    let single = run(lvcsr::decoder::ScoringBackendKind::Hardware(
        lvcsr::hw::SocConfig::default(),
    ));
    let sharded = run(lvcsr::decoder::ScoringBackendKind::Sharded {
        shards: 4,
        inner: Box::new(lvcsr::decoder::ScoringBackendKind::Hardware(
            lvcsr::hw::SocConfig::default(),
        )),
    });
    assert_eq!(sharded.frames, single.frames);
    assert_eq!(sharded.senones_scored, single.senones_scored);
    // Four shards of two structures each: the busiest shard carries ~1/4 of
    // the scoring cycles, so its simulated real-time factor must be well
    // under the single SoC's (feature-load overhead keeps it above 1/4).
    assert!(
        sharded.worst_frame_rtf < single.worst_frame_rtf * 0.5,
        "4 shards must at least halve the accelerator load: {} vs {}",
        sharded.worst_frame_rtf,
        single.worst_frame_rtf
    );
}
