//! Sharding integration tests: a `ShardedScorer` must be observationally
//! identical to its unsharded inner scorer — same senone scores, same
//! hypotheses, same decode statistics — for any shard count, any dispatch
//! mechanism (persistent worker pool, per-frame scoped threads, inline
//! fan-out) and any partition policy (equal split, cost-weighted).  Sharding
//! is a pure throughput optimisation, exactly like batching.

use lvcsr::acoustic::{
    AcousticModel, AcousticModelConfig, DiagGaussian, GaussianMixture, HmmTopology, PhoneId,
    SenoneId, SenonePool, TransitionMatrix, Triphone, TriphoneInventory,
};
use lvcsr::corpus::{SyntheticTask, TaskConfig, TaskGenerator};
use lvcsr::decoder::{
    DecodeResult, DecoderConfig, GmmSelectionConfig, PhoneDecoder, Recognizer, ScoringBackendKind,
    SenoneScorer, ShardDispatch, ShardPartition, ShardTuning, ShardedScorer,
};
use proptest::prelude::*;

fn build_task() -> SyntheticTask {
    TaskGenerator::new(2424)
        .generate(&TaskConfig::tiny())
        .expect("task")
}

fn build_recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser")
}

/// The four stock backends a shard can run: the three leaves plus a nested
/// sharded backend (pointless but legal, and it must stay pure too).
fn inner_backend(index: usize) -> ScoringBackendKind {
    match index % 4 {
        0 => ScoringBackendKind::Software,
        1 => ScoringBackendKind::Simd,
        2 => ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default()),
        _ => ScoringBackendKind::Sharded {
            shards: 2,
            inner: Box::new(ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default())),
            tuning: ShardTuning::default(),
        },
    }
}

/// The decode surface that must not change under sharding.  The hardware
/// report is compared through its work counters (frames, senones): the
/// sharded report's cycle/energy shape legitimately differs (N machines),
/// but the amount of audio and scoring work must not.
type Fingerprint = (Vec<u32>, Vec<u32>, usize, u64, usize, Option<(usize, u64)>);

fn fingerprint(r: &DecodeResult) -> Fingerprint {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.live_hypothesis.words.iter().map(|w| w.0).collect(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.lattice.len(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

proptest! {
    /// Sharded(n, inner, tuning) == inner, for n in {1, 2, 4}, every inner
    /// backend (software / simd / soc / nested sharded), every dispatch ×
    /// partition tuning, with and without Conditional Down Sampling — both
    /// offline and through `DecodeSession` streaming steps.
    #[test]
    fn sharded_decoding_matches_the_unsharded_inner_scorer(
        backend_index in 0usize..4,
        shards_index in 0usize..3,
        dispatch_index in 0usize..2,
        partition_index in 0usize..2,
        cds_period in 1usize..3,
        words in 1usize..3,
        chunk_index in 0usize..3,
        seed in 0u64..500,
    ) {
        let shards = [1usize, 2, 4][shards_index];
        let tuning = ShardTuning {
            dispatch: [ShardDispatch::Pooled, ShardDispatch::ScopedSpawn][dispatch_index],
            partition: [ShardPartition::EqualSplit, ShardPartition::CostWeighted][partition_index],
            ..ShardTuning::default()
        };
        let chunk = [1usize, 3, 7][chunk_index];
        let task = build_task();
        let inner = inner_backend(backend_index);
        let selection = GmmSelectionConfig::with_cds(cds_period);

        let mut plain_config = DecoderConfig {
            backend: inner.clone(),
            ..DecoderConfig::default()
        };
        plain_config.gmm_selection = selection;
        let mut sharded_config = DecoderConfig {
            backend: ScoringBackendKind::Sharded {
                shards,
                inner: Box::new(inner),
                tuning,
            },
            ..DecoderConfig::default()
        };
        sharded_config.gmm_selection = selection;

        let plain = build_recognizer(&task, plain_config);
        let sharded = build_recognizer(&task, sharded_config);
        let (features, _) = task.synthesize_utterance(words, 0.2, seed);

        let want = plain.decode_features(&features).expect("plain decode");
        let got = sharded.decode_features(&features).expect("sharded decode");
        prop_assert_eq!(fingerprint(&want), fingerprint(&got));

        // The same sharded decoder fed frame chunks through a streaming
        // session must land on the identical result.
        let mut session = sharded.begin_session().expect("session");
        for piece in features.chunks(chunk) {
            session.push_chunk(piece).expect("chunk decodes");
        }
        let streamed = session.finish().expect("finish");
        prop_assert_eq!(fingerprint(&want), fingerprint(&streamed));
    }
}

/// The threaded dispatch paths (persistent pool, scoped spawn) must give
/// the same results as the inline fan-out on the same shards — run all
/// three explicitly so the parallel code is exercised even where the host
/// heuristic would disable it (single-CPU CI containers), both offline and
/// through `DecodeSession` streaming steps.
#[test]
fn forced_pool_scoped_and_inline_dispatch_agree() {
    let task = build_task();
    let rec = build_recognizer(&task, DecoderConfig::software());
    let (features, _) = task.synthesize_utterance(2, 0.2, 11);
    let decoder_with = |parallel: bool, dispatch: ShardDispatch| -> PhoneDecoder {
        let selection = GmmSelectionConfig::default();
        let shards: Vec<Box<dyn SenoneScorer>> = (0..4)
            .map(|_| {
                ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default())
                    .build_scorer(&selection)
                    .expect("shard")
            })
            .collect();
        let scorer = ShardedScorer::new(shards)
            .expect("sharded scorer")
            .with_parallelism(parallel)
            .with_dispatch(dispatch);
        PhoneDecoder::new(Box::new(scorer), selection)
    };
    let decode_with = |parallel: bool, dispatch: ShardDispatch| -> DecodeResult {
        let mut decoder = decoder_with(parallel, dispatch);
        rec.decode_features_with(&features, &mut decoder)
            .expect("decode")
    };
    let pooled = decode_with(true, ShardDispatch::Pooled);
    let scoped = decode_with(true, ShardDispatch::ScopedSpawn);
    let inline = decode_with(false, ShardDispatch::Pooled);
    assert_eq!(fingerprint(&pooled), fingerprint(&scoped));
    assert_eq!(fingerprint(&pooled), fingerprint(&inline));
    // All produced a merged hardware report covering the whole utterance.
    let hw = pooled.hardware.as_ref().expect("sharded SoC report");
    assert_eq!(hw.frames, features.len());
    assert_eq!(hw.shard_senones.iter().sum::<u64>(), hw.senones_scored);

    // The pool path holds across streaming steps too: frames arrive one
    // chunk at a time, the workers persist between chunks, and finish()
    // joins them.
    let session_result = {
        let mut session = rec.begin_session_with(decoder_with(true, ShardDispatch::Pooled));
        for piece in features.chunks(3) {
            session.push_chunk(piece).expect("chunk decodes");
        }
        session.finish().expect("finish")
    };
    assert_eq!(fingerprint(&pooled), fingerprint(&session_result));
}

/// Pooled dispatch must spawn its workers at most once per utterance —
/// never per frame — while the scoped baseline pays one spawn per shard per
/// scored frame.  Driven through the real decode loop (`PhoneDecoder` +
/// `Recognizer::decode_features_with` would hide the counter behind the
/// trait object, so the scorer is driven directly here).
#[test]
fn pooled_dispatch_spawns_zero_threads_per_frame() {
    let task = build_task();
    let model = &task.acoustic_model;
    let ids: Vec<SenoneId> = (0..model.senones().len() as u32).map(SenoneId).collect();
    let frames = 25;
    let run = |dispatch: ShardDispatch| -> usize {
        let selection = GmmSelectionConfig::default();
        let shards: Vec<Box<dyn SenoneScorer>> = (0..4)
            .map(|_| {
                ScoringBackendKind::Software
                    .build_scorer(&selection)
                    .expect("shard")
            })
            .collect();
        let mut scorer = ShardedScorer::new(shards)
            .expect("sharded scorer")
            .with_parallelism(true)
            .with_dispatch(dispatch);
        for f in 0..frames {
            let x: Vec<f32> = (0..model.feature_dim())
                .map(|d| 0.02 * (f + d) as f32)
                .collect();
            scorer.begin_frame(&x);
            scorer.score_senones(model, &ids, &x).expect("score");
            scorer.end_frame(0, 0);
        }
        assert!(scorer.finish_utterance().is_none(), "software shards");
        scorer.threads_spawned()
    };
    assert_eq!(
        run(ShardDispatch::Pooled),
        3,
        "3 workers for 4 shards, once"
    );
    assert_eq!(run(ShardDispatch::ScopedSpawn), frames * 3);
}

/// Sharding the SoC quarters the per-shard accelerator load, which the
/// merged report shows as per-frame real-time slack — the scale-out effect
/// the serving layer banks on, measured in *simulated cycles* rather than
/// host wall-clock so it holds deterministically on any machine (including
/// single-CPU CI containers where no wall-clock win is possible).
#[test]
fn sharding_creates_real_time_slack_in_simulated_cycles() {
    // A heavy acoustic load: every senone of a 12-component, 39-dim model
    // scored every frame, with no host-stage charge, so the real-time factor
    // is purely the accelerator's.
    let task = TaskGenerator::new(88)
        .generate(&TaskConfig {
            vocabulary_size: 20,
            num_phones: 40,
            feature_dim: 39,
            components_per_senone: 12,
            ..TaskConfig::small()
        })
        .expect("task");
    let model = &task.acoustic_model;
    let ids: Vec<SenoneId> = (0..model.senones().len() as u32).map(SenoneId).collect();
    let run = |backend: lvcsr::decoder::ScoringBackendKind| {
        let mut scorer = backend
            .build_scorer(&GmmSelectionConfig::default())
            .expect("scorer");
        for f in 0..10 {
            let x: Vec<f32> = (0..model.feature_dim())
                .map(|d| 0.01 * (f + d) as f32)
                .collect();
            scorer.begin_frame(&x);
            scorer.score_senones(model, &ids, &x).expect("score");
            scorer.end_frame(0, 0);
        }
        scorer.finish_utterance().expect("report")
    };
    let single = run(lvcsr::decoder::ScoringBackendKind::Hardware(
        lvcsr::hw::SocConfig::default(),
    ));
    let sharded = run(lvcsr::decoder::ScoringBackendKind::Sharded {
        shards: 4,
        inner: Box::new(lvcsr::decoder::ScoringBackendKind::Hardware(
            lvcsr::hw::SocConfig::default(),
        )),
        tuning: ShardTuning::default(),
    });
    assert_eq!(sharded.frames, single.frames);
    assert_eq!(sharded.senones_scored, single.senones_scored);
    // Four shards of two structures each: the busiest shard carries ~1/4 of
    // the scoring cycles, so its simulated real-time factor must be well
    // under the single SoC's (feature-load overhead keeps it above 1/4).
    assert!(
        sharded.worst_frame_rtf < single.worst_frame_rtf * 0.5,
        "4 shards must at least halve the accelerator load: {} vs {}",
        sharded.worst_frame_rtf,
        single.worst_frame_rtf
    );
    // This model is uniform-cost, so the default cost-weighted partition
    // degenerated to the equal split: the per-shard balance is near-perfect.
    let share = sharded.worst_shard_share().expect("sharded share");
    assert!(share < 0.27, "uniform model must split evenly: {share}");
}

/// A 120-senone model whose second half costs 32 mixture components per
/// senone against the first half's 2: the equal *count* split piles the
/// heavy senones onto the last two shards, the cost-weighted split does
/// not.  Sized so the busiest shard's accelerator cycles dominate the
/// constant host-stage floor, which `worst_frame_rtf` takes a max with.
fn skewed_cost_model() -> AcousticModel {
    const DIM: usize = 39;
    const PHONES: usize = 40;
    const STATES: usize = 3;
    let n = PHONES * STATES;
    let mixtures: Vec<GaussianMixture> = (0..n)
        .map(|i| {
            let components = if i < n / 2 { 2 } else { 32 };
            let comps: Vec<(f32, DiagGaussian)> = (0..components)
                .map(|c| {
                    let mean: Vec<f32> = (0..DIM)
                        .map(|d| 0.1 * i as f32 + 0.01 * c as f32 + 0.05 * d as f32)
                        .collect();
                    (
                        1.0 / components as f32,
                        DiagGaussian::new(mean, vec![1.0; DIM]).unwrap(),
                    )
                })
                .collect();
            GaussianMixture::new(comps).unwrap()
        })
        .collect();
    let pool = SenonePool::new(mixtures).unwrap();
    let mut inventory = TriphoneInventory::new(HmmTopology::Three);
    for p in 0..PHONES {
        let senones: Vec<SenoneId> = (0..STATES)
            .map(|s| SenoneId((p * STATES + s) as u32))
            .collect();
        inventory
            .add(Triphone::context_independent(PhoneId(p as u16)), senones)
            .unwrap();
    }
    AcousticModel::new(
        AcousticModelConfig {
            num_senones: n,
            num_components: 32,
            feature_dim: DIM,
            topology: HmmTopology::Three,
            num_phones: PHONES,
            self_loop_prob: 0.5,
        },
        pool,
        inventory,
        TransitionMatrix::bakis(HmmTopology::Three, 0.5).unwrap(),
    )
    .unwrap()
}

/// On a skewed-cost model the cost-weighted partition actually moves the
/// boundaries, the scores stay bit-identical, and the merged report's
/// worst-shard bound (`worst_frame_rtf`, the figure the ROADMAP's
/// load-balancing item promised to tighten) comes down.
#[test]
fn cost_weighted_partition_tightens_the_worst_shard_bound_on_skewed_models() {
    let model = skewed_cost_model();
    let ids: Vec<SenoneId> = (0..model.senones().len() as u32).map(SenoneId).collect();
    let build = |partition: ShardPartition| -> ShardedScorer {
        let selection = GmmSelectionConfig::default();
        // Single-structure SoCs per shard: the intra-SoC structure split is
        // count-based, so a multi-structure shard would re-skew the load the
        // shard-level cost weighting just balanced.
        let shards: Vec<Box<dyn SenoneScorer>> = (0..4)
            .map(|_| {
                ScoringBackendKind::Hardware(lvcsr::hw::SocConfig {
                    num_structures: 1,
                    ..lvcsr::hw::SocConfig::default()
                })
                .build_scorer(&selection)
                .expect("shard")
            })
            .collect();
        ShardedScorer::new(shards)
            .expect("sharded scorer")
            .with_partition(partition)
    };

    // The partitions differ: equal-split cuts by count, cost-weighted by
    // estimated component cost (total 60·2 + 60·32 = 2040, ~510 per shard).
    let mut weighted = build(ShardPartition::CostWeighted);
    let mut equal = build(ShardPartition::EqualSplit);
    let wb = weighted.partition_bounds(&model, &ids);
    let eb = equal.partition_bounds(&model, &ids);
    assert_eq!(eb, vec![0, 30, 60, 90, 120]);
    assert_ne!(wb, eb, "cost weighting must move the boundaries");
    let shard_cost = |bounds: &[usize], k: usize| -> u64 {
        ids[bounds[k]..bounds[k + 1]]
            .iter()
            .map(|id| {
                model
                    .senones()
                    .get(*id)
                    .map(|s| s.mixture().num_components() as u64)
                    .unwrap_or(1)
            })
            .sum()
    };
    let worst_cost = |bounds: &[usize]| (0..4).map(|k| shard_cost(bounds, k)).max().unwrap();
    assert!(
        worst_cost(&wb) < worst_cost(&eb),
        "cost-weighted worst shard {} must beat equal-split's {}",
        worst_cost(&wb),
        worst_cost(&eb)
    );

    let run = |scorer: &mut ShardedScorer| {
        let mut scores = Vec::new();
        for f in 0..8 {
            let x: Vec<f32> = (0..model.feature_dim())
                .map(|d| 0.01 * (f + d) as f32)
                .collect();
            scorer.begin_frame(&x);
            scores.push(scorer.score_senones(&model, &ids, &x).expect("score"));
            scorer.end_frame(0, 0);
        }
        (scores, scorer.finish_utterance().expect("report"))
    };
    let (weighted_scores, weighted_report) = run(&mut weighted);
    let (equal_scores, equal_report) = run(&mut equal);

    // Observational purity: the partition choice never changes a score.
    for (a_frame, b_frame) in weighted_scores.iter().zip(&equal_scores) {
        for ((ia, sa), (ib, sb)) in a_frame.iter().zip(b_frame) {
            assert_eq!(ia, ib);
            assert_eq!(sa.raw(), sb.raw(), "partition changed {ia:?}");
        }
    }
    assert_eq!(weighted_report.senones_scored, equal_report.senones_scored);

    // The balance stats surface the difference: equal-split is count-perfect
    // but cost-lopsided; cost-weighting trades senone counts for a tighter
    // worst-shard work bound, which the merged simulated-cycle report shows.
    assert_eq!(equal_report.shard_senones, vec![240, 240, 240, 240]);
    assert_eq!(
        weighted_report.shard_senones.iter().sum::<u64>(),
        weighted_report.senones_scored
    );
    assert_ne!(weighted_report.shard_senones, equal_report.shard_senones);
    assert!((equal_report.worst_shard_share().unwrap() - 0.25).abs() < 1e-12);
    assert!(
        weighted_report.worst_frame_rtf < equal_report.worst_frame_rtf * 0.95,
        "cost weighting must tighten the worst-shard bound: {} vs {}",
        weighted_report.worst_frame_rtf,
        equal_report.worst_frame_rtf
    );
}
