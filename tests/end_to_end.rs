//! Cross-crate integration tests: synthetic task → recogniser → hardware
//! model, checking the paper's headline behaviours end to end.

use lvcsr::corpus::{align_wer, TaskConfig, TaskGenerator, WerScore};
use lvcsr::decoder::{DecoderConfig, GmmSelectionConfig, Recognizer};

fn build_recognizer(config: DecoderConfig) -> (lvcsr::corpus::SyntheticTask, Recognizer) {
    let task = TaskGenerator::new(97)
        .generate(&TaskConfig::tiny())
        .expect("task");
    let rec = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser");
    (task, rec)
}

#[test]
fn hardware_decode_is_accurate_and_real_time() {
    let (task, rec) = build_recognizer(DecoderConfig::hardware(2));
    let set = task.synthesize_test_set(6, 3, 0.2);
    let mut wer = WerScore::default();
    for (features, reference) in &set {
        let result = rec.decode_features(features).expect("decode");
        wer = wer.merge(&align_wer(reference, &result.hypothesis.words));
        let hw = result.hardware.expect("hardware report");
        assert!(hw.real_time_fraction > 0.99, "{hw:?}");
        assert!(hw.worst_frame_rtf < 1.0);
        assert!(
            hw.energy.average_power_w() < 0.45,
            "under the 2x200 mW budget"
        );
        assert!(
            hw.peak_bandwidth_gb_per_s < 1.6,
            "under the paper's worst case"
        );
    }
    assert!(
        wer.wer() < 0.15,
        "WER {} too high on an easy task",
        wer.wer()
    );
}

#[test]
fn hardware_and_software_backends_agree() {
    let (task, hw_rec) = build_recognizer(DecoderConfig::hardware(2));
    let sw_rec = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig::software(),
    )
    .expect("recogniser");
    let set = task.synthesize_test_set(4, 3, 0.2);
    let mut agree = 0;
    for (features, _) in &set {
        let a = hw_rec.decode_features(features).expect("decode").hypothesis;
        let b = sw_rec.decode_features(features).expect("decode").hypothesis;
        if a.words == b.words {
            agree += 1;
        }
    }
    // The hardware's table-based log-add may flip a rare borderline decision,
    // but the two backends must agree on the vast majority of utterances.
    assert!(agree >= set.len() - 1, "only {agree}/{} agree", set.len());
}

#[test]
fn word_decode_feedback_limits_active_senones() {
    let (task, rec) = build_recognizer(DecoderConfig::hardware(2));
    let (features, _) = task.synthesize_utterance(4, 0.2, 11);
    let result = rec.decode_features(&features).expect("decode");
    let fraction = result.stats.mean_active_senone_fraction();
    assert!(
        fraction < 0.95,
        "feedback must not evaluate everything: {fraction}"
    );
    assert!(result.stats.peak_active_senone_fraction() <= 1.0);

    // Disabling the feedback evaluates the full inventory every frame.
    let mut config = DecoderConfig::hardware(2);
    config.gmm_selection = GmmSelectionConfig {
        senone_feedback: false,
        ..GmmSelectionConfig::default()
    };
    let rec_nofb = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser");
    let result_nofb = rec_nofb.decode_features(&features).expect("decode");
    assert!((result_nofb.stats.mean_active_senone_fraction() - 1.0).abs() < 1e-9);
    assert!(fraction < result_nofb.stats.mean_active_senone_fraction());
}

#[test]
fn cds_reduces_scoring_work_on_a_real_decode() {
    let (task, rec) = build_recognizer(DecoderConfig::hardware(2));
    let (features, reference) = task.synthesize_utterance(3, 0.2, 13);
    let base = rec.decode_features(&features).expect("decode");

    let mut config = DecoderConfig::hardware(2);
    config.gmm_selection = GmmSelectionConfig::with_cds(2);
    let rec_cds = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        config,
    )
    .expect("recogniser");
    let cds = rec_cds.decode_features(&features).expect("decode");

    assert!(cds.stats.total_senones_scored() < base.stats.total_senones_scored());
    assert!(cds.stats.cds_skip_fraction() > 0.3);
    // Accuracy degrades at most mildly on this easy task.
    let base_wer = align_wer(&reference, &base.hypothesis.words).wer();
    let cds_wer = align_wer(&reference, &cds.hypothesis.words).wer();
    assert!(cds_wer <= base_wer + 0.5, "CDS WER {cds_wer} vs {base_wer}");
}

#[test]
fn single_structure_does_more_work_per_frame_than_two() {
    let (task, one) = build_recognizer(DecoderConfig::hardware(1));
    let two = Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig::hardware(2),
    )
    .expect("recogniser");
    let (features, _) = task.synthesize_utterance(3, 0.2, 17);
    let r1 = one
        .decode_features(&features)
        .expect("decode")
        .hardware
        .unwrap();
    let r2 = two
        .decode_features(&features)
        .expect("decode")
        .hardware
        .unwrap();
    // Same total scoring work, but the busiest structure is less loaded with 2.
    assert_eq!(r1.senones_scored, r2.senones_scored);
    assert!(r2.worst_frame_rtf <= r1.worst_frame_rtf + 1e-9);
    assert!(r2.energy.opu_activity <= r1.energy.opu_activity + 1e-9);
}
