//! Adversarial-scenario streaming tests: every labelled stream the
//! [`ScenarioGenerator`] produces — noise ramps, clipping, far-field gain,
//! back-to-back utterances, long sessions — is driven through the full
//! audio-streaming stack (`StreamingFrontend` → `EnergyVad` → incremental
//! decode) on every scoring backend and several chunk sizes, and checked
//! against the scenario's ground truth:
//!
//! * **utterance count and boundaries** — detected endpoints sit within the
//!   scenario's slack of the labelled spans (merged per the configured
//!   hangover);
//! * **offline parity** — each endpointed utterance's captured feature
//!   frames replay through `decode_features` to the identical result;
//! * **chunking invisibility** — the decode surface is byte-identical across
//!   audio chunk sizes;
//! * **frame accounting** — every feature frame the frontend emitted lands
//!   in exactly one finished utterance (zero loss, also under forced
//!   endpoints) or is explicitly discarded by a barge-in cancel;
//! * **state-machine invariants** — `UtteranceStarted` strictly alternates
//!   with the end events, pre-roll stays bounded, and `EnergyVad::reset`
//!   returns the exact initial state.

use lvcsr::corpus::{
    AudioSynthesizer, Scenario, ScenarioGenerator, ScenarioKind, ScenarioVoiceTask,
};
use lvcsr::decoder::{DecodeResult, DecoderConfig, Recognizer, ScoringBackendKind};
use lvcsr::frontend::Frontend;
use lvcsr::lexicon::WordId;
use lvcsr::stream::{
    AdaptiveVadConfig, EnergyVad, StreamConfig, StreamEvent, StreamOutcome, StreamingRecognizer,
    VadConfig, VadEvent,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Samples per VAD hop at the default 16 kHz / 10 ms frontend geometry.
const HOP: usize = 160;
const MIN_SPEECH: usize = 2;
const HANGOVER: usize = 5;
const PREROLL: usize = 2;
/// The generator seed every test shares, so failures name one fixed corpus.
const CORPUS_SEED: u64 = 17;

/// The audio-trained voice task is expensive to fit; train it once for the
/// whole test binary.
fn voice_task() -> &'static ScenarioVoiceTask {
    static TASK: OnceLock<ScenarioVoiceTask> = OnceLock::new();
    TASK.get_or_init(|| ScenarioVoiceTask::train(11).expect("voice task trains"))
}

fn backend(index: usize) -> ScoringBackendKind {
    match index % 4 {
        0 => ScoringBackendKind::Software,
        1 => ScoringBackendKind::Simd,
        2 => ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default()),
        _ => ScoringBackendKind::Sharded {
            shards: 2,
            inner: Box::new(ScoringBackendKind::Hardware(lvcsr::hw::SocConfig::default())),
            tuning: lvcsr::decoder::ShardTuning::default(),
        },
    }
}

fn recognizer(backend_index: usize) -> Recognizer {
    let task = voice_task();
    Recognizer::new(
        task.acoustic_model.clone(),
        task.dictionary.clone(),
        task.language_model.clone(),
        DecoderConfig {
            backend: backend(backend_index),
            ..DecoderConfig::default()
        },
    )
    .expect("recogniser")
}

/// The endpointing configuration the whole scenario matrix runs under:
/// adaptive noise-floor tracking over the voice task's frontend, capturing
/// features so every utterance carries its own parity oracle.
fn stream_config() -> StreamConfig {
    StreamConfig {
        frontend: ScenarioVoiceTask::frontend_config(),
        vad: VadConfig {
            energy_threshold: 0.05,
            min_speech_hops: MIN_SPEECH,
            hangover_hops: HANGOVER,
            preroll_hops: PREROLL,
            adaptive: Some(AdaptiveVadConfig::default()),
        },
        max_utterance_frames: None,
        capture_features: true,
    }
}

/// The decode surface that must match offline and be identical across
/// chunkings (mirrors `tests/stream.rs`).
type Fingerprint = (
    Vec<u32>,
    Vec<u32>,
    f32,
    usize,
    u64,
    usize,
    Option<(usize, u64)>,
);

fn fingerprint(r: &DecodeResult) -> Fingerprint {
    (
        r.hypothesis.words.iter().map(|w| w.0).collect(),
        r.live_hypothesis.words.iter().map(|w| w.0).collect(),
        r.best_score.raw(),
        r.stats.num_frames(),
        r.stats.total_senones_scored(),
        r.lattice.len(),
        r.hardware.as_ref().map(|h| (h.frames, h.senones_scored)),
    )
}

/// Everything one streamed scenario run produced, with the state-machine
/// invariants asserted along the way.
struct Run {
    outcomes: Vec<StreamOutcome>,
    /// Hop index (10 ms units into the stream) at which each utterance
    /// opened / closed.
    started_hops: Vec<usize>,
    ended_hops: Vec<usize>,
    forced: usize,
    features_emitted: usize,
    frames_discarded: usize,
}

/// Streams `samples` through a fresh audio session in `chunk_hops`-hop
/// chunks, asserting event alternation and the pre-roll bound at every step.
/// The stream must end endpointed (scenarios close in silence).
fn run_stream(streamer: &StreamingRecognizer, samples: &[f32], chunk_hops: usize) -> Run {
    let mut session = streamer.audio_session().expect("audio session");
    let preroll_cap = streamer.config().vad.preroll_hops + streamer.config().vad.min_speech_hops;
    let mut run = Run {
        outcomes: Vec::new(),
        started_hops: Vec::new(),
        ended_hops: Vec::new(),
        forced: 0,
        features_emitted: 0,
        frames_discarded: 0,
    };
    let mut open = false;
    let mut hops = 0usize;
    for chunk in samples.chunks(chunk_hops * HOP) {
        let events = session.push_audio(chunk).expect("push");
        hops += chunk.len() / HOP;
        for event in events {
            match event {
                StreamEvent::UtteranceStarted => {
                    assert!(!open, "start events must alternate with end events");
                    open = true;
                    run.started_hops.push(hops);
                }
                StreamEvent::Partial(_) => {
                    assert!(open, "partials only surface inside an utterance")
                }
                StreamEvent::UtteranceEnd(outcome) => {
                    assert!(open, "an end event needs an open utterance");
                    open = false;
                    run.ended_hops.push(hops);
                    run.outcomes.push(*outcome);
                }
                StreamEvent::UtteranceForceEnded(outcome) => {
                    assert!(open, "a forced end needs an open utterance");
                    open = false;
                    run.forced += 1;
                    run.ended_hops.push(hops);
                    run.outcomes.push(*outcome);
                }
            }
        }
        assert_eq!(open, session.in_utterance(), "event log vs session state");
        assert!(
            session.preroll_buffered() <= preroll_cap,
            "pre-roll must stay bounded"
        );
    }
    assert!(
        !session.in_utterance(),
        "every scenario ends in silence long past the hangover"
    );
    run.features_emitted = session.features_emitted();
    run.frames_discarded = session.frames_discarded();
    let last = session.close().expect("close");
    assert!(last.result.is_empty(), "nothing was left open");
    run
}

/// Boundary + count + zero-loss assertions of one run against the labels.
fn check_against_labels(scenario: &Scenario, run: &Run, chunk_hops: usize) {
    let label = format!("{} (chunk {chunk_hops})", scenario.kind.name());
    let expected = scenario.expected_utterances(HANGOVER * HOP);
    assert_eq!(
        run.outcomes.len(),
        expected.len(),
        "{label}: utterance count (started at hops {:?})",
        run.started_hops
    );
    assert_eq!(run.forced, 0, "{label}: no frame limit is configured");
    // Slack in hops: the scenario's own tolerance, plus event granularity
    // (events surface at chunk boundaries) and one hop of rounding.
    let slack = (scenario.boundary_slack_s * 100.0).ceil() as usize + chunk_hops + 1;
    for (i, span) in expected.iter().enumerate() {
        // Detection lags onset by the debounce and trails the span's end by
        // the hangover; both by construction of the endpointer.
        let start_expected = span.onset_sample / HOP + MIN_SPEECH;
        let end_expected = span.end_sample / HOP + HANGOVER;
        assert!(
            run.started_hops[i].abs_diff(start_expected) <= slack,
            "{label}: utterance {i} \"{}\" started at hop {} vs labelled {start_expected} ± {slack}",
            span.text.join(" "),
            run.started_hops[i]
        );
        assert!(
            run.ended_hops[i].abs_diff(end_expected) <= slack,
            "{label}: utterance {i} \"{}\" ended at hop {} vs labelled {end_expected} ± {slack}",
            span.text.join(" "),
            run.ended_hops[i]
        );
    }
    // Zero-loss ledger: every frame the frontend emitted is in exactly one
    // finished utterance.
    let decoded: usize = run
        .outcomes
        .iter()
        .map(|o| o.result.stats.num_frames())
        .sum();
    assert_eq!(run.frames_discarded, 0, "{label}");
    assert_eq!(run.features_emitted, decoded, "{label}: frame ledger");
}

/// Offline-parity: each utterance's captured frames replay to the identical
/// decode on the same backend.
fn check_offline_parity(offline: &Recognizer, run: &Run, label: &str) {
    for (i, outcome) in run.outcomes.iter().enumerate() {
        let captured = outcome
            .features
            .as_ref()
            .expect("capture_features is on for scenario runs");
        assert_eq!(
            captured.len(),
            outcome.result.stats.num_frames(),
            "{label}: utterance {i} captured frames"
        );
        let replayed = offline.decode_features(captured).expect("offline decode");
        assert_eq!(
            fingerprint(&outcome.result),
            fingerprint(&replayed),
            "{label}: utterance {i} must equal its offline replay"
        );
    }
}

/// The acceptance matrix for one backend: every scenario × chunk sizes
/// {1, 3, 7} hops, with parity checked once and fingerprints identical
/// across chunkings.
fn scenario_matrix(backend_index: usize) {
    let task = voice_task();
    let generator = ScenarioGenerator::new(&task.dictionary, CORPUS_SEED);
    let streamer =
        StreamingRecognizer::new(recognizer(backend_index), stream_config()).expect("streamer");
    let offline = recognizer(backend_index);
    for scenario in generator.all() {
        let mut per_chunk: Vec<Vec<Fingerprint>> = Vec::new();
        for chunk_hops in [1usize, 3, 7] {
            let run = run_stream(&streamer, &scenario.samples, chunk_hops);
            check_against_labels(&scenario, &run, chunk_hops);
            if chunk_hops == 1 {
                check_offline_parity(
                    &offline,
                    &run,
                    &format!("backend {backend_index} {}", scenario.kind.name()),
                );
            }
            per_chunk.push(
                run.outcomes
                    .iter()
                    .map(|o| fingerprint(&o.result))
                    .collect(),
            );
        }
        // Audio chunking is invisible: identical utterances at every size
        // (parity therefore transfers from the chunk-1 check to all sizes).
        assert_eq!(per_chunk[0], per_chunk[1], "{}", scenario.kind.name());
        assert_eq!(per_chunk[0], per_chunk[2], "{}", scenario.kind.name());

        // The clean long session must also *transcribe*: a majority of its
        // single-command utterances decode to the exact spoken word.
        if scenario.kind == ScenarioKind::LongSession {
            let expected = scenario.expected_utterances(HANGOVER * HOP);
            let exact = per_chunk[0]
                .iter()
                .zip(&expected)
                .filter(|(fp, span)| fp.0 == span.words.iter().map(|w| w.0).collect::<Vec<_>>())
                .count();
            assert!(
                2 * exact >= expected.len(),
                "backend {backend_index}: only {exact}/{} long-session commands transcribed",
                expected.len()
            );
        }
    }
}

#[test]
fn scenario_matrix_on_the_software_backend() {
    scenario_matrix(0);
}

#[test]
fn scenario_matrix_on_the_simd_backend() {
    scenario_matrix(1);
}

#[test]
fn scenario_matrix_on_the_soc_backend() {
    scenario_matrix(2);
}

#[test]
fn scenario_matrix_on_the_sharded_backend() {
    scenario_matrix(3);
}

/// Utterance segmentation is a property of the frontend + VAD alone: frame
/// counts per utterance are identical on every backend.
#[test]
fn segmentation_is_backend_independent() {
    let task = voice_task();
    let generator = ScenarioGenerator::new(&task.dictionary, CORPUS_SEED);
    for kind in [ScenarioKind::BackToBack, ScenarioKind::LongSession] {
        let scenario = generator.generate(kind);
        let mut reference: Option<Vec<usize>> = None;
        for backend_index in 0..4 {
            let streamer = StreamingRecognizer::new(recognizer(backend_index), stream_config())
                .expect("streamer");
            let run = run_stream(&streamer, &scenario.samples, 7);
            let frames: Vec<usize> = run
                .outcomes
                .iter()
                .map(|o| o.result.stats.num_frames())
                .collect();
            match &reference {
                None => reference = Some(frames),
                Some(expected) => {
                    assert_eq!(&frames, expected, "{} backend {backend_index}", kind.name())
                }
            }
        }
    }
}

/// The tentpole contrast: a fixed threshold *under* the rising noise floor
/// hallucinates speech in the pure-noise tail, while the adaptive tracker
/// rides the ramp and reports exactly the labelled utterances.
#[test]
fn fixed_threshold_floods_on_a_noise_ramp_and_adaptive_does_not() {
    let task = voice_task();
    let generator = ScenarioGenerator::new(&task.dictionary, CORPUS_SEED);
    let scenario = generator.generate(ScenarioKind::NoiseRampUp);
    let expected = scenario.expected_utterances(HANGOVER * HOP).len();

    // Fixed 0.008 threshold: plausible for the stream's start (noise RMS
    // ≈ 0.001) but under its end (≈ 0.012).
    let fixed = StreamConfig {
        vad: VadConfig {
            energy_threshold: 0.008,
            adaptive: None,
            ..stream_config().vad
        },
        ..stream_config()
    };
    let streamer = StreamingRecognizer::new(recognizer(0), fixed).expect("streamer");
    let mut session = streamer.audio_session().expect("session");
    let mut started = 0usize;
    for chunk in scenario.samples.chunks(7 * HOP) {
        for event in session.push_audio(chunk).expect("push") {
            if matches!(event, StreamEvent::UtteranceStarted) {
                started += 1;
            }
        }
    }
    // The labels say the tail is noise; the fixed threshold calls it speech.
    assert!(
        started > expected || session.in_utterance(),
        "fixed threshold was expected to flood: {started} starts vs {expected} labelled, \
         in_utterance={}",
        session.in_utterance()
    );
    session.close().expect("close");

    // Same stream, adaptive tracker: exactly the labels (the matrix pins the
    // boundaries too; here the point is the side-by-side contrast).
    let streamer = StreamingRecognizer::new(recognizer(0), stream_config()).expect("streamer");
    let run = run_stream(&streamer, &scenario.samples, 7);
    assert_eq!(run.outcomes.len(), expected);
}

/// Forced endpoints on a real scenario: every utterance over the frame
/// budget is split, nothing is lost, every piece replays to offline parity,
/// and the natural utterance count is preserved.
#[test]
fn forced_endpoints_preserve_every_frame_of_a_scenario_stream() {
    let task = voice_task();
    let generator = ScenarioGenerator::new(&task.dictionary, CORPUS_SEED);
    let scenario = generator.generate(ScenarioKind::LongSession);
    let expected = scenario.expected_utterances(HANGOVER * HOP);
    let config = StreamConfig {
        max_utterance_frames: Some(25),
        ..stream_config()
    };
    // The SoC backend, so the hardware work counters ride through the splits.
    let streamer = StreamingRecognizer::new(recognizer(2), config).expect("streamer");
    let run = run_stream(&streamer, &scenario.samples, 3);

    // Each ~40-frame command splits at least once at a 25-frame budget…
    assert!(
        run.forced >= expected.len(),
        "{} forced cuts across {} utterances",
        run.forced,
        expected.len()
    );
    // …while every true utterance still closes naturally at its end.
    assert_eq!(run.outcomes.len() - run.forced, expected.len());
    for outcome in &run.outcomes {
        assert!(outcome.result.stats.num_frames() <= 25 + MIN_SPEECH + HANGOVER + PREROLL);
    }
    // Zero-loss ledger and per-piece parity.
    let decoded: usize = run
        .outcomes
        .iter()
        .map(|o| o.result.stats.num_frames())
        .sum();
    assert_eq!(run.frames_discarded, 0);
    assert_eq!(run.features_emitted, decoded);
    check_offline_parity(&recognizer(2), &run, "forced long_session");
}

/// Barge-in mid-scenario: cancel discards exactly what was in flight, the
/// session re-arms, and the rest of the stream endpoints normally with the
/// frame ledger intact.
#[test]
fn barge_in_cancel_recovers_mid_scenario() {
    let task = voice_task();
    let generator = ScenarioGenerator::new(&task.dictionary, CORPUS_SEED);
    let scenario = generator.generate(ScenarioKind::BackToBack);
    let streamer = StreamingRecognizer::new(recognizer(1), stream_config()).expect("streamer");
    let mut session = streamer.audio_session().expect("session");

    // Push hop by hop until the first utterance opens, then barge in.
    let mut fed = 0usize;
    for chunk in scenario.samples.chunks(HOP) {
        session.push_audio(chunk).expect("push");
        fed += chunk.len();
        if session.in_utterance() {
            break;
        }
    }
    assert!(session.in_utterance(), "the first utterance must open");
    let discarded = session.cancel().expect("an utterance was in flight");
    assert!(discarded > 0);
    assert_eq!(session.frames_discarded(), discarded);
    assert_eq!(session.utterances_cancelled(), 1);
    assert!(!session.in_utterance());
    // Cancelling twice is a no-op.
    assert_eq!(session.cancel(), None);

    // The rest of the stream: the interrupted merged utterance re-triggers
    // as one, then the genuinely separate third command.
    let mut finished: Vec<StreamOutcome> = Vec::new();
    for chunk in scenario.samples[fed..].chunks(3 * HOP) {
        for event in session.push_audio(chunk).expect("push") {
            if let StreamEvent::UtteranceEnd(outcome) = event {
                finished.push(*outcome);
            }
        }
    }
    assert_eq!(finished.len(), 2, "remainder + third command");
    assert!(!session.in_utterance());
    let decoded: usize = finished.iter().map(|o| o.result.stats.num_frames()).sum();
    assert_eq!(
        session.features_emitted(),
        session.frames_discarded() + decoded,
        "every emitted frame is either decoded or explicitly discarded"
    );
    session.close().expect("close");
}

/// Satellite: degenerate streams end-to-end through the serve layer — a
/// zero-voiced (pure silence) stream and the all-clipped scenario both
/// complete through `AsrServer::open_stream` with offline parity on every
/// backend.
#[test]
fn zero_voiced_and_clipped_streams_through_the_server() {
    let task = voice_task();
    let frontend = Frontend::new(ScenarioVoiceTask::frontend_config()).expect("frontend");
    let silent_features = frontend.process(&vec![0.0f32; 16_000]);
    assert!(!silent_features.is_empty());
    let generator = ScenarioGenerator::new(&task.dictionary, CORPUS_SEED);
    let clipped = generator.generate(ScenarioKind::Clipped);
    let clipped_features = frontend.process(&clipped.samples);

    for backend_index in 0..4 {
        let offline = recognizer(backend_index);
        let server = lvcsr::serve::AsrServer::spawn(recognizer(backend_index), Default::default())
            .expect("server");
        for features in [&silent_features, &clipped_features] {
            let reference = offline.decode_features(features).expect("offline");
            let handle = server.open_stream().expect("stream");
            for chunk in features.chunks(9) {
                handle.push_chunk(chunk).expect("push");
            }
            let result = handle.finish().expect("finish").wait().expect("decode");
            assert_eq!(
                fingerprint(&result),
                fingerprint(&reference),
                "backend {backend_index}"
            );
        }
        server.close();
    }
}

/// The voice task is a real recogniser: isolated renderings of its own
/// vocabulary decode back to the right command for a majority of words.
#[test]
fn scenario_voice_task_decodes_its_own_vocabulary() {
    let task = voice_task();
    let frontend = Frontend::new(ScenarioVoiceTask::frontend_config()).expect("frontend");
    let rec = recognizer(0);
    // The same synthesiser the task trained from: its mild noise bed is part
    // of the acoustic conditions the models learned.
    let synth = AudioSynthesizer::default_16khz();
    let vocabulary = task.dictionary.len() as u32;
    let mut exact = 0usize;
    for id in 0..vocabulary {
        let audio = synth.render_words(&task.dictionary, &[WordId(id)], 555 + u64::from(id));
        let result = rec.decode_audio(&audio, &frontend).expect("decode");
        if result.hypothesis.words == [WordId(id)] {
            exact += 1;
        }
    }
    assert!(
        2 * exact >= vocabulary as usize,
        "only {exact}/{vocabulary} commands decoded exactly"
    );
}

proptest! {
    /// Satellite: the endpointer state machine alone, under random hop-RMS
    /// sequences in both modes — events strictly alternate and agree with
    /// `in_speech`, the adaptive threshold respects its clamps, and
    /// `reset()` returns the *exact* initial state (`EnergyVad` is
    /// `PartialEq` precisely for this check).
    #[test]
    fn energy_vad_invariants_hold_on_random_hop_sequences(
        rms_values in collection::vec(0.0f32..0.6, 10..240),
        adaptive_flag in 0usize..2,
        min_speech in 1usize..4,
        hangover in 1usize..6,
    ) {
        let config = VadConfig {
            energy_threshold: 0.05,
            min_speech_hops: min_speech,
            hangover_hops: hangover,
            preroll_hops: 2,
            adaptive: (adaptive_flag == 1).then(AdaptiveVadConfig::default),
        };
        config.validate().expect("config is valid");
        let fresh = EnergyVad::new(config.clone());
        let mut vad = EnergyVad::new(config.clone());
        prop_assert_eq!(&vad, &fresh);
        let mut last: Option<VadEvent> = None;
        for &rms in &rms_values {
            let was_in = vad.in_speech();
            let event = vad.push_hop(rms);
            match event {
                Some(VadEvent::SpeechStart) => {
                    prop_assert!(!was_in && vad.in_speech());
                    prop_assert_ne!(last, Some(VadEvent::SpeechStart), "events alternate");
                    last = event;
                }
                Some(VadEvent::SpeechEnd) => {
                    prop_assert!(was_in && !vad.in_speech());
                    prop_assert_eq!(last, Some(VadEvent::SpeechStart), "end follows start");
                    last = event;
                }
                None => prop_assert_eq!(was_in, vad.in_speech()),
            }
            match &config.adaptive {
                Some(adaptive) => {
                    prop_assert!(vad.threshold() >= adaptive.min_threshold);
                    prop_assert!(vad.threshold() <= adaptive.max_threshold);
                    let floor = vad.noise_floor().expect("adaptive mode reports a floor");
                    prop_assert!(floor >= 0.0);
                }
                None => {
                    prop_assert_eq!(vad.threshold(), config.energy_threshold);
                    prop_assert_eq!(vad.noise_floor(), None);
                }
            }
        }
        vad.reset();
        prop_assert_eq!(&vad, &fresh, "reset must be total");
    }
}
