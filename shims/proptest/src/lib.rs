//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! Each `proptest!` test runs its body against `PROPTEST_CASES` (default 128)
//! randomly sampled inputs. Sampling is fully deterministic — the RNG is
//! seeded from a hash of the test's name — so failures reproduce across runs.
//! Unlike the real crate there is **no shrinking**: a failing case panics with
//! the sampled inputs left to the assertion message.

#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases per property, read from `PROPTEST_CASES` (default 128).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Outcome of one sampled case, used by the `proptest!` expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseResult {
    /// The body ran to completion.
    Ok,
    /// A `prop_assume!` rejected the inputs; the case is not counted.
    Discard,
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// How many elements a [`vec()`](fn@vec) strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy for vectors whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{CaseResult, Strategy};
}

/// Define property tests. Each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies [`cases`] times.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat_param in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let total = $crate::cases();
            let mut ran: u32 = 0;
            // Allow a generous discard budget for prop_assume!-heavy bodies.
            for _attempt in 0..total.saturating_mul(8) {
                if ran == total {
                    break;
                }
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| {
                    $(let $binding = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                    $crate::CaseResult::Ok
                })();
                if outcome == $crate::CaseResult::Ok {
                    ran += 1;
                }
            }
            assert!(
                ran == total,
                "property {} discarded too many cases ({ran}/{total} ran)",
                stringify!($name),
            );
        }
    )+};
}

/// Assert within a property body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when its sampled inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseResult::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        let s = collection::vec(0u32..100, 0..10);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3u32..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_are_respected(xs in collection::vec(0u8..=255, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn fixed_size_vec(xs in collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(xs.len(), 7);
        }

        #[test]
        fn assume_discards(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
