//! Offline stand-in for the subset of the `criterion` 0.5 API this workspace
//! uses. Mirrors criterion's calling convention: a bench binary built with
//! `harness = false` runs measured timing loops when invoked with `--bench`
//! (which is what `cargo bench` passes) and degrades to a single smoke
//! iteration per benchmark otherwise (e.g. under `cargo test`), exactly like
//! the real crate's test mode.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter, rendered with `Display`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measure: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Filled in by [`Bencher::iter`]: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Call `f` repeatedly for the configured measurement window and record
    /// the mean iteration time. In smoke mode (no `--bench` flag) `f` runs
    /// exactly once, just proving the benchmark executes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            self.result = Some((1, Duration::ZERO));
            return;
        }
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        loop {
            black_box(f());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// A named collection of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is driven by
    /// [`BenchmarkGroup::measurement_time`] alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set how long to warm up before measuring.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Set how long the measurement window lasts.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&self, id: &str, f: F) {
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, elapsed)) if self.criterion.measure && iters > 0 => {
                let mean = elapsed.as_secs_f64() / iters as f64;
                println!(
                    "{}/{id}: {} over {iters} iterations",
                    self.name,
                    format_time(mean)
                );
            }
            Some(_) => println!("{}/{id}: ok (smoke iteration)", self.name),
            None => println!("{}/{id}: benchmark closure never called iter()", self.name),
        }
    }

    /// Mark the group complete (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1.0e-3 {
        format!("{:.3} ms", seconds * 1.0e3)
    } else if seconds >= 1.0e-6 {
        format!("{:.3} µs", seconds * 1.0e6)
    } else {
        format!("{:.1} ns", seconds * 1.0e9)
    }
}

/// Top-level benchmark driver, normally constructed by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    measure: bool,
}

impl Criterion {
    /// Enable measured mode when `--bench` is among the process arguments —
    /// the convention cargo uses to distinguish `cargo bench` from
    /// `cargo test` for `harness = false` targets.
    pub fn configure_from_args(mut self) -> Self {
        self.measure = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        self
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_benchmark_once() {
        let mut calls = 0;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_iterates() {
        let mut calls = 0u64;
        let mut c = Criterion { measure: true };
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| calls += u64::from(x))
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
        assert_eq!(BenchmarkId::from_parameter("23bit").id, "23bit");
    }
}
