//! Offline stand-in for the subset of the `criterion` 0.5 API this workspace
//! uses. Mirrors criterion's calling convention: a bench binary built with
//! `harness = false` runs measured timing loops when invoked with `--bench`
//! (which is what `cargo bench` passes) and degrades to a single smoke
//! iteration per benchmark otherwise (e.g. under `cargo test`), exactly like
//! the real crate's test mode.
//!
//! When the `LVCSR_BENCH_JSON` environment variable names a file, every
//! measured result is additionally merged into that file as a flat JSON map
//! of `"group/benchmark": mean_seconds` — the machine-readable record the
//! CI bench-regression gate consumes. The file is read-modify-written so
//! sequential bench binaries in one `cargo bench` run accumulate into a
//! single document.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The flat-JSON result sink behind `LVCSR_BENCH_JSON`.
mod json_out {
    use std::collections::BTreeMap;
    use std::fs;

    /// Merges one measured result into the JSON file named by
    /// `LVCSR_BENCH_JSON` (no-op when the variable is unset or empty).
    pub fn record(id: &str, mean_seconds: f64) {
        let path = match std::env::var("LVCSR_BENCH_JSON") {
            Ok(p) if !p.is_empty() => p,
            _ => return,
        };
        let mut map = fs::read_to_string(&path)
            .map(|s| parse_flat_map(&s))
            .unwrap_or_default();
        map.insert(id.to_string(), mean_seconds);
        if let Err(e) = fs::write(&path, render_flat_map(&map)) {
            eprintln!("warning: could not write bench JSON to {path}: {e}");
        }
    }

    /// Parses the flat `{"key": number, ...}` documents this module writes.
    /// Tolerant line-based scan — not a general JSON parser.
    ///
    /// KEEP IN SYNC with `asr_bench::bench_json`
    /// (`crates/bench/src/bench_json.rs`), the shared reader/merger of this
    /// format (this shim cannot import it without breaking swap-back
    /// compatibility with crates.io criterion, and asr-bench cannot be a
    /// dependency of its own dev-dependency). If `render_flat_map` changes
    /// shape, update that module and its format-snapshot test.
    fn parse_flat_map(text: &str) -> BTreeMap<String, f64> {
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some((key, value)) = rest.split_once("\":") else {
                continue;
            };
            if let Ok(v) = value.trim().parse::<f64>() {
                map.insert(key.to_string(), v);
            }
        }
        map
    }

    fn render_flat_map(map: &BTreeMap<String, f64>) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (k, v) in map {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{k}\": {v:e}"));
        }
        out.push_str("\n}\n");
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn render_and_parse_round_trip() {
            let mut map = BTreeMap::new();
            map.insert("g/one".to_string(), 1.5e-3);
            map.insert("g/two".to_string(), 42.0);
            let text = render_flat_map(&map);
            assert_eq!(parse_flat_map(&text), map);
            // Unparseable lines are skipped, not fatal.
            assert!(parse_flat_map("{\n garbage \n}").is_empty());
        }
    }
}

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter, rendered with `Display`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How many sub-windows the measurement window is split into; the reported
/// mean is the *fastest* window's, which is robust to transient machine
/// contention (a noisy neighbour inflates some windows but rarely all of
/// them) — important because the CI bench gate compares runs at a 15 %
/// threshold.
const MEASUREMENT_WINDOWS: u32 = 5;

/// One completed measurement.
#[derive(Debug, Clone, Copy)]
struct BenchOutcome {
    /// Iterations executed across all windows.
    iterations: u64,
    /// Mean seconds per iteration in the fastest window (0 in smoke mode).
    best_mean_seconds: f64,
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measure: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Filled in by [`Bencher::iter`].
    result: Option<BenchOutcome>,
}

impl Bencher {
    /// Call `f` repeatedly for the configured measurement window and record
    /// the best-of-`MEASUREMENT_WINDOWS` mean iteration time. In smoke mode
    /// (no `--bench` flag) `f` runs exactly once, just proving the benchmark
    /// executes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            self.result = Some(BenchOutcome {
                iterations: 1,
                best_mean_seconds: 0.0,
            });
            return;
        }
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(f());
        }
        let window = self.measurement_time / MEASUREMENT_WINDOWS;
        let mut total_iters = 0u64;
        let mut best_mean = f64::INFINITY;
        for _ in 0..MEASUREMENT_WINDOWS {
            let mut iters = 0u64;
            let start = Instant::now();
            let deadline = start + window;
            loop {
                black_box(f());
                iters += 1;
                if Instant::now() >= deadline {
                    break;
                }
            }
            let mean = start.elapsed().as_secs_f64() / iters as f64;
            best_mean = best_mean.min(mean);
            total_iters += iters;
        }
        self.result = Some(BenchOutcome {
            iterations: total_iters,
            best_mean_seconds: best_mean,
        });
    }
}

/// A named collection of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is driven by
    /// [`BenchmarkGroup::measurement_time`] alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set how long to warm up before measuring.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Set how long the measurement window lasts.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&self, id: &str, f: F) {
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(outcome) if self.criterion.measure && outcome.iterations > 0 => {
                println!(
                    "{}/{id}: {} over {} iterations (best of {MEASUREMENT_WINDOWS} windows)",
                    self.name,
                    format_time(outcome.best_mean_seconds),
                    outcome.iterations,
                );
                json_out::record(&format!("{}/{id}", self.name), outcome.best_mean_seconds);
            }
            Some(_) => println!("{}/{id}: ok (smoke iteration)", self.name),
            None => println!("{}/{id}: benchmark closure never called iter()", self.name),
        }
    }

    /// Mark the group complete (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1.0e-3 {
        format!("{:.3} ms", seconds * 1.0e3)
    } else if seconds >= 1.0e-6 {
        format!("{:.3} µs", seconds * 1.0e6)
    } else {
        format!("{:.1} ns", seconds * 1.0e9)
    }
}

/// Top-level benchmark driver, normally constructed by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    measure: bool,
}

impl Criterion {
    /// Enable measured mode when `--bench` is among the process arguments —
    /// the convention cargo uses to distinguish `cargo bench` from
    /// `cargo test` for `harness = false` targets.
    pub fn configure_from_args(mut self) -> Self {
        self.measure = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        self
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_benchmark_once() {
        let mut calls = 0;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_iterates() {
        let mut calls = 0u64;
        let mut c = Criterion { measure: true };
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| calls += u64::from(x))
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
        assert_eq!(BenchmarkId::from_parameter("23bit").id, "23bit");
    }
}
