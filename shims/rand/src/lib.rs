//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the
//! [`Rng`] extension trait with `gen` / `gen_range` / `gen_bool`, and
//! [`SeedableRng`]. Fully deterministic for a given seed — the corpus
//! generator and the integration tests rely on that — but the stream differs
//! from the real `rand` crate's `StdRng`.

#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random-number generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it to a full seed deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] with `rng.gen()`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    return (rng.next_u64() as i64) as $t;
                }
                ((lo as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the shim's `StdRng`.
    ///
    /// Seeded from a `u64` through SplitMix64 exactly like `rand_core`
    /// recommends, so distinct small seeds give well-separated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start in the all-zero state.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=8usize);
            assert!((3..=8).contains(&v));
            let w = rng.gen_range(1..4u64);
            assert!((1..4).contains(&w));
            let f = rng.gen_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
