//! # lvcsr — a reproduction of *Architecture for Low Power Large Vocabulary
//! Speech Recognition* (Chandra, Pazhayaveetil, Franzon — SOCC 2006)
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`float`] | `asr-float` | log-domain math, the 512-byte log-add SRAM table, reduced-mantissa storage, the softfloat datapath |
//! | [`frontend`] | `asr-frontend` | the MFCC frontend (25 ms windows / 10 ms shift, 39-dim features) |
//! | [`acoustic`] | `asr-acoustic` | senones, Gaussian mixtures, triphone HMMs, flash storage layout |
//! | [`lexicon`] | `asr-lexicon` | phone set, pronunciation dictionary, lexical tree, n-gram LM |
//! | [`hw`] | `asr-hw` | cycle-accurate OP unit and Viterbi unit, flash/DMA, power & area model, the 2-structure SoC |
//! | [`decoder`] | `asr-core` | phone decode, word decode (token passing over the lexical tree), word lattice, global best path |
//! | [`corpus`] | `asr-corpus` | synthetic WSJ5K-like tasks, utterance/audio synthesis, WER scoring |
//! | [`baseline`] | `asr-baseline` | software-decoder and related-work accelerator baselines |
//!
//! # Quickstart
//!
//! ```
//! use lvcsr::corpus::{TaskConfig, TaskGenerator};
//! use lvcsr::decoder::{DecoderConfig, Recognizer};
//!
//! // Generate a small synthetic task and decode one utterance on the
//! // cycle-accurate hardware model with two accelerator structures.
//! let task = TaskGenerator::new(1).generate(&TaskConfig::tiny()).unwrap();
//! let recognizer = Recognizer::new(
//!     task.acoustic_model.clone(),
//!     task.dictionary.clone(),
//!     task.language_model.clone(),
//!     DecoderConfig::hardware(2),
//! )
//! .unwrap();
//! let (features, reference) = task.synthesize_utterance(2, 0.2, 7);
//! let result = recognizer.decode_features(&features).unwrap();
//! assert_eq!(result.hypothesis.words, reference);
//! let hw = result.hardware.unwrap();
//! assert!(hw.real_time_fraction > 0.99);
//! ```

#![deny(missing_docs)]

pub use asr_acoustic as acoustic;
pub use asr_baseline as baseline;
pub use asr_core as decoder;
pub use asr_corpus as corpus;
pub use asr_float as float;
pub use asr_frontend as frontend;
pub use asr_hw as hw;
pub use asr_lexicon as lexicon;
