//! # lvcsr — a reproduction of *Architecture for Low Power Large Vocabulary
//! Speech Recognition* (Chandra, Pazhayaveetil, Franzon — SOCC 2006)
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`float`] | `asr-float` | log-domain math, the 512-byte log-add SRAM table, reduced-mantissa storage, the softfloat datapath |
//! | [`frontend`] | `asr-frontend` | the MFCC frontend (25 ms windows / 10 ms shift, 39-dim features) |
//! | [`acoustic`] | `asr-acoustic` | senones, Gaussian mixtures, triphone HMMs, flash storage layout |
//! | [`lexicon`] | `asr-lexicon` | phone set, pronunciation dictionary, lexical tree, n-gram LM |
//! | [`hw`] | `asr-hw` | cycle-accurate OP unit and Viterbi unit, flash/DMA, power & area model, the 2-structure SoC |
//! | [`decoder`] | `asr-core` | the `SenoneScorer` backend seam (SoC / scalar / SIMD scorers), phone decode, word decode (token passing over the lexical tree), word lattice, global best path, batch decoding |
//! | [`corpus`] | `asr-corpus` | synthetic WSJ5K-like tasks, utterance/audio synthesis, WER scoring |
//! | [`baseline`] | `asr-baseline` | software-decoder and related-work accelerator baselines |
//! | [`serve`] | `asr-serve` | async batched serving front: bounded queue, micro-batcher, typed backpressure, incremental stream sessions |
//! | [`stream`] | `asr-stream` | streaming recognition: chunked frontend with live CMN, energy VAD endpointing, incremental decode sessions with partials and chunk-latency accounting |
//! | [`obs`] | `asr-obs` | observability: request traces with typed span events, the unified metrics registry (counters / gauges / latency histograms), JSONL fact sinks |
//!
//! # Quickstart
//!
//! ```
//! use lvcsr::corpus::{TaskConfig, TaskGenerator};
//! use lvcsr::decoder::{DecoderConfig, Recognizer};
//!
//! // Generate a small synthetic task and decode one utterance on the
//! // cycle-accurate hardware model with two accelerator structures.
//! let task = TaskGenerator::new(1).generate(&TaskConfig::tiny()).unwrap();
//! let recognizer = Recognizer::new(
//!     task.acoustic_model.clone(),
//!     task.dictionary.clone(),
//!     task.language_model.clone(),
//!     DecoderConfig::hardware(2),
//! )
//! .unwrap();
//! let (features, reference) = task.synthesize_utterance(2, 0.2, 7);
//! let result = recognizer.decode_features(&features).unwrap();
//! assert_eq!(result.hypothesis.words, reference);
//! let hw = result.hardware.unwrap();
//! assert!(hw.real_time_fraction > 0.99);
//!
//! // A stream of utterances decodes through one scorer (the SoC model is
//! // built once and its counters reset between utterances), with results
//! // identical to per-utterance decoding.
//! let (more, _) = task.synthesize_utterance(3, 0.2, 8);
//! let batch = recognizer.decode_batch(&[features, more]).unwrap();
//! assert_eq!(batch[0].hypothesis.words, reference);
//! assert_eq!(batch.len(), 2);
//! ```
//!
//! # Serving quickstart
//!
//! Many callers share one warmed scorer through the async front (the
//! README's serving quickstart and `examples/serving.rs` are the long
//! forms):
//!
//! ```
//! use lvcsr::corpus::{TaskConfig, TaskGenerator};
//! use lvcsr::decoder::{DecoderConfig, Recognizer};
//! use lvcsr::serve::{AsrServer, ServeConfig};
//!
//! let task = TaskGenerator::new(1).generate(&TaskConfig::tiny()).unwrap();
//! let recognizer = Recognizer::new(
//!     task.acoustic_model.clone(),
//!     task.dictionary.clone(),
//!     task.language_model.clone(),
//!     // Two SoC instances sharing each frame's active-senone set.
//!     DecoderConfig::sharded_hardware(2),
//! )
//! .unwrap();
//! let server = AsrServer::spawn(recognizer, ServeConfig::default()).unwrap();
//! let pending: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let (features, reference) = task.synthesize_utterance(1, 0.2, seed);
//!         (server.submit(features).unwrap(), reference)
//!     })
//!     .collect();
//! for (future, reference) in pending {
//!     assert_eq!(future.wait().unwrap().hypothesis.words, reference);
//! }
//! let report = server.hardware_report().unwrap();
//! assert!(report.real_time_fraction > 0.99);
//! assert_eq!(server.stats().completed, 4);
//! ```

#![deny(missing_docs)]

pub use asr_acoustic as acoustic;
pub use asr_baseline as baseline;
pub use asr_core as decoder;
pub use asr_corpus as corpus;
pub use asr_float as float;
pub use asr_frontend as frontend;
pub use asr_hw as hw;
pub use asr_lexicon as lexicon;
pub use asr_obs as obs;
pub use asr_serve as serve;
pub use asr_stream as stream;

/// One error type for the whole workspace: every crate's error converts into
/// it via `From`, so application code (the `examples/`, integration tests,
/// downstream users) can thread any layer's failure through `?` without
/// flattening it to a string. The typed source is preserved and exposed
/// through [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub enum LvcsrError {
    /// Numeric-substrate error (`asr-float`).
    Float(float::FloatError),
    /// Frontend configuration error (`asr-frontend`).
    Frontend(frontend::FrontendError),
    /// Acoustic-model error (`asr-acoustic`).
    Acoustic(acoustic::AcousticError),
    /// Lexicon / language-model error (`asr-lexicon`).
    Lexicon(lexicon::LexiconError),
    /// Hardware-model error (`asr-hw`).
    Hardware(hw::HwError),
    /// Decoder error (`asr-core`).
    Decode(decoder::DecodeError),
    /// Synthetic-corpus error (`asr-corpus`).
    Corpus(corpus::CorpusError),
    /// Serving-front error (`asr-serve`): backpressure, shutdown, or a decode
    /// failure surfaced through the queue.
    Serve(serve::ServeError),
    /// Streaming-subsystem error (`asr-stream`): an invalid stream/VAD
    /// configuration, or a frontend/decode failure inside a session.
    Stream(stream::StreamError),
}

impl core::fmt::Display for LvcsrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LvcsrError::Float(e) => write!(f, "float: {e}"),
            LvcsrError::Frontend(e) => write!(f, "frontend: {e}"),
            LvcsrError::Acoustic(e) => write!(f, "acoustic model: {e}"),
            LvcsrError::Lexicon(e) => write!(f, "lexicon: {e}"),
            LvcsrError::Hardware(e) => write!(f, "hardware model: {e}"),
            LvcsrError::Decode(e) => write!(f, "decoder: {e}"),
            LvcsrError::Corpus(e) => write!(f, "corpus: {e}"),
            LvcsrError::Serve(e) => write!(f, "serving front: {e}"),
            LvcsrError::Stream(e) => write!(f, "streaming: {e}"),
        }
    }
}

impl std::error::Error for LvcsrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LvcsrError::Float(e) => Some(e),
            LvcsrError::Frontend(e) => Some(e),
            LvcsrError::Acoustic(e) => Some(e),
            LvcsrError::Lexicon(e) => Some(e),
            LvcsrError::Hardware(e) => Some(e),
            LvcsrError::Decode(e) => Some(e),
            LvcsrError::Corpus(e) => Some(e),
            LvcsrError::Serve(e) => Some(e),
            LvcsrError::Stream(e) => Some(e),
        }
    }
}

macro_rules! lvcsr_error_from {
    ($($variant:ident($ty:ty)),+ $(,)?) => {$(
        impl From<$ty> for LvcsrError {
            fn from(e: $ty) -> Self {
                LvcsrError::$variant(e)
            }
        }
    )+};
}

lvcsr_error_from!(
    Float(float::FloatError),
    Frontend(frontend::FrontendError),
    Acoustic(acoustic::AcousticError),
    Lexicon(lexicon::LexiconError),
    Hardware(hw::HwError),
    Decode(decoder::DecodeError),
    Corpus(corpus::CorpusError),
    Serve(serve::ServeError),
    Stream(stream::StreamError),
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn every_layer_converts_and_keeps_its_source() {
        let errors: Vec<LvcsrError> = vec![
            float::FloatError::InvalidMantissaWidth(31).into(),
            frontend::FrontendError::InvalidConfig("x".into()).into(),
            acoustic::AcousticError::UnknownId("senone#7".into()).into(),
            lexicon::LexiconError::UnknownWord("zzz".into()).into(),
            hw::HwError::NoFeatureLoaded.into(),
            decoder::DecodeError::InvalidConfig("beam".into()).into(),
            corpus::CorpusError::InvalidConfig("vocab".into()).into(),
            serve::ServeError::Decode(decoder::DecodeError::InvalidConfig("queue".into())).into(),
            stream::StreamError::Decode(decoder::DecodeError::InvalidConfig("chunk".into())).into(),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "{e} must expose its source");
        }
    }

    #[test]
    fn question_mark_threads_through_layers() {
        fn build() -> Result<(), LvcsrError> {
            // A decoder-layer failure propagates with `?` from a deeper error.
            let bad = decoder::DecoderConfig {
                beam: -1.0,
                ..decoder::DecoderConfig::default()
            };
            bad.validate()?;
            Ok(())
        }
        assert!(matches!(build(), Err(LvcsrError::Decode(_))));
    }
}
