//! Streaming latency accounting: per-chunk wall-clock latency and real-time
//! factor of an incremental decode.
//!
//! The paper's SoC is judged by whether it keeps up with audio arriving in
//! real time; a *streaming* software reproduction is judged the same way,
//! but in host wall-clock terms: how long did each pushed chunk take to
//! process, and how does the total processing time compare to the audio it
//! covered?  [`StreamTiming`] collects those figures chunk by chunk and is
//! folded into [`UtteranceReport`](crate::UtteranceReport) by the streaming
//! layer, next to the simulated-cycle figures the SoC model keeps.

/// Per-chunk latency statistics of one streamed utterance (or a merged
/// stream of them).
///
/// Latencies are recorded in seconds of host wall-clock per pushed chunk;
/// audio time is the duration of the audio (or feature frames × frame shift)
/// each chunk covered.  The ratio of the two is the stream's real-time
/// factor: below 1.0 means the session keeps up with live audio.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamTiming {
    /// Wall-clock seconds spent processing each chunk, in arrival order.
    chunk_latencies_s: Vec<f64>,
    /// Audio seconds covered by all chunks together.
    audio_seconds: f64,
}

impl StreamTiming {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one processed chunk: the wall-clock seconds it took and the
    /// audio seconds it covered.  Negative inputs are clamped to zero (a
    /// non-monotonic clock must not poison the stream's statistics).
    pub fn record_chunk(&mut self, latency_s: f64, audio_s: f64) {
        self.chunk_latencies_s.push(latency_s.max(0.0));
        self.audio_seconds += audio_s.max(0.0);
    }

    /// Number of chunks recorded.
    pub fn chunks(&self) -> usize {
        self.chunk_latencies_s.len()
    }

    /// Audio seconds covered by the stream so far.
    pub fn audio_seconds(&self) -> f64 {
        self.audio_seconds
    }

    /// Total wall-clock seconds spent processing.
    pub fn total_latency_s(&self) -> f64 {
        self.chunk_latencies_s.iter().sum()
    }

    /// Mean per-chunk latency in seconds (0 when nothing was recorded).
    pub fn mean_latency_s(&self) -> f64 {
        if self.chunk_latencies_s.is_empty() {
            0.0
        } else {
            self.total_latency_s() / self.chunk_latencies_s.len() as f64
        }
    }

    /// Worst per-chunk latency in seconds.
    pub fn max_latency_s(&self) -> f64 {
        self.chunk_latencies_s.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Median (p50) per-chunk latency in seconds — the figure the bench gate
    /// tracks, robust against one cold-cache outlier chunk.
    pub fn p50_latency_s(&self) -> f64 {
        self.percentile_latency_s(50.0)
    }

    /// Per-chunk latency at an arbitrary percentile in `[0, 100]`
    /// (nearest-rank; 0 when nothing was recorded).
    pub fn percentile_latency_s(&self, percentile: f64) -> f64 {
        if self.chunk_latencies_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.chunk_latencies_s.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let p = percentile.clamp(0.0, 100.0) / 100.0;
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The stream's host real-time factor: total processing wall-clock over
    /// audio seconds.  Below 1.0 means the stream keeps up with live audio;
    /// 0 when no audio time was recorded.
    pub fn real_time_factor(&self) -> f64 {
        if self.audio_seconds <= 0.0 {
            0.0
        } else {
            self.total_latency_s() / self.audio_seconds
        }
    }

    /// Folds another stream's timing into this one (chunk records
    /// concatenate, audio adds) — the sequential-stream counterpart of
    /// [`UtteranceReport::merge`](crate::UtteranceReport::merge).
    pub fn merge(&self, other: &StreamTiming) -> StreamTiming {
        let mut merged = self.clone();
        merged
            .chunk_latencies_s
            .extend_from_slice(&other.chunk_latencies_s);
        merged.audio_seconds += other.audio_seconds;
        merged
    }

    /// Combines two optional timings, for report folding: present beats
    /// absent, two present records merge.
    pub fn merge_options(
        a: &Option<StreamTiming>,
        b: &Option<StreamTiming>,
    ) -> Option<StreamTiming> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.merge(y)),
            (Some(x), None) => Some(x.clone()),
            (None, Some(y)) => Some(y.clone()),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timing_is_all_zeros() {
        let t = StreamTiming::new();
        assert_eq!(t.chunks(), 0);
        assert_eq!(t.total_latency_s(), 0.0);
        assert_eq!(t.mean_latency_s(), 0.0);
        assert_eq!(t.max_latency_s(), 0.0);
        assert_eq!(t.p50_latency_s(), 0.0);
        assert_eq!(t.real_time_factor(), 0.0);
        assert_eq!(t.audio_seconds(), 0.0);
    }

    #[test]
    fn records_aggregate_and_percentiles_rank() {
        let mut t = StreamTiming::new();
        for &l in &[0.004, 0.001, 0.002, 0.003, 0.010] {
            t.record_chunk(l, 0.1);
        }
        assert_eq!(t.chunks(), 5);
        assert!((t.audio_seconds() - 0.5).abs() < 1e-12);
        assert!((t.total_latency_s() - 0.020).abs() < 1e-12);
        assert!((t.mean_latency_s() - 0.004).abs() < 1e-12);
        assert_eq!(t.max_latency_s(), 0.010);
        // Nearest-rank p50 of {1,2,3,4,10} ms is 3 ms; p100 is the max.
        assert!((t.p50_latency_s() - 0.003).abs() < 1e-12);
        assert_eq!(t.percentile_latency_s(100.0), 0.010);
        assert_eq!(t.percentile_latency_s(0.0), 0.001);
        // 20 ms of work for 500 ms of audio: far faster than real time.
        assert!((t.real_time_factor() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let mut t = StreamTiming::new();
        t.record_chunk(-1.0, -2.0);
        assert_eq!(t.total_latency_s(), 0.0);
        assert_eq!(t.audio_seconds(), 0.0);
        assert_eq!(t.real_time_factor(), 0.0);
    }

    #[test]
    fn merge_concatenates_chunks_and_adds_audio() {
        let mut a = StreamTiming::new();
        a.record_chunk(0.001, 0.1);
        let mut b = StreamTiming::new();
        b.record_chunk(0.003, 0.2);
        b.record_chunk(0.002, 0.2);
        let m = a.merge(&b);
        assert_eq!(m.chunks(), 3);
        assert!((m.audio_seconds() - 0.5).abs() < 1e-12);
        assert!((m.total_latency_s() - 0.006).abs() < 1e-12);
        assert_eq!(m.max_latency_s(), 0.003);
    }

    #[test]
    fn option_folding_prefers_presence() {
        let mut a = StreamTiming::new();
        a.record_chunk(0.001, 0.1);
        assert_eq!(StreamTiming::merge_options(&None, &None), None);
        assert_eq!(
            StreamTiming::merge_options(&Some(a.clone()), &None),
            Some(a.clone())
        );
        assert_eq!(
            StreamTiming::merge_options(&None, &Some(a.clone())),
            Some(a.clone())
        );
        let both = StreamTiming::merge_options(&Some(a.clone()), &Some(a)).unwrap();
        assert_eq!(both.chunks(), 2);
    }
}
