//! Flash, working RAM and DMA models with bandwidth accounting.
//!
//! "The system uses RAM for the intermediate values and flash memory to store
//! acoustic and language models for speech recognition.  [...] The word decode
//! is implemented in software and it accesses the dictionary (stored in flash
//! memory) through a DMA interface."
//!
//! The models here do not store actual data (the parameter values already
//! live in the `asr-acoustic` structures); they account for every byte the
//! decoder *would* move so the bandwidth claims of the paper can be measured
//! rather than assumed.

use asr_float::MantissaWidth;

/// Counters describing traffic through one memory device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read transactions.
    pub read_transactions: u64,
    /// Number of write transactions.
    pub write_transactions: u64,
}

impl MemoryStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Average bandwidth in GB/s given the elapsed time.
    pub fn bandwidth_gb_per_s(&self, elapsed_s: f64) -> f64 {
        if elapsed_s <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 / elapsed_s / 1.0e9
    }
}

/// The flash device storing acoustic model, dictionary and language model.
#[derive(Debug, Clone)]
pub struct FlashMemory {
    /// Width at which Gaussian parameters are stored (the paper's mantissa
    /// sweep changes this and nothing else).
    parameter_width: MantissaWidth,
    stats: MemoryStats,
    /// Per-frame byte counter, reset by [`FlashMemory::begin_frame`].
    frame_bytes: u64,
    /// History of per-frame byte counts (one entry per completed frame).
    frame_history: Vec<u64>,
}

impl FlashMemory {
    /// Creates a flash model storing parameters at the given width.
    pub fn new(parameter_width: MantissaWidth) -> Self {
        FlashMemory {
            parameter_width,
            stats: MemoryStats::default(),
            frame_bytes: 0,
            frame_history: Vec::new(),
        }
    }

    /// The parameter storage width.
    pub fn parameter_width(&self) -> MantissaWidth {
        self.parameter_width
    }

    /// Bytes occupied by one stored parameter at the configured width.
    pub fn bytes_per_parameter(&self) -> f64 {
        self.parameter_width.storage_bytes()
    }

    /// Records a read of `count` Gaussian parameters (mean/variance/weight
    /// values streamed into the OP unit).
    pub fn read_parameters(&mut self, count: usize) {
        let bytes = (count as f64 * self.bytes_per_parameter()).ceil() as u64;
        self.stats.bytes_read += bytes;
        self.stats.read_transactions += 1;
        self.frame_bytes += bytes;
    }

    /// Records a raw byte read (dictionary / language-model access over DMA).
    pub fn read_bytes(&mut self, bytes: u64) {
        self.stats.bytes_read += bytes;
        self.stats.read_transactions += 1;
        self.frame_bytes += bytes;
    }

    /// Starts a new 10 ms frame window for bandwidth accounting.
    pub fn begin_frame(&mut self) {
        if self.frame_bytes > 0 || !self.frame_history.is_empty() {
            self.frame_history.push(self.frame_bytes);
        }
        self.frame_bytes = 0;
    }

    /// Finishes the utterance, flushing the current frame counter.
    pub fn end_utterance(&mut self) {
        self.frame_history.push(self.frame_bytes);
        self.frame_bytes = 0;
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Bytes read during the worst single frame so far.
    pub fn peak_frame_bytes(&self) -> u64 {
        self.frame_history
            .iter()
            .copied()
            .chain([self.frame_bytes])
            .max()
            .unwrap_or(0)
    }

    /// Mean bytes per completed frame.
    pub fn mean_frame_bytes(&self) -> f64 {
        if self.frame_history.is_empty() {
            return self.frame_bytes as f64;
        }
        self.frame_history.iter().sum::<u64>() as f64 / self.frame_history.len() as f64
    }

    /// Peak per-frame bandwidth in GB/s for a given frame period.
    pub fn peak_bandwidth_gb_per_s(&self, frame_period_s: f64) -> f64 {
        if frame_period_s <= 0.0 {
            return 0.0;
        }
        self.peak_frame_bytes() as f64 / frame_period_s / 1.0e9
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.stats = MemoryStats::default();
        self.frame_bytes = 0;
        self.frame_history.clear();
    }
}

impl Default for FlashMemory {
    fn default() -> Self {
        Self::new(MantissaWidth::FULL)
    }
}

/// The on-chip working RAM holding intermediate values (senone scores, Viterbi
/// path scores, the phone/word lattices under construction).
#[derive(Debug, Clone, Default)]
pub struct WorkingRam {
    stats: MemoryStats,
    /// High-water mark of bytes resident at once.
    peak_resident_bytes: u64,
    resident_bytes: u64,
}

impl WorkingRam {
    /// Creates an empty RAM model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a write of `bytes` (e.g. storing senone scores for the frame).
    pub fn write(&mut self, bytes: u64) {
        self.stats.bytes_written += bytes;
        self.stats.write_transactions += 1;
        self.resident_bytes += bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
    }

    /// Records a read of `bytes`.
    pub fn read(&mut self, bytes: u64) {
        self.stats.bytes_read += bytes;
        self.stats.read_transactions += 1;
    }

    /// Frees `bytes` of residency (end of frame reuse).
    pub fn free(&mut self, bytes: u64) {
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// The largest number of bytes ever resident at once.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The DMA engine the software word-decode stage uses to fetch dictionary and
/// language-model data from flash without occupying the host CPU.
///
/// The paper criticises a related design where "the acoustic models are not
/// accessed through a DMA, therefore, performance may be poor because of
/// resource contention" — the DMA model tracks how many host cycles were *not*
/// spent copying because the DMA did the work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaEngine {
    transfers: u64,
    bytes_transferred: u64,
    /// Host CPU cycles that a programmed-I/O copy would have cost (4 bytes per
    /// cycle assumed), i.e. the contention the DMA removed.
    host_cycles_saved: u64,
}

impl DmaEngine {
    /// Creates an idle DMA engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a DMA transfer of `bytes` from flash to RAM.
    pub fn transfer(&mut self, bytes: u64) {
        self.transfers += 1;
        self.bytes_transferred += bytes;
        self.host_cycles_saved += bytes / 4;
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Host cycles that would have been spent on programmed I/O.
    pub fn host_cycles_saved(&self) -> u64 {
        self.host_cycles_saved
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_parameter_width_scaling() {
        let full = FlashMemory::new(MantissaWidth::FULL);
        let narrow = FlashMemory::new(MantissaWidth::BITS_12);
        assert_eq!(full.bytes_per_parameter(), 4.0);
        assert!((narrow.bytes_per_parameter() - 21.0 / 8.0).abs() < 1e-12);
        assert_eq!(full.parameter_width(), MantissaWidth::FULL);
        assert_eq!(
            FlashMemory::default().parameter_width(),
            MantissaWidth::FULL
        );
    }

    #[test]
    fn flash_frame_accounting() {
        let mut flash = FlashMemory::new(MantissaWidth::FULL);
        flash.begin_frame();
        flash.read_parameters(1000); // 4000 bytes
        flash.begin_frame();
        flash.read_parameters(500); // 2000 bytes
        flash.read_bytes(100);
        flash.end_utterance();
        assert_eq!(flash.stats().bytes_read, 4000 + 2000 + 100);
        assert_eq!(flash.stats().read_transactions, 3);
        assert_eq!(flash.peak_frame_bytes(), 4000);
        assert!((flash.mean_frame_bytes() - 3050.0).abs() < 1e-9);
        // Peak bandwidth for a 10 ms frame: 4000 B / 0.01 s = 400 kB/s.
        assert!((flash.peak_bandwidth_gb_per_s(0.010) - 4.0e-4).abs() < 1e-12);
        assert_eq!(flash.peak_bandwidth_gb_per_s(0.0), 0.0);
        flash.reset();
        assert_eq!(flash.stats().total_bytes(), 0);
        assert_eq!(flash.peak_frame_bytes(), 0);
    }

    #[test]
    fn paper_worst_case_bandwidth_from_flash_model() {
        // Stream the full 6000-senone model (3.792M parameters) in one frame.
        let mut flash = FlashMemory::new(MantissaWidth::FULL);
        flash.begin_frame();
        flash.read_parameters(3_792_000);
        flash.end_utterance();
        let gbps = flash.peak_bandwidth_gb_per_s(0.010);
        assert!((gbps - 1.5168).abs() < 0.01, "{gbps}");
    }

    #[test]
    fn memory_stats_helpers() {
        let stats = MemoryStats {
            bytes_read: 600,
            bytes_written: 400,
            read_transactions: 2,
            write_transactions: 1,
        };
        assert_eq!(stats.total_bytes(), 1000);
        // 1000 bytes in 1 µs = 1 GB/s.
        assert!((stats.bandwidth_gb_per_s(1.0e-6) - 1.0).abs() < 1e-9);
        assert_eq!(stats.bandwidth_gb_per_s(0.0), 0.0);
    }

    #[test]
    fn working_ram_residency() {
        let mut ram = WorkingRam::new();
        ram.write(1000);
        ram.write(500);
        assert_eq!(ram.peak_resident_bytes(), 1500);
        ram.free(1200);
        ram.write(100);
        assert_eq!(ram.peak_resident_bytes(), 1500);
        ram.read(50);
        assert_eq!(ram.stats().bytes_read, 50);
        assert_eq!(ram.stats().bytes_written, 1600);
        ram.free(10_000); // saturates, does not underflow
        ram.reset();
        assert_eq!(ram.peak_resident_bytes(), 0);
    }

    #[test]
    fn dma_engine_tracks_savings() {
        let mut dma = DmaEngine::new();
        dma.transfer(4096);
        dma.transfer(1024);
        assert_eq!(dma.transfers(), 2);
        assert_eq!(dma.bytes_transferred(), 5120);
        assert_eq!(dma.host_cycles_saved(), 5120 / 4);
        dma.reset();
        assert_eq!(dma.transfers(), 0);
    }
}
