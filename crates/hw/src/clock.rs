//! Clock domains and cycle accounting.
//!
//! "These units operate at a low frequency of 50MHz thus consuming low
//! power." — every hardware model in this crate counts its work in cycles of
//! a [`ClockDomain`], and the SoC model converts cycle counts into wall-clock
//! time and real-time factors against the 10 ms frame period.

/// A number of clock cycles.
pub type CycleCount = u64;

/// A fixed-frequency clock domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    frequency_hz: f64,
}

impl ClockDomain {
    /// The paper's accelerator clock: 50 MHz.
    pub const ACCELERATOR_50MHZ: ClockDomain = ClockDomain {
        frequency_hz: 50.0e6,
    };

    /// A representative embedded host-processor clock (ARM9-class, 200 MHz).
    pub const HOST_200MHZ: ClockDomain = ClockDomain {
        frequency_hz: 200.0e6,
    };

    /// A desktop-class processor clock used by the software baseline
    /// comparison (2 GHz Pentium-class, per the paper's related-work section).
    pub const DESKTOP_2GHZ: ClockDomain = ClockDomain {
        frequency_hz: 2.0e9,
    };

    /// Creates a clock domain.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive and finite.
    pub fn new(frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "clock frequency must be positive"
        );
        ClockDomain { frequency_hz }
    }

    /// The frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Duration of `cycles` in seconds.
    pub fn cycles_to_seconds(&self, cycles: CycleCount) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Number of whole cycles available in `seconds`.
    pub fn cycles_in(&self, seconds: f64) -> CycleCount {
        (seconds * self.frequency_hz).floor() as CycleCount
    }

    /// Cycles available in one 10 ms speech frame.
    pub fn cycles_per_frame(&self, frame_period_s: f64) -> CycleCount {
        self.cycles_in(frame_period_s)
    }

    /// Real-time factor of a workload: processing time divided by the audio
    /// time it covers.  Values ≤ 1 mean real-time operation.
    pub fn real_time_factor(&self, cycles: CycleCount, audio_seconds: f64) -> f64 {
        if audio_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.cycles_to_seconds(cycles) / audio_seconds
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        Self::ACCELERATOR_50MHZ
    }
}

/// Tracks active versus gated cycles for a clock-gated unit.
///
/// "To save power, our dedicated units use clock gating." — the power model
/// charges dynamic energy only for active cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockGate {
    active_cycles: CycleCount,
    gated_cycles: CycleCount,
}

impl ClockGate {
    /// Creates a gate with no recorded activity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `cycles` of real work (clock running).
    pub fn record_active(&mut self, cycles: CycleCount) {
        self.active_cycles += cycles;
    }

    /// Records `cycles` during which the unit was idle and its clock gated.
    pub fn record_gated(&mut self, cycles: CycleCount) {
        self.gated_cycles += cycles;
    }

    /// Cycles spent doing work.
    pub fn active_cycles(&self) -> CycleCount {
        self.active_cycles
    }

    /// Cycles spent gated.
    pub fn gated_cycles(&self) -> CycleCount {
        self.gated_cycles
    }

    /// Total elapsed cycles (active + gated).
    pub fn total_cycles(&self) -> CycleCount {
        self.active_cycles + self.gated_cycles
    }

    /// Fraction of time the unit was active, in `[0, 1]`.
    pub fn activity_factor(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.active_cycles as f64 / total as f64
        }
    }

    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_clock_constants() {
        assert_eq!(ClockDomain::ACCELERATOR_50MHZ.frequency_hz(), 50.0e6);
        assert_eq!(ClockDomain::default(), ClockDomain::ACCELERATOR_50MHZ);
        // 10 ms frame at 50 MHz = 500 000 cycles.
        assert_eq!(
            ClockDomain::ACCELERATOR_50MHZ.cycles_per_frame(0.010),
            500_000
        );
        assert_eq!(ClockDomain::HOST_200MHZ.cycles_per_frame(0.010), 2_000_000);
    }

    #[test]
    fn cycle_time_conversions() {
        let clk = ClockDomain::new(100.0e6);
        assert_eq!(clk.cycles_in(1.0), 100_000_000);
        assert!((clk.cycles_to_seconds(50_000_000) - 0.5).abs() < 1e-12);
        // Round trip.
        assert_eq!(clk.cycles_in(clk.cycles_to_seconds(12345)), 12345);
    }

    #[test]
    fn real_time_factor() {
        let clk = ClockDomain::ACCELERATOR_50MHZ;
        // 250k cycles of work per 10 ms frame → RT factor 0.5.
        assert!((clk.real_time_factor(250_000, 0.010) - 0.5).abs() < 1e-9);
        // 1M cycles per 10 ms frame → 2× slower than real time.
        assert!((clk.real_time_factor(1_000_000, 0.010) - 2.0).abs() < 1e-9);
        assert_eq!(clk.real_time_factor(1, 0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        ClockDomain::new(0.0);
    }

    #[test]
    fn clock_gate_accounting() {
        let mut g = ClockGate::new();
        assert_eq!(g.activity_factor(), 0.0);
        g.record_active(300);
        g.record_gated(700);
        assert_eq!(g.active_cycles(), 300);
        assert_eq!(g.gated_cycles(), 700);
        assert_eq!(g.total_cycles(), 1000);
        assert!((g.activity_factor() - 0.3).abs() < 1e-12);
        g.reset();
        assert_eq!(g.total_cycles(), 0);
    }

    proptest! {
        #[test]
        fn prop_activity_factor_bounded(active in 0u64..1_000_000, gated in 0u64..1_000_000) {
            let mut g = ClockGate::new();
            g.record_active(active);
            g.record_gated(gated);
            let f = g.activity_factor();
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn prop_rtf_scales_linearly(cycles in 1u64..10_000_000) {
            let clk = ClockDomain::ACCELERATOR_50MHZ;
            let rtf1 = clk.real_time_factor(cycles, 1.0);
            let rtf2 = clk.real_time_factor(cycles * 2, 1.0);
            prop_assert!((rtf2 - 2.0 * rtf1).abs() < 1e-9);
        }
    }
}
