//! Power and area model.
//!
//! The paper synthesised the OP unit and Viterbi decoder with a 0.18 µm
//! library at 50 MHz and reports, per dedicated structure (one OP unit + one
//! Viterbi decoder): **200 mW** of power and **2.2 mm²** of area; the full
//! system uses two structures (400 mW, 4.4 mm²).  We cannot re-run Synopsys
//! here, so the model is *calibrated*: component power budgets are chosen so
//! that a fully-active structure at 50 MHz dissipates exactly the paper's
//! 200 mW, and everything else (clock-gating savings, energy per frame,
//! comparisons against the software baseline) is derived from measured
//! activity factors of the cycle-accurate unit models.

use crate::clock::{ClockDomain, CycleCount};

/// Per-structure area budget in mm², 0.18 µm technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBudget {
    /// Observation Probability unit datapath.
    pub opu_mm2: f64,
    /// Viterbi decoder datapath.
    pub viterbi_mm2: f64,
    /// Log-add SRAM, buffers and control.
    pub sram_control_mm2: f64,
}

impl AreaBudget {
    /// The paper's 2.2 mm² structure, split across its blocks.
    pub const PAPER: AreaBudget = AreaBudget {
        opu_mm2: 1.5,
        viterbi_mm2: 0.5,
        sram_control_mm2: 0.2,
    };

    /// Total area of one structure.
    pub fn structure_mm2(&self) -> f64 {
        self.opu_mm2 + self.viterbi_mm2 + self.sram_control_mm2
    }

    /// Total area of `n` structures (the paper instantiates 2 → 4.4 mm²).
    pub fn total_mm2(&self, structures: usize) -> f64 {
        self.structure_mm2() * structures as f64
    }
}

impl Default for AreaBudget {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Dynamic/leakage power model of one accelerator structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Clock the structure runs at.
    pub clock: ClockDomain,
    /// Dynamic power of the OP-unit datapath at 100 % activity, watts.
    pub opu_dynamic_w: f64,
    /// Dynamic power of the Viterbi datapath at 100 % activity, watts.
    pub viterbi_dynamic_w: f64,
    /// Dynamic power of SRAM + control + buffers at 100 % activity, watts.
    pub sram_control_dynamic_w: f64,
    /// Leakage power, watts (always dissipated while powered, even gated —
    /// small at 0.18 µm).
    pub leakage_w: f64,
    /// Area budget.
    pub area: AreaBudget,
}

impl PowerModel {
    /// Calibrated to the paper's synthesis result: 200 mW per structure fully
    /// active at 50 MHz (140 mW OPU + 40 mW Viterbi + 10 mW SRAM/control
    /// dynamic, plus 10 mW leakage).
    pub fn paper_calibrated() -> Self {
        PowerModel {
            clock: ClockDomain::ACCELERATOR_50MHZ,
            opu_dynamic_w: 0.140,
            viterbi_dynamic_w: 0.040,
            sram_control_dynamic_w: 0.010,
            leakage_w: 0.010,
            area: AreaBudget::PAPER,
        }
    }

    /// Power of one fully-active structure (the paper's 200 mW figure).
    pub fn structure_full_power_w(&self) -> f64 {
        self.opu_dynamic_w + self.viterbi_dynamic_w + self.sram_control_dynamic_w + self.leakage_w
    }

    /// Average power of one structure given measured activity factors for the
    /// OP unit and the Viterbi unit (clock gating removes dynamic power in
    /// idle cycles; leakage remains).
    pub fn structure_power_w(&self, opu_activity: f64, viterbi_activity: f64) -> f64 {
        let opu_activity = opu_activity.clamp(0.0, 1.0);
        let vit_activity = viterbi_activity.clamp(0.0, 1.0);
        // SRAM/control activity follows the busier of the two datapaths.
        let ctrl_activity = opu_activity.max(vit_activity);
        self.opu_dynamic_w * opu_activity
            + self.viterbi_dynamic_w * vit_activity
            + self.sram_control_dynamic_w * ctrl_activity
            + self.leakage_w
    }

    /// Energy (joules) consumed by one structure over `elapsed` cycles at the
    /// given activity factors.
    pub fn structure_energy_j(
        &self,
        elapsed: CycleCount,
        opu_activity: f64,
        viterbi_activity: f64,
    ) -> f64 {
        self.structure_power_w(opu_activity, viterbi_activity)
            * self.clock.cycles_to_seconds(elapsed)
    }

    /// Energy per full-activity cycle of the OP unit, joules
    /// (used for fine-grained per-operation accounting).
    pub fn opu_energy_per_active_cycle_j(&self) -> f64 {
        self.opu_dynamic_w / self.clock.frequency_hz()
    }

    /// Energy per full-activity cycle of the Viterbi unit, joules.
    pub fn viterbi_energy_per_active_cycle_j(&self) -> f64 {
        self.viterbi_dynamic_w / self.clock.frequency_hz()
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// A cost/power model of the embedded host processor (ARM946-class with a
/// floating-point coprocessor) that runs the software stages: frontend, word
/// decode and global best path search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCpuModel {
    /// Host clock.
    pub clock: ClockDomain,
    /// Active power, watts.
    pub active_power_w: f64,
    /// Idle (clock-gated / WFI) power, watts.
    pub idle_power_w: f64,
    /// Cycles the frontend needs per 10 ms frame (MFCC is lightweight:
    /// "it is a lightweight process").
    pub frontend_cycles_per_frame: CycleCount,
    /// Cycles the word-decode stage needs per active triphone per frame.
    pub word_decode_cycles_per_triphone: CycleCount,
    /// Cycles the global best path search needs per word-lattice edge.
    pub best_path_cycles_per_edge: CycleCount,
}

impl HostCpuModel {
    /// A 200 MHz ARM9-class embedded core with VFP, ~0.5 mW/MHz at 0.18 µm.
    pub fn arm9_embedded() -> Self {
        HostCpuModel {
            clock: ClockDomain::HOST_200MHZ,
            active_power_w: 0.100,
            idle_power_w: 0.005,
            frontend_cycles_per_frame: 60_000,
            word_decode_cycles_per_triphone: 40,
            best_path_cycles_per_edge: 25,
        }
    }

    /// A desktop-class processor for the software-baseline comparison
    /// (the paper's related work "run\[s\] on a desktop platform (Pentium
    /// Series) consuming all its resources").
    pub fn desktop_pentium() -> Self {
        HostCpuModel {
            clock: ClockDomain::DESKTOP_2GHZ,
            active_power_w: 30.0,
            idle_power_w: 8.0,
            frontend_cycles_per_frame: 30_000,
            word_decode_cycles_per_triphone: 25,
            best_path_cycles_per_edge: 15,
        }
    }

    /// Host cycles needed for the software stages of one frame.
    pub fn software_cycles_per_frame(
        &self,
        active_triphones: usize,
        lattice_edges: usize,
    ) -> CycleCount {
        self.frontend_cycles_per_frame
            + self.word_decode_cycles_per_triphone * active_triphones as u64
            + self.best_path_cycles_per_edge * lattice_edges as u64
    }

    /// Average host power over a frame in which `busy_cycles` of its clock
    /// were spent working and the rest idle.
    pub fn average_power_w(&self, busy_cycles: CycleCount, frame_period_s: f64) -> f64 {
        let available = self.clock.cycles_in(frame_period_s).max(1);
        let duty = (busy_cycles as f64 / available as f64).clamp(0.0, 1.0);
        self.active_power_w * duty + self.idle_power_w * (1.0 - duty)
    }

    /// Energy used by the host over one frame.
    pub fn energy_per_frame_j(&self, busy_cycles: CycleCount, frame_period_s: f64) -> f64 {
        self.average_power_w(busy_cycles, frame_period_s) * frame_period_s
    }
}

impl Default for HostCpuModel {
    fn default() -> Self {
        Self::arm9_embedded()
    }
}

/// Energy/power summary of a decoded utterance or frame batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Total accelerator energy, joules.
    pub accelerator_energy_j: f64,
    /// Total host-CPU energy, joules.
    pub host_energy_j: f64,
    /// Audio duration covered, seconds.
    pub audio_seconds: f64,
    /// Mean accelerator activity factor (OP unit).
    pub opu_activity: f64,
    /// Mean accelerator activity factor (Viterbi unit).
    pub viterbi_activity: f64,
}

impl EnergyReport {
    /// Total system energy.
    pub fn total_energy_j(&self) -> f64 {
        self.accelerator_energy_j + self.host_energy_j
    }

    /// Average total power over the audio duration.
    pub fn average_power_w(&self) -> f64 {
        if self.audio_seconds <= 0.0 {
            return 0.0;
        }
        self.total_energy_j() / self.audio_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_area_is_2_2_and_4_4_mm2() {
        let a = AreaBudget::PAPER;
        assert!((a.structure_mm2() - 2.2).abs() < 1e-9);
        assert!((a.total_mm2(2) - 4.4).abs() < 1e-9);
        assert_eq!(AreaBudget::default(), a);
    }

    #[test]
    fn paper_power_is_200_and_400_mw() {
        let p = PowerModel::paper_calibrated();
        assert!((p.structure_full_power_w() - 0.200).abs() < 1e-9);
        // Two fully-active structures → the paper's 400 mW.
        assert!((2.0 * p.structure_full_power_w() - 0.400).abs() < 1e-9);
        assert_eq!(PowerModel::default(), p);
    }

    #[test]
    fn clock_gating_reduces_power() {
        let p = PowerModel::paper_calibrated();
        let full = p.structure_power_w(1.0, 1.0);
        let half = p.structure_power_w(0.5, 0.5);
        let idle = p.structure_power_w(0.0, 0.0);
        assert!(full > half && half > idle);
        assert!((idle - p.leakage_w).abs() < 1e-12);
        // Gated power is well below half of full power at 50% activity
        // because leakage is small.
        assert!(half < 0.6 * full);
        // Out-of-range activity is clamped.
        assert_eq!(
            p.structure_power_w(2.0, -1.0),
            p.structure_power_w(1.0, 0.0)
        );
    }

    #[test]
    fn energy_scales_with_cycles_and_activity() {
        let p = PowerModel::paper_calibrated();
        let e1 = p.structure_energy_j(500_000, 1.0, 1.0);
        // One fully-active 10 ms frame at 200 mW = 2 mJ.
        assert!((e1 - 0.002).abs() < 1e-9);
        let e_half = p.structure_energy_j(500_000, 0.5, 0.5);
        assert!(e_half < e1);
        assert!(p.opu_energy_per_active_cycle_j() > 0.0);
        assert!(p.viterbi_energy_per_active_cycle_j() > 0.0);
    }

    #[test]
    fn host_cpu_costs() {
        let arm = HostCpuModel::arm9_embedded();
        assert_eq!(HostCpuModel::default(), arm);
        let cycles = arm.software_cycles_per_frame(500, 200);
        assert_eq!(cycles, 60_000 + 40 * 500 + 25 * 200);
        // Fully-busy frame → active power; idle frame → idle power.
        let frame = 0.010;
        assert!((arm.average_power_w(arm.clock.cycles_in(frame), frame) - 0.100).abs() < 1e-9);
        assert!((arm.average_power_w(0, frame) - 0.005).abs() < 1e-9);
        assert!(arm.energy_per_frame_j(100_000, frame) > 0.0);
        // The desktop baseline burns far more power.
        let desktop = HostCpuModel::desktop_pentium();
        assert!(desktop.active_power_w > 100.0 * arm.active_power_w);
    }

    #[test]
    fn energy_report_totals() {
        let r = EnergyReport {
            accelerator_energy_j: 0.002,
            host_energy_j: 0.001,
            audio_seconds: 0.010,
            opu_activity: 0.7,
            viterbi_activity: 0.1,
        };
        assert!((r.total_energy_j() - 0.003).abs() < 1e-12);
        assert!((r.average_power_w() - 0.3).abs() < 1e-9);
        assert_eq!(EnergyReport::default().average_power_w(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_power_monotone_in_activity(a1 in 0.0f64..1.0, a2 in 0.0f64..1.0) {
            let p = PowerModel::paper_calibrated();
            let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            prop_assert!(p.structure_power_w(lo, lo) <= p.structure_power_w(hi, hi) + 1e-12);
        }

        #[test]
        fn prop_power_bounded_by_paper_figure(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let p = PowerModel::paper_calibrated();
            prop_assert!(p.structure_power_w(a, b) <= p.structure_full_power_w() + 1e-12);
            prop_assert!(p.structure_power_w(a, b) >= p.leakage_w - 1e-12);
        }
    }
}
