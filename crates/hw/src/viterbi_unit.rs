//! Cycle-accurate model of the Viterbi decoder unit (Figure 3).
//!
//! The unit solves the log-domain recursion of equation (7):
//!
//! ```text
//! log δ_t(j) = max_i [ log δ_{t−1}(i) + log a_ij ] + log b_j(O_t)
//! ```
//!
//! It is "a set of 32-bit adder(s) and comparator(s)"; the adder and the
//! comparator are pipelined and the comparator takes two cycles.  Transition
//! probabilities stream in as matrix columns (one column per destination
//! state), the previous frame's path scores (`Delta(t−1)`) come from RAM, and
//! the senone score `b_j(O_t)` arrives from the OP unit.  The unit handles 3,
//! 5 and 7-state HMMs.

use crate::clock::{ClockGate, CycleCount};
use crate::HwError;
use asr_acoustic::TransitionMatrix;
use asr_float::{LogProb, MantissaWidth, SoftFloat};

/// Configuration of the Viterbi datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViterbiUnitConfig {
    /// Mantissa width of the 32-bit adder datapath.
    pub datapath_width: MantissaWidth,
    /// Cycles per add (path score + transition, and + senone score).
    pub add_cycles: CycleCount,
    /// Cycles per compare ("Add & Compare (2 cycles)" in Figure 3).
    pub compare_cycles: CycleCount,
    /// Pipeline fill cycles per destination-state column.
    pub column_fill_cycles: CycleCount,
}

impl Default for ViterbiUnitConfig {
    fn default() -> Self {
        ViterbiUnitConfig {
            datapath_width: MantissaWidth::FULL,
            add_cycles: 1,
            compare_cycles: 2,
            column_fill_cycles: 1,
        }
    }
}

impl ViterbiUnitConfig {
    /// Cycles to advance one HMM by one frame: for each of `states`
    /// destination columns, one add per incoming transition, a pipelined
    /// 2-cycle compare reduction, and a final add of the senone score.
    pub fn cycles_per_hmm(&self, states: usize, transitions_per_column: usize) -> CycleCount {
        let per_column = self.column_fill_cycles
            + self.add_cycles * transitions_per_column as u64
            + self.compare_cycles
            + self.add_cycles;
        states as u64 * per_column
    }
}

/// Activity statistics of the Viterbi unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViterbiUnitStats {
    /// Total busy cycles.
    pub cycles: CycleCount,
    /// HMM-frame updates performed (one per active triphone per frame).
    pub hmm_updates: u64,
    /// Individual add operations.
    pub adds: u64,
    /// Individual compare operations.
    pub compares: u64,
}

/// Result of advancing one HMM by one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmStep {
    /// New path score per emitting state (`log δ_t(j)`).
    pub scores: Vec<LogProb>,
    /// Back-pointer: for each destination state, the source state that won the
    /// max (needed by the software search for traceback).
    pub backpointers: Vec<usize>,
    /// Score of leaving the HMM this frame (best exit-state score + exit
    /// transition), used by the word-decode stage to start successor phones.
    pub exit_score: LogProb,
}

/// The Viterbi decoder unit simulator.
#[derive(Debug, Clone)]
pub struct ViterbiUnit {
    config: ViterbiUnitConfig,
    datapath: SoftFloat,
    stats: ViterbiUnitStats,
    gate: ClockGate,
}

impl ViterbiUnit {
    /// Builds a Viterbi unit.
    pub fn new(config: ViterbiUnitConfig) -> Self {
        ViterbiUnit {
            datapath: SoftFloat::with_width(config.datapath_width),
            config,
            stats: ViterbiUnitStats::default(),
            gate: ClockGate::new(),
        }
    }

    /// The unit configuration.
    pub fn config(&self) -> &ViterbiUnitConfig {
        &self.config
    }

    /// Activity statistics since the last reset.
    pub fn stats(&self) -> &ViterbiUnitStats {
        &self.stats
    }

    /// Clock-gating record.
    pub fn clock_gate(&self) -> &ClockGate {
        &self.gate
    }

    /// Records idle (clock-gated) cycles.
    pub fn idle(&mut self, cycles: CycleCount) {
        self.gate.record_gated(cycles);
    }

    /// Advances one HMM by one frame.
    ///
    /// * `prev_scores` — `log δ_{t−1}(i)` for each emitting state (use
    ///   [`LogProb::zero`] for states not yet reachable);
    /// * `entry_score` — score of entering state 0 from outside the HMM this
    ///   frame (the merged exit of the predecessor triphone), or
    ///   [`LogProb::zero`] if none;
    /// * `transitions` — the HMM's transition matrix;
    /// * `senone_scores` — `log b_j(O_t)` for each emitting state, as produced
    ///   by the OP unit.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::ShapeMismatch`] if the score vectors do not match
    /// the transition matrix's state count.
    pub fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStep, HwError> {
        let n = transitions.num_states();
        if prev_scores.len() != n || senone_scores.len() != n {
            return Err(HwError::ShapeMismatch(format!(
                "expected {n} states, got {} prev scores and {} senone scores",
                prev_scores.len(),
                senone_scores.len()
            )));
        }
        let mut cycles: CycleCount = 0;
        let mut scores = Vec::with_capacity(n);
        let mut backpointers = Vec::with_capacity(n);
        for (j, &obs_j) in senone_scores.iter().enumerate() {
            cycles += self.config.column_fill_cycles;
            // Max over incoming transitions (the streamed matrix column).
            let mut best = LogProb::zero();
            let mut best_src = j;
            for (i, a_ij) in transitions.column(j) {
                let candidate = self.add(prev_scores[i], a_ij);
                cycles += self.config.add_cycles;
                self.stats.adds += 1;
                if candidate.raw() > best.raw() {
                    best = candidate;
                    best_src = i;
                }
            }
            self.stats.compares += 1;
            cycles += self.config.compare_cycles;
            // A token entering the HMM this frame competes for state 0.
            if j == 0 && !entry_score.is_zero() && entry_score.raw() > best.raw() {
                best = entry_score;
                best_src = usize::MAX; // sentinel: came from outside
            }
            // Final add of the senone score b_j(O_t).
            let with_obs = self.add(best, obs_j);
            cycles += self.config.add_cycles;
            self.stats.adds += 1;
            scores.push(with_obs);
            backpointers.push(best_src);
        }
        // Exit score: best over states of score + exit transition.
        let mut exit = LogProb::zero();
        for (i, &score_i) in scores.iter().enumerate() {
            let e = self.add(score_i, transitions.log_exit_prob(i));
            cycles += self.config.add_cycles;
            self.stats.adds += 1;
            if e.raw() > exit.raw() {
                exit = e;
            }
        }
        self.stats.compares += 1;
        cycles += self.config.compare_cycles;

        self.stats.cycles += cycles;
        self.stats.hmm_updates += 1;
        self.gate.record_active(cycles);
        Ok(HmmStep {
            scores,
            backpointers,
            exit_score: exit,
        })
    }

    #[inline]
    fn add(&self, a: LogProb, b: LogProb) -> LogProb {
        if a.is_zero() || b.is_zero() {
            LogProb::zero()
        } else {
            LogProb::new(self.datapath.add(a.raw(), b.raw()))
        }
    }

    /// Resets statistics and clock-gating counters.
    pub fn reset_stats(&mut self) {
        self.stats = ViterbiUnitStats::default();
        self.gate.reset();
    }
}

impl Default for ViterbiUnit {
    fn default() -> Self {
        Self::new(ViterbiUnitConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_acoustic::HmmTopology;

    fn bakis3() -> TransitionMatrix {
        TransitionMatrix::bakis(HmmTopology::Three, 0.6).unwrap()
    }

    /// Reference software Viterbi step for comparison.
    fn reference_step(
        prev: &[LogProb],
        entry: LogProb,
        t: &TransitionMatrix,
        obs: &[LogProb],
    ) -> Vec<LogProb> {
        let n = t.num_states();
        (0..n)
            .map(|j| {
                let mut best = LogProb::zero();
                for (i, &prev_i) in prev.iter().enumerate() {
                    let c = prev_i + t.log_prob(i, j);
                    if c.raw() > best.raw() {
                        best = c;
                    }
                }
                if j == 0 && entry.raw() > best.raw() {
                    best = entry;
                }
                best + obs[j]
            })
            .collect()
    }

    #[test]
    fn matches_reference_recursion() {
        let t = bakis3();
        let mut unit = ViterbiUnit::default();
        let prev = vec![LogProb::new(-5.0), LogProb::new(-7.0), LogProb::new(-9.0)];
        let obs = vec![LogProb::new(-2.0), LogProb::new(-1.5), LogProb::new(-3.0)];
        let step = unit.step_hmm(&prev, LogProb::zero(), &t, &obs).unwrap();
        let reference = reference_step(&prev, LogProb::zero(), &t, &obs);
        for (hw, sw) in step.scores.iter().zip(&reference) {
            assert!(
                (hw.raw() - sw.raw()).abs() < 1e-4,
                "{} vs {}",
                hw.raw(),
                sw.raw()
            );
        }
        assert_eq!(step.scores.len(), 3);
        assert_eq!(step.backpointers.len(), 3);
    }

    #[test]
    fn backpointers_identify_the_max_source() {
        let t = bakis3();
        let mut unit = ViterbiUnit::default();
        // State 1 of the previous frame is far better than state 0, so the
        // winner into state 1 must be the self-loop (source 1), and into
        // state 2 the forward transition from 1.
        let prev = vec![LogProb::new(-50.0), LogProb::new(-1.0), LogProb::new(-40.0)];
        let obs = vec![LogProb::new(-1.0); 3];
        let step = unit.step_hmm(&prev, LogProb::zero(), &t, &obs).unwrap();
        assert_eq!(step.backpointers[1], 1);
        assert_eq!(step.backpointers[2], 1);
    }

    #[test]
    fn entry_token_wins_empty_hmm() {
        let t = bakis3();
        let mut unit = ViterbiUnit::default();
        let prev = vec![LogProb::zero(); 3];
        let obs = vec![LogProb::new(-1.0); 3];
        let entry = LogProb::new(-4.0);
        let step = unit.step_hmm(&prev, entry, &t, &obs).unwrap();
        // State 0 becomes entry + obs; other states stay unreachable.
        assert!((step.scores[0].raw() - (-5.0)).abs() < 1e-4);
        assert!(step.scores[1].is_zero());
        assert!(step.scores[2].is_zero());
        assert_eq!(step.backpointers[0], usize::MAX);
        assert!(step.exit_score.is_zero() || step.exit_score.raw() < step.scores[0].raw());
    }

    #[test]
    fn exit_score_comes_from_last_state() {
        let t = bakis3();
        let mut unit = ViterbiUnit::default();
        let prev = vec![LogProb::new(-2.0), LogProb::new(-2.0), LogProb::new(-2.0)];
        let obs = vec![LogProb::new(-1.0); 3];
        let step = unit.step_hmm(&prev, LogProb::zero(), &t, &obs).unwrap();
        // Only the last state has a non-zero exit transition in a Bakis model.
        let expected = step.scores[2] + t.log_exit_prob(2);
        assert!((step.exit_score.raw() - expected.raw()).abs() < 1e-4);
    }

    #[test]
    fn handles_all_supported_topologies() {
        let mut unit = ViterbiUnit::default();
        for topo in HmmTopology::ALL {
            let t = TransitionMatrix::bakis(topo, 0.5).unwrap();
            let n = topo.num_states();
            let prev = vec![LogProb::new(-3.0); n];
            let obs = vec![LogProb::new(-2.0); n];
            let step = unit.step_hmm(&prev, LogProb::zero(), &t, &obs).unwrap();
            assert_eq!(step.scores.len(), n);
            assert!(step.scores.iter().all(|s| s.raw().is_finite()));
        }
        assert_eq!(unit.stats().hmm_updates, 3);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let t = bakis3();
        let mut unit = ViterbiUnit::default();
        assert!(matches!(
            unit.step_hmm(&[LogProb::ONE; 2], LogProb::zero(), &t, &[LogProb::ONE; 3]),
            Err(HwError::ShapeMismatch(_))
        ));
        assert!(matches!(
            unit.step_hmm(&[LogProb::ONE; 3], LogProb::zero(), &t, &[LogProb::ONE; 5]),
            Err(HwError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn cycle_count_matches_analytic_model() {
        let t = bakis3();
        let cfg = ViterbiUnitConfig::default();
        let mut unit = ViterbiUnit::new(cfg);
        let prev = vec![LogProb::new(-1.0); 3];
        let obs = vec![LogProb::new(-1.0); 3];
        unit.step_hmm(&prev, LogProb::zero(), &t, &obs).unwrap();
        // Analytic model: 3 columns with ≤2 incoming transitions each + the
        // exit reduction (3 adds + compare). The operational count must be in
        // the same ballpark (within the variation from 1- vs 2-entry columns).
        let analytic = cfg.cycles_per_hmm(3, 2) + 3 * cfg.add_cycles + cfg.compare_cycles;
        let measured = unit.stats().cycles;
        assert!(
            measured <= analytic && measured >= analytic - 2 * cfg.add_cycles,
            "measured {measured}, analytic {analytic}"
        );
        assert!(unit.stats().adds > 0);
        assert!(unit.stats().compares > 0);
    }

    #[test]
    fn stats_and_gating() {
        let t = bakis3();
        let mut unit = ViterbiUnit::default();
        let prev = vec![LogProb::new(-1.0); 3];
        let obs = vec![LogProb::new(-1.0); 3];
        unit.step_hmm(&prev, LogProb::zero(), &t, &obs).unwrap();
        unit.idle(1_000);
        assert!(unit.clock_gate().activity_factor() < 0.2);
        assert!(unit.clock_gate().active_cycles() > 0);
        unit.reset_stats();
        assert_eq!(unit.stats(), &ViterbiUnitStats::default());
        assert_eq!(unit.clock_gate().total_cycles(), 0);
        assert_eq!(unit.config().compare_cycles, 2);
    }
}
