//! The assembled SoC: host processor + dedicated accelerator structures +
//! memory system.
//!
//! "Two such dedicated structures (observation probability unit and the
//! Viterbi decoder combined) can support real time speech recognition."
//! [`SpeechSoc`] instantiates `n` structures (default 2), distributes the
//! active-senone scoring and HMM updates across them, charges every streamed
//! parameter to the flash/DMA model, and produces per-frame and per-utterance
//! reports of cycles, real-time factor, bandwidth, power and energy — the raw
//! material for experiments E2, E5, E6 and E7.

use crate::clock::{ClockDomain, CycleCount};
use crate::memory::{DmaEngine, FlashMemory, WorkingRam};
use crate::opu::{ObservationProbabilityUnit, OpuConfig};
use crate::power::{EnergyReport, HostCpuModel, PowerModel};
use crate::viterbi_unit::{HmmStep, ViterbiUnit, ViterbiUnitConfig};
use crate::HwError;
use asr_acoustic::{AcousticModel, SenoneId, TransitionMatrix};
use asr_float::LogProb;

/// Configuration of the SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Number of accelerator structures (OP unit + Viterbi decoder pairs).
    pub num_structures: usize,
    /// OP-unit configuration shared by all structures.
    pub opu: OpuConfig,
    /// Viterbi-unit configuration shared by all structures.
    pub viterbi: ViterbiUnitConfig,
    /// Power/area model of one structure.
    pub power: PowerModel,
    /// Host CPU model for the software stages.
    pub host: HostCpuModel,
    /// Speech frame period in seconds (10 ms).
    pub frame_period_s: f64,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            num_structures: 2,
            opu: OpuConfig::default(),
            viterbi: ViterbiUnitConfig::default(),
            power: PowerModel::paper_calibrated(),
            host: HostCpuModel::arm9_embedded(),
            frame_period_s: 0.010,
        }
    }
}

impl SocConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] when there are no structures or the
    /// frame period is not positive.
    pub fn validate(&self) -> Result<(), HwError> {
        if self.num_structures == 0 {
            return Err(HwError::InvalidConfig("num_structures == 0".into()));
        }
        if self.frame_period_s <= 0.0 || self.frame_period_s.is_nan() {
            return Err(HwError::InvalidConfig(
                "frame_period_s must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The accelerator clock (taken from the power model).
    pub fn clock(&self) -> ClockDomain {
        self.power.clock
    }

    /// Cycle budget available per frame per structure.
    pub fn cycle_budget_per_frame(&self) -> CycleCount {
        self.clock().cycles_per_frame(self.frame_period_s)
    }

    /// Maximum senones the whole SoC can score per frame
    /// (capacity × number of structures).
    pub fn senone_capacity_per_frame(&self, dim: usize, components: usize) -> usize {
        self.num_structures
            * self
                .opu
                .senone_capacity(dim, components, self.cycle_budget_per_frame())
    }
}

#[derive(Debug, Clone)]
struct Structure {
    opu: ObservationProbabilityUnit,
    viterbi: ViterbiUnit,
    frame_start_opu_cycles: CycleCount,
    frame_start_viterbi_cycles: CycleCount,
}

/// Per-frame report of the accelerator's work.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameReport {
    /// Senones scored this frame.
    pub senones_scored: usize,
    /// HMM (triphone) updates this frame.
    pub hmm_updates: usize,
    /// Busiest structure's OP-unit cycles this frame.
    pub opu_cycles: CycleCount,
    /// Busiest structure's Viterbi-unit cycles this frame.
    pub viterbi_cycles: CycleCount,
    /// Host-CPU cycles spent on the software stages this frame.
    pub host_cycles: CycleCount,
    /// Bytes streamed from flash this frame.
    pub flash_bytes: u64,
    /// Real-time factor of the accelerator for this frame
    /// (busiest structure's cycles / cycle budget).
    pub accelerator_rtf: f64,
    /// Real-time factor of the host for this frame.
    pub host_rtf: f64,
    /// Whether the whole frame finished within its 10 ms budget.
    pub real_time: bool,
}

/// Whole-utterance aggregation of frame reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtteranceReport {
    /// Number of frames processed.
    pub frames: usize,
    /// Total senones scored.
    pub senones_scored: u64,
    /// Total HMM updates.
    pub hmm_updates: u64,
    /// Mean senones scored per frame.
    pub mean_senones_per_frame: f64,
    /// Worst per-frame accelerator real-time factor.
    pub worst_frame_rtf: f64,
    /// Mean accelerator real-time factor.
    pub mean_rtf: f64,
    /// Fraction of frames that met the real-time budget.
    pub real_time_fraction: f64,
    /// Peak per-frame flash bandwidth (GB/s).
    pub peak_bandwidth_gb_per_s: f64,
    /// Mean per-frame flash bandwidth (GB/s).
    pub mean_bandwidth_gb_per_s: f64,
    /// Energy/power summary.
    pub energy: EnergyReport,
    /// Scored-senone counts per parallel shard, in shard order — filled by
    /// [`UtteranceReport::merge_parallel`] when per-shard reports fold into
    /// one (a sharded scorer), empty for an unsharded machine.  The
    /// sequential [`UtteranceReport::merge`] adds the counts element-wise,
    /// so a batch through one sharded scorer accumulates per-shard totals.
    pub shard_senones: Vec<u64>,
    /// Host wall-clock streaming latency record, when the utterance was
    /// decoded through a streaming session (per-chunk latencies and the
    /// stream's real-time factor).  `None` for offline decodes; the SoC model
    /// itself never fills this — the streaming layer folds it in.
    pub streaming: Option<crate::latency::StreamTiming>,
}

impl UtteranceReport {
    /// The worst shard's share of the total scored senones, when this report
    /// was folded from parallel shards ([`UtteranceReport::merge_parallel`]):
    /// `1/N` is a perfectly balanced N-shard split, `1.0` means one shard
    /// scored everything.  `None` for unsharded reports or when nothing was
    /// scored.
    pub fn worst_shard_share(&self) -> Option<f64> {
        let total: u64 = self.shard_senones.iter().sum();
        if self.shard_senones.len() < 2 || total == 0 {
            return None;
        }
        let worst = *self.shard_senones.iter().max().expect("non-empty");
        Some(worst as f64 / total as f64)
    }

    /// This report as one self-describing telemetry fact (kind
    /// `"hw_report"`), ready for an [`asr_obs::ObsSink`] — the bridge from
    /// the cycle-accurate hardware model into the JSONL observability
    /// pipeline.  Flat scalar fields only; the per-shard senone vector is
    /// summarised by `shards` and [`worst_shard_share`], and the streaming
    /// latency record by chunk count and stream RTF.
    ///
    /// [`worst_shard_share`]: UtteranceReport::worst_shard_share
    pub fn snapshot_fact(&self) -> asr_obs::Fact {
        let mut fact = asr_obs::Fact::new("hw_report")
            .with("frames", self.frames as u64)
            .with("senones_scored", self.senones_scored)
            .with("hmm_updates", self.hmm_updates)
            .with("mean_senones_per_frame", self.mean_senones_per_frame)
            .with("worst_frame_rtf", self.worst_frame_rtf)
            .with("mean_rtf", self.mean_rtf)
            .with("real_time_fraction", self.real_time_fraction)
            .with("peak_bandwidth_gb_per_s", self.peak_bandwidth_gb_per_s)
            .with("accelerator_energy_j", self.energy.accelerator_energy_j)
            .with("host_energy_j", self.energy.host_energy_j)
            .with("audio_seconds", self.energy.audio_seconds)
            .with("average_power_w", self.energy.average_power_w())
            .with("shards", self.shard_senones.len() as u64);
        if let Some(share) = self.worst_shard_share() {
            fact = fact.with("worst_shard_share", share);
        }
        if let Some(timing) = &self.streaming {
            fact = fact
                .with("stream_chunks", timing.chunks() as u64)
                .with("stream_rtf", timing.real_time_factor());
        }
        fact
    }

    /// This report's per-shard senone counts as a parallel leaf: an already
    /// folded report contributes its shard vector, an unsharded report
    /// contributes itself as a single shard.
    fn shard_counts(&self) -> Vec<u64> {
        if self.shard_senones.is_empty() {
            vec![self.senones_scored]
        } else {
            self.shard_senones.clone()
        }
    }

    /// Folds another utterance's report into this one — the batch-level
    /// aggregation used when one SoC model serves a stream of utterances
    /// (`Recognizer::decode_batch`): counters add, means re-weight by frame
    /// (or audio-second) counts, and peak figures take the maximum.
    pub fn merge(&self, other: &UtteranceReport) -> UtteranceReport {
        if self.frames == 0 {
            return other.clone();
        }
        if other.frames == 0 {
            return self.clone();
        }
        let frames = self.frames + other.frames;
        let fa = self.frames as f64;
        let fb = other.frames as f64;
        let ft = frames as f64;
        let weighted = |a: f64, b: f64| (a * fa + b * fb) / ft;
        let audio = self.energy.audio_seconds + other.energy.audio_seconds;
        let by_audio = |a: f64, b: f64| {
            (a * self.energy.audio_seconds + b * other.energy.audio_seconds)
                / audio.max(f64::MIN_POSITIVE)
        };
        UtteranceReport {
            frames,
            senones_scored: self.senones_scored + other.senones_scored,
            hmm_updates: self.hmm_updates + other.hmm_updates,
            mean_senones_per_frame: weighted(
                self.mean_senones_per_frame,
                other.mean_senones_per_frame,
            ),
            worst_frame_rtf: self.worst_frame_rtf.max(other.worst_frame_rtf),
            mean_rtf: weighted(self.mean_rtf, other.mean_rtf),
            real_time_fraction: weighted(self.real_time_fraction, other.real_time_fraction),
            peak_bandwidth_gb_per_s: self
                .peak_bandwidth_gb_per_s
                .max(other.peak_bandwidth_gb_per_s),
            mean_bandwidth_gb_per_s: weighted(
                self.mean_bandwidth_gb_per_s,
                other.mean_bandwidth_gb_per_s,
            ),
            // The same machine served both utterances, so per-shard counts
            // accumulate position-wise.  If either side is sharded, both are
            // expanded through `shard_counts` (an unsharded report is one
            // shard) and zero-padded, so `sum(shard_senones)` stays equal to
            // `senones_scored` even across mixed merges; two unsharded
            // reports stay unsharded.
            shard_senones: if self.shard_senones.is_empty() && other.shard_senones.is_empty() {
                Vec::new()
            } else {
                let mut counts = self.shard_counts();
                let other_counts = other.shard_counts();
                if counts.len() < other_counts.len() {
                    counts.resize(other_counts.len(), 0);
                }
                for (acc, &c) in counts.iter_mut().zip(&other_counts) {
                    *acc += c;
                }
                counts
            },
            energy: EnergyReport {
                accelerator_energy_j: self.energy.accelerator_energy_j
                    + other.energy.accelerator_energy_j,
                host_energy_j: self.energy.host_energy_j + other.energy.host_energy_j,
                audio_seconds: audio,
                opu_activity: by_audio(self.energy.opu_activity, other.energy.opu_activity),
                viterbi_activity: by_audio(
                    self.energy.viterbi_activity,
                    other.energy.viterbi_activity,
                ),
            },
            streaming: crate::latency::StreamTiming::merge_options(
                &self.streaming,
                &other.streaming,
            ),
        }
    }

    /// Folds the report of a *parallel shard* into this one — the aggregation
    /// used when several SoC instances process the **same** frames
    /// concurrently, each scoring a slice of the active-senone set (a sharded
    /// scorer), as opposed to [`UtteranceReport::merge`], which concatenates
    /// reports of *different* utterances of a sequential stream.
    ///
    /// The combination models one scaled-out machine over one audio stream:
    /// work counters (senones, HMM updates) add; frame and audio-second
    /// counts take the maximum (the shards saw the same frames, so summing
    /// them would multiply the audio length by the shard count); per-frame
    /// real-time factors take the maximum because the slowest shard bounds
    /// the frame, and `real_time_fraction` the minimum for the same reason;
    /// flash bandwidth adds (each shard streams its own parameter slice
    /// concurrently); energies add, over the un-multiplied audio length.
    pub fn merge_parallel(&self, shard: &UtteranceReport) -> UtteranceReport {
        if self.frames == 0 {
            return shard.clone();
        }
        if shard.frames == 0 {
            return self.clone();
        }
        let frames = self.frames.max(shard.frames);
        // Activity factors are averaged weighted by accelerator energy, which
        // keeps a left fold over N shards associative: the accumulated
        // report's energy is exactly the weight its activity already carries.
        let e_self = self.energy.accelerator_energy_j;
        let e_shard = shard.energy.accelerator_energy_j;
        let by_energy =
            |a: f64, b: f64| (a * e_self + b * e_shard) / (e_self + e_shard).max(f64::MIN_POSITIVE);
        UtteranceReport {
            frames,
            senones_scored: self.senones_scored + shard.senones_scored,
            hmm_updates: self.hmm_updates + shard.hmm_updates,
            mean_senones_per_frame: (self.senones_scored + shard.senones_scored) as f64
                / frames as f64,
            worst_frame_rtf: self.worst_frame_rtf.max(shard.worst_frame_rtf),
            mean_rtf: self.mean_rtf.max(shard.mean_rtf),
            real_time_fraction: self.real_time_fraction.min(shard.real_time_fraction),
            peak_bandwidth_gb_per_s: self.peak_bandwidth_gb_per_s + shard.peak_bandwidth_gb_per_s,
            mean_bandwidth_gb_per_s: self.mean_bandwidth_gb_per_s + shard.mean_bandwidth_gb_per_s,
            // Concatenating in fold order keeps a left fold over N shards
            // producing one count per shard, in shard order.
            shard_senones: {
                let mut counts = self.shard_counts();
                counts.extend(shard.shard_counts());
                counts
            },
            energy: EnergyReport {
                accelerator_energy_j: self.energy.accelerator_energy_j
                    + shard.energy.accelerator_energy_j,
                host_energy_j: self.energy.host_energy_j + shard.energy.host_energy_j,
                audio_seconds: self.energy.audio_seconds.max(shard.energy.audio_seconds),
                opu_activity: by_energy(self.energy.opu_activity, shard.energy.opu_activity),
                viterbi_activity: by_energy(
                    self.energy.viterbi_activity,
                    shard.energy.viterbi_activity,
                ),
            },
            // Parallel shards saw the same chunks; keeping one record (the
            // stream layer stamps the merged report anyway) avoids counting
            // the same chunk N times.
            streaming: self.streaming.clone().or_else(|| shard.streaming.clone()),
        }
    }
}

/// The assembled low-power speech-recognition SoC.
#[derive(Debug, Clone)]
pub struct SpeechSoc {
    config: SocConfig,
    structures: Vec<Structure>,
    flash: FlashMemory,
    ram: WorkingRam,
    dma: DmaEngine,
    frames: Vec<FrameReport>,
    next_structure: usize,
    host_cycles_total: CycleCount,
}

impl SpeechSoc {
    /// Builds the SoC.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: SocConfig) -> Result<Self, HwError> {
        config.validate()?;
        let structures = (0..config.num_structures)
            .map(|_| Structure {
                opu: ObservationProbabilityUnit::new(config.opu.clone()),
                viterbi: ViterbiUnit::new(config.viterbi),
                frame_start_opu_cycles: 0,
                frame_start_viterbi_cycles: 0,
            })
            .collect();
        let flash = FlashMemory::new(config.opu.datapath_width);
        Ok(SpeechSoc {
            config,
            structures,
            flash,
            ram: WorkingRam::new(),
            dma: DmaEngine::new(),
            frames: Vec::new(),
            next_structure: 0,
            host_cycles_total: 0,
        })
    }

    /// The SoC configuration.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The flash memory model (for inspecting bandwidth counters).
    pub fn flash(&self) -> &FlashMemory {
        &self.flash
    }

    /// The working RAM model.
    pub fn ram(&self) -> &WorkingRam {
        &self.ram
    }

    /// The DMA engine model.
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    /// Completed per-frame reports.
    pub fn frame_reports(&self) -> &[FrameReport] {
        &self.frames
    }

    /// Starts a new 10 ms frame: loads the feature vector into every
    /// structure's OP unit and opens a new flash bandwidth window.
    pub fn begin_frame(&mut self, feature: &[f32]) {
        self.flash.begin_frame();
        for s in &mut self.structures {
            s.frame_start_opu_cycles = s.opu.stats().cycles;
            s.frame_start_viterbi_cycles = s.viterbi.stats().cycles;
            s.opu.load_feature_vector(feature);
        }
        // The frame's feature vector is staged in RAM for the software stages.
        self.ram.write((feature.len() * 4) as u64);
    }

    /// Scores the frame's active senones, distributing them round-robin over
    /// the available structures, and charges the streamed parameters to flash.
    ///
    /// # Errors
    ///
    /// Propagates OP-unit errors ([`HwError::NoFeatureLoaded`],
    /// [`HwError::UnknownId`], [`HwError::ShapeMismatch`]).
    pub fn score_senones(
        &mut self,
        model: &AcousticModel,
        ids: &[SenoneId],
    ) -> Result<Vec<(SenoneId, LogProb)>, HwError> {
        let mut results = Vec::with_capacity(ids.len());
        self.score_senones_into(model, ids, &mut results)?;
        Ok(results)
    }

    /// [`SpeechSoc::score_senones`] into a caller-supplied buffer (appended
    /// in `ids` order), so the decode hot path can reuse one allocation
    /// across frames.  On error the buffer may hold a partial prefix.
    ///
    /// # Errors
    ///
    /// Propagates OP-unit errors ([`HwError::NoFeatureLoaded`],
    /// [`HwError::UnknownId`], [`HwError::ShapeMismatch`]).
    pub fn score_senones_into(
        &mut self,
        model: &AcousticModel,
        ids: &[SenoneId],
        out: &mut Vec<(SenoneId, LogProb)>,
    ) -> Result<(), HwError> {
        let n = self.structures.len();
        out.reserve(ids.len());
        for (chunk_idx, chunk) in ids.chunks(ids.len().div_ceil(n).max(1)).enumerate() {
            let structure = &mut self.structures[chunk_idx % n];
            let before = structure.opu.stats().parameters_streamed;
            for &id in chunk {
                let score = structure.opu.score_senone(model, id)?;
                out.push((id, score));
            }
            let streamed = structure.opu.stats().parameters_streamed - before;
            self.flash.read_parameters(streamed as usize);
            // Senone scores are written to RAM for the Viterbi stage.
            self.ram.write(chunk.len() as u64 * 4);
        }
        Ok(())
    }

    /// Advances one triphone HMM by one frame on the next structure's Viterbi
    /// unit (round-robin load balancing).
    ///
    /// # Errors
    ///
    /// Propagates [`HwError::ShapeMismatch`] from the Viterbi unit.
    pub fn step_hmm(
        &mut self,
        prev_scores: &[LogProb],
        entry_score: LogProb,
        transitions: &TransitionMatrix,
        senone_scores: &[LogProb],
    ) -> Result<HmmStep, HwError> {
        let idx = self.next_structure;
        self.next_structure = (self.next_structure + 1) % self.structures.len();
        // Path scores are read from and written back to RAM each frame.
        self.ram.read(prev_scores.len() as u64 * 4);
        self.ram.write(senone_scores.len() as u64 * 4);
        self.structures[idx]
            .viterbi
            .step_hmm(prev_scores, entry_score, transitions, senone_scores)
    }

    /// Records a dictionary / language-model DMA transfer (word-decode stage).
    pub fn dma_fetch(&mut self, bytes: u64) {
        self.dma.transfer(bytes);
        self.flash.read_bytes(bytes);
    }

    /// Ends the frame, charging the host-CPU cost of the software stages and
    /// producing a [`FrameReport`].
    pub fn end_frame(&mut self, active_triphones: usize, lattice_edges: usize) -> FrameReport {
        let budget = self.config.cycle_budget_per_frame();
        let mut senones = 0u64;
        let mut hmms = 0u64;
        let mut worst_opu = 0u64;
        let mut worst_vit = 0u64;
        for s in &mut self.structures {
            let opu_cycles = s.opu.stats().cycles - s.frame_start_opu_cycles;
            let vit_cycles = s.viterbi.stats().cycles - s.frame_start_viterbi_cycles;
            worst_opu = worst_opu.max(opu_cycles);
            worst_vit = worst_vit.max(vit_cycles);
            // Idle for the rest of the frame: clock gated.
            let busy = opu_cycles + vit_cycles;
            if busy < budget {
                s.opu.idle(budget - busy);
                s.viterbi.idle(budget - busy);
            }
            senones += s.opu.stats().senones_evaluated;
            hmms += s.viterbi.stats().hmm_updates;
        }
        // Convert cumulative unit stats into per-frame counts using history.
        let prev_senones: u64 = self.frames.iter().map(|f| f.senones_scored as u64).sum();
        let prev_hmms: u64 = self.frames.iter().map(|f| f.hmm_updates as u64).sum();
        let frame_senones = senones - prev_senones;
        let frame_hmms = hmms - prev_hmms;

        let host_cycles = self
            .config
            .host
            .software_cycles_per_frame(active_triphones, lattice_edges);
        self.host_cycles_total += host_cycles;

        let accel_busy = worst_opu + worst_vit;
        let accelerator_rtf = accel_busy as f64 / budget as f64;
        let host_budget = self.config.host.clock.cycles_in(self.config.frame_period_s);
        let host_rtf = host_cycles as f64 / host_budget.max(1) as f64;

        let report = FrameReport {
            senones_scored: frame_senones as usize,
            hmm_updates: frame_hmms as usize,
            opu_cycles: worst_opu,
            viterbi_cycles: worst_vit,
            host_cycles,
            flash_bytes: self.flash.peak_frame_bytes(),
            accelerator_rtf,
            host_rtf,
            real_time: accelerator_rtf <= 1.0 && host_rtf <= 1.0,
        };
        self.frames.push(report);
        report
    }

    /// Finishes the utterance and produces the aggregated report.
    pub fn finish_utterance(&mut self) -> UtteranceReport {
        self.flash.end_utterance();
        let frames = self.frames.len();
        if frames == 0 {
            return UtteranceReport::default();
        }
        let audio_seconds = frames as f64 * self.config.frame_period_s;
        let mut opu_activity_sum = 0.0;
        let mut vit_activity_sum = 0.0;
        let mut accel_energy = 0.0;
        for s in &self.structures {
            let opu_act = s.opu.clock_gate().activity_factor();
            let vit_act = s.viterbi.clock_gate().activity_factor();
            opu_activity_sum += opu_act;
            vit_activity_sum += vit_act;
            let elapsed = self.config.clock().cycles_in(audio_seconds);
            accel_energy += self
                .config
                .power
                .structure_energy_j(elapsed, opu_act, vit_act);
        }
        let n = self.structures.len() as f64;
        let host_energy: f64 = self
            .frames
            .iter()
            .map(|f| {
                self.config
                    .host
                    .energy_per_frame_j(f.host_cycles, self.config.frame_period_s)
            })
            .sum();

        let worst_rtf = self
            .frames
            .iter()
            .map(|f| f.accelerator_rtf.max(f.host_rtf))
            .fold(0.0f64, f64::max);
        let mean_rtf = self
            .frames
            .iter()
            .map(|f| f.accelerator_rtf.max(f.host_rtf))
            .sum::<f64>()
            / frames as f64;
        let rt_frames = self.frames.iter().filter(|f| f.real_time).count();

        UtteranceReport {
            frames,
            senones_scored: self.frames.iter().map(|f| f.senones_scored as u64).sum(),
            hmm_updates: self.frames.iter().map(|f| f.hmm_updates as u64).sum(),
            mean_senones_per_frame: self
                .frames
                .iter()
                .map(|f| f.senones_scored as f64)
                .sum::<f64>()
                / frames as f64,
            worst_frame_rtf: worst_rtf,
            mean_rtf,
            real_time_fraction: rt_frames as f64 / frames as f64,
            peak_bandwidth_gb_per_s: self
                .flash
                .peak_bandwidth_gb_per_s(self.config.frame_period_s),
            mean_bandwidth_gb_per_s: self.flash.mean_frame_bytes()
                / self.config.frame_period_s
                / 1.0e9,
            shard_senones: Vec::new(),
            energy: EnergyReport {
                accelerator_energy_j: accel_energy,
                host_energy_j: host_energy,
                audio_seconds,
                opu_activity: opu_activity_sum / n,
                viterbi_activity: vit_activity_sum / n,
            },
            streaming: None,
        }
    }

    /// Resets all counters for a fresh utterance (keeps the configuration).
    pub fn reset(&mut self) {
        for s in &mut self.structures {
            s.opu.reset_stats();
            s.viterbi.reset_stats();
            s.frame_start_opu_cycles = 0;
            s.frame_start_viterbi_cycles = 0;
        }
        self.flash.reset();
        self.ram.reset();
        self.dma.reset();
        self.frames.clear();
        self.next_structure = 0;
        self.host_cycles_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_acoustic::{AcousticModelConfig, HmmTopology};

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    fn soc(n: usize) -> SpeechSoc {
        SpeechSoc::new(SocConfig {
            num_structures: n,
            ..SocConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation_and_budget() {
        assert!(SocConfig {
            num_structures: 0,
            ..SocConfig::default()
        }
        .validate()
        .is_err());
        assert!(SocConfig {
            frame_period_s: 0.0,
            ..SocConfig::default()
        }
        .validate()
        .is_err());
        let cfg = SocConfig::default();
        assert_eq!(cfg.cycle_budget_per_frame(), 500_000);
        // Paper geometry: two structures score 2000–3000 senones per frame.
        let cap = cfg.senone_capacity_per_frame(39, 8);
        assert!(cap > 2000 && cap < 3000, "{cap}");
        assert!(SpeechSoc::new(SocConfig {
            num_structures: 0,
            ..SocConfig::default()
        })
        .is_err());
    }

    #[test]
    fn frame_flow_produces_consistent_report() {
        let m = model();
        let mut soc = soc(2);
        let x = vec![0.1f32; m.feature_dim()];
        soc.begin_frame(&x);
        let ids: Vec<SenoneId> = (0..10).map(SenoneId).collect();
        let scores = soc.score_senones(&m, &ids).unwrap();
        assert_eq!(scores.len(), 10);
        // Drive a few HMM updates.
        let t = m.transitions();
        let prev = vec![LogProb::new(-3.0); t.num_states()];
        let obs = vec![LogProb::new(-2.0); t.num_states()];
        for _ in 0..4 {
            soc.step_hmm(&prev, LogProb::zero(), t, &obs).unwrap();
        }
        soc.dma_fetch(256);
        let report = soc.end_frame(4, 2);
        assert_eq!(report.senones_scored, 10);
        assert_eq!(report.hmm_updates, 4);
        assert!(report.opu_cycles > 0);
        assert!(report.viterbi_cycles > 0);
        assert!(report.flash_bytes > 0);
        assert!(report.real_time, "tiny frame must be real-time: {report:?}");
        assert!(report.accelerator_rtf < 0.1);
        assert_eq!(soc.frame_reports().len(), 1);
        assert_eq!(soc.dma().transfers(), 1);
        assert!(soc.ram().stats().bytes_written > 0);
    }

    #[test]
    fn snapshot_fact_round_trips_through_jsonl() {
        let report = UtteranceReport {
            frames: 7,
            senones_scored: 140,
            hmm_updates: 21,
            mean_senones_per_frame: 20.0,
            worst_frame_rtf: 0.25,
            mean_rtf: 0.1,
            real_time_fraction: 1.0,
            shard_senones: vec![90, 50],
            ..UtteranceReport::default()
        };
        let fact = report.snapshot_fact();
        assert_eq!(fact.kind, "hw_report");
        let parsed = asr_obs::Fact::parse_json(&fact.to_json()).unwrap();
        assert_eq!(parsed.field("frames").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(parsed.field("shards").and_then(|v| v.as_u64()), Some(2));
        let share = match parsed.field("worst_shard_share") {
            Some(asr_obs::FieldValue::F64(v)) => *v,
            other => panic!("expected f64 share, got {other:?}"),
        };
        assert!((share - 90.0 / 140.0).abs() < 1e-12);
        // An unsharded offline report omits the optional fields.
        let plain = UtteranceReport::default().snapshot_fact();
        assert!(plain.field("worst_shard_share").is_none());
        assert!(plain.field("stream_chunks").is_none());
    }

    #[test]
    fn scores_match_single_unit_reference() {
        // Splitting work across 2 structures must not change the scores.
        let m = model();
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.2 * d as f32).collect();
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();

        let mut soc1 = soc(1);
        soc1.begin_frame(&x);
        let a = soc1.score_senones(&m, &ids).unwrap();

        let mut soc2 = soc(2);
        soc2.begin_frame(&x);
        let b = soc2.score_senones(&m, &ids).unwrap();

        let mut a_sorted = a.clone();
        a_sorted.sort_by_key(|(id, _)| *id);
        let mut b_sorted = b.clone();
        b_sorted.sort_by_key(|(id, _)| *id);
        for ((ia, sa), (ib, sb)) in a_sorted.iter().zip(&b_sorted) {
            assert_eq!(ia, ib);
            assert_eq!(sa.raw(), sb.raw());
        }
    }

    #[test]
    fn two_structures_halve_per_structure_load() {
        let m = model();
        let x = vec![0.0f32; m.feature_dim()];
        let ids: Vec<SenoneId> = (0..20).map(SenoneId).collect();

        let mut one = soc(1);
        one.begin_frame(&x);
        one.score_senones(&m, &ids).unwrap();
        let r1 = one.end_frame(0, 0);

        let mut two = soc(2);
        two.begin_frame(&x);
        two.score_senones(&m, &ids).unwrap();
        let r2 = two.end_frame(0, 0);

        // The busiest structure in the 2-structure SoC does about half the
        // OPU cycles of the single structure (feature-load overhead aside).
        assert!(r2.opu_cycles < r1.opu_cycles);
        assert!((r2.opu_cycles as f64) > 0.4 * r1.opu_cycles as f64);
        assert!(r2.accelerator_rtf < r1.accelerator_rtf);
    }

    #[test]
    fn utterance_report_aggregates_energy_and_bandwidth() {
        let m = model();
        let mut soc = soc(2);
        let frames = 20;
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();
        for f in 0..frames {
            let x: Vec<f32> = (0..m.feature_dim())
                .map(|d| 0.01 * (f * d) as f32)
                .collect();
            soc.begin_frame(&x);
            soc.score_senones(&m, &ids).unwrap();
            let t = m.transitions();
            let prev = vec![LogProb::new(-2.0); t.num_states()];
            let obs = vec![LogProb::new(-1.0); t.num_states()];
            soc.step_hmm(&prev, LogProb::zero(), t, &obs).unwrap();
            soc.end_frame(2, 1);
        }
        let report = soc.finish_utterance();
        assert_eq!(report.frames, frames);
        assert_eq!(report.senones_scored, (frames * ids.len()) as u64);
        assert_eq!(report.hmm_updates, frames as u64);
        assert!(report.mean_senones_per_frame > 0.0);
        assert!(report.real_time_fraction > 0.99);
        assert!(report.worst_frame_rtf < 1.0);
        assert!(report.mean_rtf <= report.worst_frame_rtf);
        assert!(report.peak_bandwidth_gb_per_s > 0.0);
        assert!(report.mean_bandwidth_gb_per_s <= report.peak_bandwidth_gb_per_s + 1e-12);
        // Power: a lightly loaded SoC must be far below the 2×200 mW ceiling,
        // but above leakage.
        let avg_power = report.energy.average_power_w();
        assert!(avg_power < 0.4, "{avg_power}");
        assert!(avg_power > 2.0 * soc.config().power.leakage_w * 0.9);
        // Energy is positive and dominated by the accelerator or host, not NaN.
        assert!(report.energy.total_energy_j() > 0.0);

        soc.reset();
        assert!(soc.frame_reports().is_empty());
        assert_eq!(soc.finish_utterance(), UtteranceReport::default());
    }

    #[test]
    fn utterance_reports_merge_for_batches() {
        let m = model();
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();
        let decode = |frames: usize| -> UtteranceReport {
            let mut soc = soc(2);
            for f in 0..frames {
                let x: Vec<f32> = (0..m.feature_dim())
                    .map(|d| 0.02 * (f + d) as f32)
                    .collect();
                soc.begin_frame(&x);
                soc.score_senones(&m, &ids).unwrap();
                soc.end_frame(1, 0);
            }
            soc.finish_utterance()
        };
        let a = decode(10);
        let b = decode(30);
        let merged = a.merge(&b);
        assert_eq!(merged.frames, 40);
        assert_eq!(merged.senones_scored, a.senones_scored + b.senones_scored);
        assert_eq!(merged.hmm_updates, a.hmm_updates + b.hmm_updates);
        // Weighted mean lands between the parts and reproduces the total.
        let total_senones = merged.mean_senones_per_frame * merged.frames as f64;
        assert!((total_senones - merged.senones_scored as f64).abs() < 1e-6);
        assert!(merged.worst_frame_rtf >= a.worst_frame_rtf.max(b.worst_frame_rtf) - 1e-12);
        assert!(
            (merged.energy.audio_seconds - (a.energy.audio_seconds + b.energy.audio_seconds)).abs()
                < 1e-12
        );
        assert!(
            (merged.energy.total_energy_j()
                - (a.energy.total_energy_j() + b.energy.total_energy_j()))
            .abs()
                < 1e-12
        );
        // Merging with an empty report is the identity.
        let empty = UtteranceReport::default();
        assert_eq!(empty.merge(&a), a);
        assert_eq!(a.merge(&empty), a);
    }

    #[test]
    fn parallel_merge_models_shards_over_the_same_audio() {
        let m = model();
        let all: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();
        // Two shards decode the *same* 10 frames, each scoring half the
        // active set — the sharded-scorer situation.
        let shard_report = |ids: &[SenoneId]| -> UtteranceReport {
            let mut soc = soc(1);
            for f in 0..10 {
                let x: Vec<f32> = (0..m.feature_dim())
                    .map(|d| 0.02 * (f + d) as f32)
                    .collect();
                soc.begin_frame(&x);
                soc.score_senones(&m, ids).unwrap();
                soc.end_frame(1, 0);
            }
            soc.finish_utterance()
        };
        let (left, right) = all.split_at(all.len() / 2);
        let a = shard_report(left);
        let b = shard_report(right);
        let merged = a.merge_parallel(&b);
        // Same audio: frames and audio seconds do NOT multiply by the shard
        // count (the sequential `merge` would report 20 frames here).
        assert_eq!(merged.frames, 10);
        assert!(
            (merged.energy.audio_seconds - a.energy.audio_seconds).abs() < 1e-12,
            "parallel shards must not stretch the audio"
        );
        // Work and energy add; the slowest shard bounds the real-time factor.
        assert_eq!(merged.senones_scored, a.senones_scored + b.senones_scored);
        assert!((merged.worst_frame_rtf - a.worst_frame_rtf.max(b.worst_frame_rtf)).abs() < 1e-12);
        assert!(
            (merged.energy.accelerator_energy_j
                - (a.energy.accelerator_energy_j + b.energy.accelerator_energy_j))
                .abs()
                < 1e-12
        );
        assert!(
            (merged.mean_senones_per_frame * merged.frames as f64 - merged.senones_scored as f64)
                .abs()
                < 1e-6
        );
        // The fold records each shard's senone count, in order, and the
        // worst-shard share reads off the balance.
        assert_eq!(
            merged.shard_senones,
            vec![a.senones_scored, b.senones_scored]
        );
        let share = merged.worst_shard_share().expect("two shards have a share");
        assert!(
            (share - a.senones_scored.max(b.senones_scored) as f64 / merged.senones_scored as f64)
                .abs()
                < 1e-12
        );
        assert!(a.worst_shard_share().is_none(), "leaves are unsharded");
        // A sequential merge of two sharded utterances accumulates the
        // per-shard counts instead of concatenating them.
        let batch = merged.merge(&merged);
        assert_eq!(
            batch.shard_senones,
            vec![2 * a.senones_scored, 2 * b.senones_scored]
        );
        // A mixed merge (sharded machine + unsharded machine) folds the
        // unsharded side in as one shard, keeping the balance total honest.
        let mixed = merged.merge(&a);
        assert_eq!(
            mixed.shard_senones.iter().sum::<u64>(),
            mixed.senones_scored,
            "sum(shard_senones) must stay equal to senones_scored"
        );
        assert_eq!(
            mixed.shard_senones,
            vec![2 * a.senones_scored, b.senones_scored]
        );
        // Two unsharded reports merge without inventing a shard vector.
        assert!(a.merge(&b).shard_senones.is_empty());
        // Concurrent flash streams add up.
        assert!(merged.peak_bandwidth_gb_per_s >= a.peak_bandwidth_gb_per_s);
        // Activity stays a valid factor and the fold is associative.
        assert!(merged.energy.opu_activity > 0.0 && merged.energy.opu_activity <= 1.0);
        let c = shard_report(&all[..3]);
        let left_fold = a.merge_parallel(&b).merge_parallel(&c);
        let right_fold = a.merge_parallel(&b.merge_parallel(&c));
        assert!((left_fold.energy.opu_activity - right_fold.energy.opu_activity).abs() < 1e-9);
        // Identity on empty reports, in both positions.
        let empty = UtteranceReport::default();
        assert_eq!(empty.merge_parallel(&a), a);
        assert_eq!(a.merge_parallel(&empty), a);
    }

    #[test]
    fn hmm_updates_work_for_all_topologies() {
        let mut soc = soc(2);
        for topo in HmmTopology::ALL {
            let t = TransitionMatrix::bakis(topo, 0.5).unwrap();
            let n = topo.num_states();
            let step = soc
                .step_hmm(
                    &vec![LogProb::new(-1.0); n],
                    LogProb::zero(),
                    &t,
                    &vec![LogProb::new(-1.0); n],
                )
                .unwrap();
            assert_eq!(step.scores.len(), n);
        }
    }
}
