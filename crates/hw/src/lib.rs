//! # asr-hw — cycle-accurate models of the dedicated hardware units
//!
//! The paper's architecture pairs a low-power embedded host processor with
//! dedicated 50 MHz ASIC datapaths for the two expensive kernels of HMM
//! decoding:
//!
//! * the **Observation Probability (OP) unit** (Figure 2) — a pipelined
//!   `(X−Y)²·Z` datapath, an accumulator closing the inner loop of
//!   equation (6), a fused multiply-add for scale-and-weight adjustment and a
//!   `logadd` stage backed by a 512-byte SRAM lookup table, producing one
//!   senone score per mixture evaluation;
//! * the **Viterbi decoder unit** (Figure 3) — pipelined 32-bit adders and a
//!   2-cycle comparator that solve the log-domain Viterbi recursion for 3, 5
//!   or 7-state HMMs.
//!
//! Since the original units exist only as Verilog synthesised with a 0.18 µm
//! library, this crate reproduces them as *cycle-accurate simulators*:
//! identical arithmetic (via [`asr_float::SoftFloat`] and
//! [`asr_float::LogAddTable`]), explicit cycle counting per pipeline stage,
//! activity tracking for clock gating, a flash/DMA memory system with
//! bandwidth counters, and a power/area model calibrated to the paper's
//! synthesis results (200 mW and 2.2 mm² per structure at 50 MHz;
//! two structures → 400 mW, 4.4 mm²).
//!
//! # Example
//!
//! ```
//! use asr_hw::{ObservationProbabilityUnit, OpuConfig};
//! use asr_acoustic::{AcousticModel, AcousticModelConfig, SenoneId};
//!
//! let model = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
//! let mut opu = ObservationProbabilityUnit::new(OpuConfig::default());
//! let x = vec![0.1_f32; model.feature_dim()];
//! opu.load_feature_vector(&x);
//! let score = opu.score_senone(&model, SenoneId(0)).unwrap();
//! assert!(score.raw().is_finite());
//! assert!(opu.stats().cycles > 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod clock;
pub mod latency;
pub mod memory;
pub mod opu;
pub mod power;
pub mod soc;
pub mod viterbi_unit;

pub use clock::{ClockDomain, CycleCount};
pub use latency::StreamTiming;
pub use memory::{DmaEngine, FlashMemory, MemoryStats, WorkingRam};
pub use opu::{ObservationProbabilityUnit, OpuConfig, OpuStats};
pub use power::{AreaBudget, EnergyReport, HostCpuModel, PowerModel};
pub use soc::{FrameReport, SocConfig, SpeechSoc, UtteranceReport};
pub use viterbi_unit::{ViterbiUnit, ViterbiUnitConfig, ViterbiUnitStats};

/// Errors produced by the hardware simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// The OP unit was asked to score before a feature vector was loaded.
    NoFeatureLoaded,
    /// A senone or triphone id was out of range for the supplied model.
    UnknownId(String),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// The Viterbi unit was driven with inconsistent state counts.
    ShapeMismatch(String),
}

impl core::fmt::Display for HwError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HwError::NoFeatureLoaded => write!(f, "no feature vector loaded into the OP unit"),
            HwError::UnknownId(msg) => write!(f, "unknown identifier: {msg}"),
            HwError::InvalidConfig(msg) => write!(f, "invalid hardware config: {msg}"),
            HwError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!HwError::NoFeatureLoaded.to_string().is_empty());
        assert!(HwError::UnknownId("senone#7".into())
            .to_string()
            .contains("senone#7"));
        assert!(HwError::InvalidConfig("x".into()).to_string().contains("x"));
        assert!(HwError::ShapeMismatch("y".into()).to_string().contains("y"));
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ObservationProbabilityUnit>();
        assert_send_sync::<ViterbiUnit>();
        assert_send_sync::<SpeechSoc>();
        assert_send_sync::<PowerModel>();
        assert_send_sync::<FlashMemory>();
    }
}
