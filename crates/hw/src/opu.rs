//! Cycle-accurate model of the Observation Probability (OP) unit (Figure 2).
//!
//! Datapath, as described in Section III-B of the paper:
//!
//! 1. the input feature vector is stored in an internal buffer;
//! 2. Gaussian parameters (mean `µ_ji`, precision `δ_ji`, constant `C_jk`)
//!    are streamed into the Gaussian-parameter buffer from flash;
//! 3. an `(X−Y)²·Z` floating-point unit followed by an adder closes the inner
//!    loop of equation (6), one feature dimension per pipeline beat;
//! 4. a fused multiply-add performs the scale-and-weight adjustment (SWA);
//! 5. the `logadd` unit folds mixture components together using the identity
//!    `log(A+B) = log(A) + log(1 + B/A)` and a 512-byte SRAM lookup table.
//!
//! The model computes exactly what that datapath computes (section by section
//! through [`asr_float::SoftFloat`] and [`asr_float::LogAddTable`]) and counts
//! cycles per pipeline stage so the SoC model can answer the paper's
//! real-time and power questions.

use crate::clock::{ClockGate, CycleCount};
use crate::HwError;
use asr_acoustic::{AcousticModel, SenoneId};
use asr_float::{LogAddTable, LogAddTableConfig, LogProb, MantissaWidth, SoftFloat};

/// Configuration of the OP unit datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct OpuConfig {
    /// Mantissa width of the floating-point datapath (the paper's sweep:
    /// 23, 15 or 12 bits).
    pub datapath_width: MantissaWidth,
    /// Log-add SRAM table configuration (512 bytes in the paper).
    pub logadd_table: LogAddTableConfig,
    /// Pipeline fill latency in cycles before the first result of a senone
    /// emerges (depth of the (X−Y)²·Z + adder pipeline).
    pub pipeline_fill_cycles: CycleCount,
    /// Cycles per feature dimension once the pipeline is full (1 = fully
    /// pipelined).
    pub cycles_per_dimension: CycleCount,
    /// Cycles for the scale-and-weight fused multiply-add at the end of each
    /// Gaussian.
    pub swa_cycles: CycleCount,
    /// Cycles for one log-add (SRAM lookup + add).
    pub logadd_cycles: CycleCount,
    /// Cycles to latch one feature-vector element into the input buffer.
    pub feature_load_cycles_per_dim: CycleCount,
}

impl Default for OpuConfig {
    fn default() -> Self {
        OpuConfig {
            datapath_width: MantissaWidth::FULL,
            logadd_table: LogAddTableConfig::PAPER,
            pipeline_fill_cycles: 6,
            cycles_per_dimension: 1,
            swa_cycles: 2,
            logadd_cycles: 2,
            feature_load_cycles_per_dim: 1,
        }
    }
}

impl OpuConfig {
    /// A config with a reduced-mantissa datapath, everything else default.
    pub fn with_width(width: MantissaWidth) -> Self {
        OpuConfig {
            datapath_width: width,
            ..OpuConfig::default()
        }
    }

    /// Cycles needed to score one senone with `components` mixture components
    /// over `dim` feature dimensions (analytic form of the cycle model, used
    /// by capacity planning; the simulator counts the same quantity
    /// operationally).
    pub fn cycles_per_senone(&self, dim: usize, components: usize) -> CycleCount {
        let per_gaussian =
            self.pipeline_fill_cycles + self.cycles_per_dimension * dim as u64 + self.swa_cycles;
        components as u64 * per_gaussian + components as u64 * self.logadd_cycles
    }

    /// Maximum senones one OP unit can score within a cycle budget
    /// (e.g. the 500 000 cycles of a 10 ms frame at 50 MHz).
    pub fn senone_capacity(&self, dim: usize, components: usize, budget: CycleCount) -> usize {
        let per_senone = self.cycles_per_senone(dim, components).max(1);
        (budget / per_senone) as usize
    }
}

/// Activity statistics of the OP unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpuStats {
    /// Total busy cycles.
    pub cycles: CycleCount,
    /// Senones scored.
    pub senones_evaluated: u64,
    /// Individual Gaussians evaluated.
    pub gaussians_evaluated: u64,
    /// Log-add operations performed.
    pub logadds: u64,
    /// Gaussian parameters streamed from flash (values, not bytes).
    pub parameters_streamed: u64,
    /// Feature values loaded into the input buffer.
    pub feature_loads: u64,
}

/// The Observation Probability unit simulator.
#[derive(Debug, Clone)]
pub struct ObservationProbabilityUnit {
    config: OpuConfig,
    datapath: SoftFloat,
    logadd: LogAddTable,
    feature: Option<Vec<f32>>,
    stats: OpuStats,
    gate: ClockGate,
}

impl ObservationProbabilityUnit {
    /// Builds an OP unit from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the log-add table configuration is invalid (the default and
    /// paper configurations are always valid).
    pub fn new(config: OpuConfig) -> Self {
        let logadd = LogAddTable::with_config(config.logadd_table)
            .expect("log-add table configuration must be valid");
        ObservationProbabilityUnit {
            datapath: SoftFloat::with_width(config.datapath_width),
            logadd,
            config,
            feature: None,
            stats: OpuStats::default(),
            gate: ClockGate::new(),
        }
    }

    /// The unit configuration.
    pub fn config(&self) -> &OpuConfig {
        &self.config
    }

    /// Activity statistics since the last reset.
    pub fn stats(&self) -> &OpuStats {
        &self.stats
    }

    /// Clock-gating record (active vs gated cycles).
    pub fn clock_gate(&self) -> &ClockGate {
        &self.gate
    }

    /// Loads the frame's feature vector into the internal buffer
    /// ("the input feature vector is first stored in the internal buffer").
    pub fn load_feature_vector(&mut self, x: &[f32]) {
        let cycles = self.config.feature_load_cycles_per_dim * x.len() as u64;
        self.stats.cycles += cycles;
        self.stats.feature_loads += x.len() as u64;
        self.gate.record_active(cycles);
        self.feature = Some(x.to_vec());
    }

    /// Records idle time (no senones to score) during which the unit's clock
    /// is gated.
    pub fn idle(&mut self, cycles: CycleCount) {
        self.gate.record_gated(cycles);
    }

    /// Scores one senone of `model` against the loaded feature vector,
    /// returning the log observation probability (the "senone score").
    ///
    /// # Errors
    ///
    /// * [`HwError::NoFeatureLoaded`] if no feature vector has been loaded;
    /// * [`HwError::UnknownId`] if the senone id is out of range;
    /// * [`HwError::ShapeMismatch`] if the loaded vector's dimension differs
    ///   from the model's.
    pub fn score_senone(
        &mut self,
        model: &AcousticModel,
        id: SenoneId,
    ) -> Result<LogProb, HwError> {
        let x = self.feature.clone().ok_or(HwError::NoFeatureLoaded)?;
        if x.len() != model.feature_dim() {
            return Err(HwError::ShapeMismatch(format!(
                "feature dim {} vs model dim {}",
                x.len(),
                model.feature_dim()
            )));
        }
        let senone = model
            .senones()
            .get(id)
            .ok_or_else(|| HwError::UnknownId(format!("{id}")))?;
        let mix = senone.mixture();

        let mut cycles: CycleCount = 0;
        let mut score = LogProb::zero();
        for (k, gaussian) in mix.components().iter().enumerate() {
            // Stream µ, δ and C for this component from flash.
            self.stats.parameters_streamed += (2 * gaussian.dim() + 1) as u64;
            // Inner loop of equation (6): C_jk + Σ_i (o_i − µ_i)²·δ_i,
            // computed on the reduced-width datapath exactly as the pipeline
            // would.
            let constant = mix.log_weight_consts()[k];
            let exponent = self.datapath.gaussian_exponent(
                &x,
                gaussian.mean(),
                gaussian.precision(),
                constant,
            );
            cycles += self.config.pipeline_fill_cycles
                + self.config.cycles_per_dimension * gaussian.dim() as u64
                + self.config.swa_cycles;
            self.stats.gaussians_evaluated += 1;
            // logadd stage folds this component into the running mixture sum.
            score = self.logadd.log_add(score, LogProb::new(exponent));
            cycles += self.config.logadd_cycles;
            self.stats.logadds += 1;
        }
        self.stats.cycles += cycles;
        self.stats.senones_evaluated += 1;
        self.gate.record_active(cycles);
        Ok(score)
    }

    /// Scores a whole active set of senones for the current frame, returning
    /// `(id, score)` pairs.  Unknown ids produce an error, matching the
    /// contract of the phone-decode stage which only requests valid senones.
    ///
    /// # Errors
    ///
    /// Same as [`ObservationProbabilityUnit::score_senone`].
    pub fn score_active_set(
        &mut self,
        model: &AcousticModel,
        ids: &[SenoneId],
    ) -> Result<Vec<(SenoneId, LogProb)>, HwError> {
        ids.iter()
            .map(|&id| self.score_senone(model, id).map(|s| (id, s)))
            .collect()
    }

    /// Resets statistics and clock-gating counters (keeps the loaded feature).
    pub fn reset_stats(&mut self) {
        self.stats = OpuStats::default();
        self.gate.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_acoustic::AcousticModelConfig;

    fn model() -> AcousticModel {
        AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap()
    }

    #[test]
    fn requires_feature_vector() {
        let m = model();
        let mut opu = ObservationProbabilityUnit::new(OpuConfig::default());
        assert_eq!(
            opu.score_senone(&m, SenoneId(0)).unwrap_err(),
            HwError::NoFeatureLoaded
        );
    }

    #[test]
    fn rejects_bad_ids_and_shapes() {
        let m = model();
        let mut opu = ObservationProbabilityUnit::new(OpuConfig::default());
        opu.load_feature_vector(&vec![0.0; m.feature_dim()]);
        assert!(matches!(
            opu.score_senone(&m, SenoneId(9_999)),
            Err(HwError::UnknownId(_))
        ));
        opu.load_feature_vector(&[0.0; 3]);
        assert!(matches!(
            opu.score_senone(&m, SenoneId(0)),
            Err(HwError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn matches_reference_scoring_closely() {
        // The hardware's answer (table log-add, full-width datapath) must track
        // the exact software reference within the table's error bound.
        let m = model();
        let mut opu = ObservationProbabilityUnit::new(OpuConfig::default());
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.3 * d as f32 - 0.7).collect();
        opu.load_feature_vector(&x);
        for i in 0..m.senones().len() {
            let id = SenoneId(i as u32);
            let hw = opu.score_senone(&m, id).unwrap();
            let sw = m.score_senone(id, &x).unwrap();
            assert!(
                (hw.raw() - sw.raw()).abs() < 0.1,
                "senone {i}: hw {} vs sw {}",
                hw.raw(),
                sw.raw()
            );
        }
    }

    #[test]
    fn reduced_width_still_tracks_reference() {
        let m = model();
        let mut opu =
            ObservationProbabilityUnit::new(OpuConfig::with_width(MantissaWidth::BITS_12));
        let x: Vec<f32> = (0..m.feature_dim()).map(|d| 0.1 * d as f32).collect();
        opu.load_feature_vector(&x);
        let hw = opu.score_senone(&m, SenoneId(3)).unwrap();
        let sw = m.score_senone(SenoneId(3), &x).unwrap();
        assert!((hw.raw() - sw.raw()).abs() < 0.5);
        assert_eq!(opu.config().datapath_width, MantissaWidth::BITS_12);
    }

    #[test]
    fn cycle_counts_match_analytic_model() {
        let m = model();
        let cfg = OpuConfig::default();
        let mut opu = ObservationProbabilityUnit::new(cfg.clone());
        let x = vec![0.0f32; m.feature_dim()];
        opu.load_feature_vector(&x);
        let before = opu.stats().cycles;
        opu.score_senone(&m, SenoneId(0)).unwrap();
        let per_senone = opu.stats().cycles - before;
        let dim = m.feature_dim();
        let comps = m.config().num_components;
        assert_eq!(per_senone, cfg.cycles_per_senone(dim, comps));
    }

    #[test]
    fn paper_capacity_is_under_half_the_senones_per_structure() {
        // With the paper's geometry (39 dims, 8 components) one OP unit at
        // 50 MHz can score ~1400 senones in a 10 ms frame, so two structures
        // cover just under half of the 6000-senone inventory — exactly the
        // claim that active senones must stay below 50 % for real time.
        let cfg = OpuConfig::default();
        let per_senone = cfg.cycles_per_senone(39, 8);
        assert!(per_senone > 300 && per_senone < 450, "{per_senone}");
        let capacity = cfg.senone_capacity(39, 8, 500_000);
        assert!(capacity > 1000 && capacity < 2000, "{capacity}");
        let two_units = 2 * capacity;
        assert!(two_units < 3000, "two structures stay under 50% of 6000");
        assert!(two_units > 2000);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let m = model();
        let mut opu = ObservationProbabilityUnit::new(OpuConfig::default());
        let x = vec![0.0f32; m.feature_dim()];
        opu.load_feature_vector(&x);
        let ids: Vec<SenoneId> = (0..4).map(SenoneId).collect();
        let scores = opu.score_active_set(&m, &ids).unwrap();
        assert_eq!(scores.len(), 4);
        let s = opu.stats();
        assert_eq!(s.senones_evaluated, 4);
        assert_eq!(s.gaussians_evaluated, 4 * m.config().num_components as u64);
        assert_eq!(s.logadds, s.gaussians_evaluated);
        assert_eq!(
            s.parameters_streamed,
            4 * (m.config().num_components * (2 * m.feature_dim() + 1)) as u64
        );
        assert_eq!(s.feature_loads, m.feature_dim() as u64);
        assert!(s.cycles > 0);
        // Idle time counts as gated.
        opu.idle(10_000);
        assert!(opu.clock_gate().gated_cycles() >= 10_000);
        assert!(opu.clock_gate().activity_factor() < 1.0);
        opu.reset_stats();
        assert_eq!(opu.stats().cycles, 0);
        assert_eq!(opu.clock_gate().total_cycles(), 0);
    }

    #[test]
    fn scoring_discriminates_between_senones() {
        // A feature vector equal to senone 5's mean must score senone 5 best —
        // through the hardware path, not just the software reference.
        let m = model();
        let mut opu = ObservationProbabilityUnit::new(OpuConfig::default());
        let target_mean = m.senones().get(SenoneId(5)).unwrap().mixture().components()[0]
            .mean()
            .to_vec();
        opu.load_feature_vector(&target_mean);
        let ids: Vec<SenoneId> = (0..m.senones().len() as u32).map(SenoneId).collect();
        let scores = opu.score_active_set(&m, &ids).unwrap();
        let best = scores.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        assert_eq!(best, SenoneId(5));
    }
}
