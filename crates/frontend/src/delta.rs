//! Delta (velocity) and delta-delta (acceleration) features.
//!
//! The Sphinx-style 39-dimensional feature vector appends first- and
//! second-order time derivatives of the 13 cepstra.  Derivatives are estimated
//! with the standard regression formula over a ±`window` frame context.

/// Computes delta and delta-delta features over whole utterances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaComputer {
    window: usize,
}

impl DeltaComputer {
    /// Creates a delta computer with the given half-window (in frames).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "delta window must be at least 1 frame");
        DeltaComputer { window }
    }

    /// The half-window size in frames.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Computes the regression delta of a sequence of feature vectors.
    ///
    /// `Δc_t = Σ_{n=1..N} n·(c_{t+n} − c_{t−n}) / (2·Σ n²)`, with edge frames
    /// clamped (repeating the first/last frame), so the output has the same
    /// length as the input.
    pub fn delta(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if frames.is_empty() {
            return Vec::new();
        }
        let dim = frames[0].len();
        let n = frames.len();
        let denom: f32 = 2.0 * (1..=self.window).map(|i| (i * i) as f32).sum::<f32>();
        let clamp = |idx: isize| -> &Vec<f32> {
            let i = idx.clamp(0, n as isize - 1) as usize;
            &frames[i]
        };
        (0..n)
            .map(|t| {
                let mut out = vec![0.0f32; dim];
                for w in 1..=self.window {
                    let plus = clamp(t as isize + w as isize);
                    let minus = clamp(t as isize - w as isize);
                    for d in 0..dim {
                        out[d] += w as f32 * (plus[d] - minus[d]);
                    }
                }
                for v in &mut out {
                    *v /= denom;
                }
                out
            })
            .collect()
    }

    /// Appends delta and (optionally) delta-delta coefficients to each frame,
    /// producing `dim`, `2·dim` or `3·dim` wide vectors.
    pub fn append(
        &self,
        frames: &[Vec<f32>],
        use_delta: bool,
        use_delta_delta: bool,
    ) -> Vec<Vec<f32>> {
        if frames.is_empty() || !use_delta {
            return frames.to_vec();
        }
        let deltas = self.delta(frames);
        let ddeltas = if use_delta_delta {
            Some(self.delta(&deltas))
        } else {
            None
        };
        frames
            .iter()
            .enumerate()
            .map(|(t, f)| {
                let mut v = f.clone();
                v.extend_from_slice(&deltas[t]);
                if let Some(dd) = &ddeltas {
                    v.extend_from_slice(&dd[t]);
                }
                v
            })
            .collect()
    }
}

impl Default for DeltaComputer {
    fn default() -> Self {
        DeltaComputer::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_sequence_has_zero_delta() {
        let dc = DeltaComputer::new(2);
        let frames = vec![vec![1.0, -2.0, 3.0]; 10];
        let deltas = dc.delta(&frames);
        assert_eq!(deltas.len(), 10);
        assert!(deltas.iter().flatten().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn linear_ramp_has_constant_delta() {
        let dc = DeltaComputer::new(2);
        // c_t = 2t → delta should be 2 in the interior.
        let frames: Vec<Vec<f32>> = (0..20).map(|t| vec![2.0 * t as f32]).collect();
        let deltas = dc.delta(&frames);
        for d in &deltas[2..18] {
            assert!((d[0] - 2.0).abs() < 1e-5, "{}", d[0]);
        }
    }

    #[test]
    fn append_widths() {
        let dc = DeltaComputer::new(2);
        let frames = vec![vec![1.0; 13]; 5];
        assert_eq!(dc.append(&frames, false, false)[0].len(), 13);
        assert_eq!(dc.append(&frames, true, false)[0].len(), 26);
        assert_eq!(dc.append(&frames, true, true)[0].len(), 39);
        assert!(dc.append(&[], true, true).is_empty());
    }

    #[test]
    fn append_preserves_statics() {
        let dc = DeltaComputer::new(2);
        let frames: Vec<Vec<f32>> = (0..8).map(|t| vec![t as f32, -(t as f32)]).collect();
        let out = dc.append(&frames, true, true);
        for (o, f) in out.iter().zip(&frames) {
            assert_eq!(&o[..2], f.as_slice());
        }
    }

    #[test]
    fn empty_and_single_frame() {
        let dc = DeltaComputer::default();
        assert!(dc.delta(&[]).is_empty());
        let single = dc.delta(&[vec![1.0, 2.0]]);
        assert_eq!(single.len(), 1);
        assert!(single[0].iter().all(|&v| v == 0.0));
        assert_eq!(dc.window(), 2);
    }

    #[test]
    #[should_panic(expected = "delta window")]
    fn zero_window_panics() {
        DeltaComputer::new(0);
    }

    proptest! {
        #[test]
        fn prop_delta_shape(n in 1usize..30, dim in 1usize..10, window in 1usize..4) {
            let dc = DeltaComputer::new(window);
            let frames = vec![vec![0.5f32; dim]; n];
            let d = dc.delta(&frames);
            prop_assert_eq!(d.len(), n);
            prop_assert!(d.iter().all(|f| f.len() == dim));
        }

        #[test]
        fn prop_delta_antisymmetric(vals in proptest::collection::vec(-5.0f32..5.0, 12)) {
            // Reversing the sequence in time negates the deltas (up to edge effects,
            // checked in the interior only).
            let dc = DeltaComputer::new(2);
            let frames: Vec<Vec<f32>> = vals.iter().map(|&v| vec![v]).collect();
            let mut rev = frames.clone();
            rev.reverse();
            let d = dc.delta(&frames);
            let dr = dc.delta(&rev);
            let n = frames.len();
            for t in 2..n - 2 {
                prop_assert!((d[t][0] + dr[n - 1 - t][0]).abs() < 1e-4);
            }
        }
    }
}
