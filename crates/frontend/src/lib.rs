//! # asr-frontend — acoustic feature extraction (the paper's "Frontend" stage)
//!
//! The paper's system runs the frontend in software on the embedded host
//! processor: "The prime function of the Frontend is to divide the input
//! speech into blocks (time intervals) and from each block, derive a
//! smoothened spectral estimate.  The intervals are typically spaced 10 msecs.
//! Blocks are overlapped to give a longer analysis window, typically 25
//! msecs."  The authors extracted feature vectors with the Sphinx-3 frontend;
//! this crate re-implements an equivalent MFCC pipeline from scratch:
//!
//! 1. pre-emphasis (`y[n] = x[n] − 0.97·x[n−1]`),
//! 2. framing into 25 ms windows every 10 ms,
//! 3. Hamming window,
//! 4. radix-2 FFT → power spectrum,
//! 5. mel-scale triangular filter bank,
//! 6. log compression,
//! 7. DCT-II → cepstral coefficients,
//! 8. cepstral mean normalisation,
//! 9. delta and delta-delta appending → 39-dimensional feature vectors.
//!
//! # Example
//!
//! ```
//! use asr_frontend::{Frontend, FrontendConfig};
//!
//! let config = FrontendConfig::default();
//! let frontend = Frontend::new(config.clone()).unwrap();
//! // 0.5 s of a 440 Hz tone at 16 kHz
//! let samples: Vec<f32> = (0..8000)
//!     .map(|n| (2.0 * std::f32::consts::PI * 440.0 * n as f32 / 16000.0).sin())
//!     .collect();
//! let features = frontend.process(&samples);
//! assert!(!features.is_empty());
//! assert_eq!(features[0].len(), config.feature_dim());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cmn;
pub mod config;
pub mod delta;
pub mod dsp;
pub mod mfcc;

pub use cmn::CepstralMeanNorm;
pub use config::{FrontendConfig, FrontendError};
pub use delta::DeltaComputer;
pub use mfcc::{Frontend, MfccExtractor};

/// A single acoustic feature vector (one 10 ms frame).
pub type FeatureVector = Vec<f32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frontend>();
        assert_send_sync::<FrontendConfig>();
        assert_send_sync::<CepstralMeanNorm>();
    }
}
