//! The MFCC extraction pipeline and the top-level [`Frontend`].

use crate::cmn::CepstralMeanNorm;
use crate::config::{FrontendConfig, FrontendError};
use crate::delta::DeltaComputer;
use crate::dsp::{frame_signal, hamming_window, pre_emphasis, DctII, Fft, MelFilterBank};
use crate::FeatureVector;

/// Extracts static MFCC vectors (no deltas, no CMN) frame by frame.
///
/// This is the per-frame compute kernel; [`Frontend`] wraps it with
/// pre-emphasis, framing, CMN and delta appending to provide the
/// utterance-level API used by the recogniser.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: FrontendConfig,
    window: Vec<f32>,
    fft: Fft,
    filterbank: MelFilterBank,
    dct: DctII,
}

impl MfccExtractor {
    /// Builds the extractor for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: FrontendConfig) -> Result<Self, FrontendError> {
        config.validate()?;
        let frame_len = config.frame_length_samples();
        let fft_size = config.fft_size();
        let fft = Fft::new(fft_size).ok_or_else(|| {
            FrontendError::InvalidConfig("FFT size must be a power of two >= 2".into())
        })?;
        let filterbank = MelFilterBank::new(
            config.num_mel_filters,
            fft_size,
            config.sample_rate_hz,
            config.low_freq_hz,
            config.effective_high_freq(),
        );
        let dct = DctII::new(config.num_mel_filters, config.num_cepstra);
        Ok(MfccExtractor {
            window: hamming_window(frame_len),
            config,
            fft,
            filterbank,
            dct,
        })
    }

    /// The configuration this extractor was built with.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Computes the static cepstra of one frame of (pre-emphasised) samples.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not exactly one analysis window long.
    pub fn frame_cepstra(&self, frame: &[f32]) -> Vec<f32> {
        assert_eq!(
            frame.len(),
            self.window.len(),
            "frame must be exactly one analysis window"
        );
        let windowed: Vec<f32> = frame
            .iter()
            .zip(&self.window)
            .map(|(&s, &w)| s * w)
            .collect();
        let spectrum = self.fft.power_spectrum(&windowed);
        let log_energies = self.filterbank.apply_log(&spectrum, 1.0e-10);
        self.dct.apply(&log_energies)
    }
}

/// The complete software frontend of the paper's system: waveform in,
/// 39-dimensional feature vectors out, one per 10 ms.
#[derive(Debug, Clone)]
pub struct Frontend {
    extractor: MfccExtractor,
    delta: DeltaComputer,
}

impl Frontend {
    /// Builds a frontend for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: FrontendConfig) -> Result<Self, FrontendError> {
        let delta = DeltaComputer::new(config.delta_window.max(1));
        Ok(Frontend {
            extractor: MfccExtractor::new(config)?,
            delta,
        })
    }

    /// The configuration this frontend was built with.
    pub fn config(&self) -> &FrontendConfig {
        self.extractor.config()
    }

    /// Processes a whole utterance of PCM samples (any amplitude scale) into
    /// feature vectors.  Returns one vector of [`FrontendConfig::feature_dim`]
    /// values per 10 ms frame; utterances shorter than one analysis window
    /// yield an empty result.
    pub fn process(&self, samples: &[f32]) -> Vec<FeatureVector> {
        let cfg = self.extractor.config();
        let mut emphasized = pre_emphasis(samples, cfg.pre_emphasis);
        if cfg.dither > 0.0 {
            // Deterministic tiny dither keeps log() away from -inf on exact
            // digital silence without requiring a random source here.
            for (i, v) in emphasized.iter_mut().enumerate() {
                *v += cfg.dither * if i % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        let frames = frame_signal(
            &emphasized,
            cfg.frame_length_samples(),
            cfg.frame_shift_samples(),
        );
        let mut cepstra: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| self.extractor.frame_cepstra(f))
            .collect();
        if cfg.cepstral_mean_norm {
            CepstralMeanNorm::normalize_batch(&mut cepstra);
        }
        self.delta
            .append(&cepstra, cfg.use_delta, cfg.use_delta_delta)
    }

    /// Number of feature frames `process` would produce for `num_samples`
    /// input samples.
    pub fn expected_frames(&self, num_samples: usize) -> usize {
        let cfg = self.extractor.config();
        let len = cfg.frame_length_samples();
        let shift = cfg.frame_shift_samples();
        if num_samples < len {
            0
        } else {
            (num_samples - len) / shift + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f32, seconds: f32, rate: u32) -> Vec<f32> {
        (0..(seconds * rate as f32) as usize)
            .map(|n| (2.0 * std::f32::consts::PI * freq * n as f32 / rate as f32).sin())
            .collect()
    }

    #[test]
    fn produces_expected_frame_count_and_dim() {
        let cfg = FrontendConfig::default();
        let fe = Frontend::new(cfg.clone()).unwrap();
        let samples = tone(440.0, 1.0, 16_000);
        let feats = fe.process(&samples);
        assert_eq!(feats.len(), fe.expected_frames(samples.len()));
        assert_eq!(feats.len(), 98);
        assert!(feats.iter().all(|f| f.len() == cfg.feature_dim()));
        assert!(feats.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn short_input_yields_nothing() {
        let fe = Frontend::new(FrontendConfig::default()).unwrap();
        assert!(fe.process(&[0.0; 100]).is_empty());
        assert_eq!(fe.expected_frames(100), 0);
    }

    #[test]
    fn silence_produces_finite_features() {
        let fe = Frontend::new(FrontendConfig::default()).unwrap();
        let feats = fe.process(&vec![0.0; 8000]);
        assert!(!feats.is_empty());
        assert!(feats.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn different_tones_produce_different_features() {
        let cfg = FrontendConfig {
            cepstral_mean_norm: false,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(cfg).unwrap();
        let a = fe.process(&tone(300.0, 0.3, 16_000));
        let b = fe.process(&tone(2500.0, 0.3, 16_000));
        // Compare the mean static cepstra of the two tones.
        let mean = |fs: &Vec<Vec<f32>>| -> Vec<f32> {
            let mut m = [0.0f32; 13];
            for f in fs {
                for d in 0..13 {
                    m[d] += f[d];
                }
            }
            m.iter().map(|v| v / fs.len() as f32).collect()
        };
        let (ma, mb) = (mean(&a), mean(&b));
        let dist: f32 = ma.iter().zip(&mb).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(
            dist > 1.0,
            "distinct spectra must give distinct cepstra, dist={dist}"
        );
    }

    #[test]
    fn cmn_removes_gain_differences() {
        let cfg = FrontendConfig::default();
        let fe = Frontend::new(cfg).unwrap();
        let quiet = tone(440.0, 0.3, 16_000);
        let loud: Vec<f32> = quiet.iter().map(|s| s * 20.0).collect();
        let fq = fe.process(&quiet);
        let fl = fe.process(&loud);
        // With CMN, a constant gain (constant offset in log domain / C0) largely
        // cancels: static cepstra should be close.
        let diff: f32 = fq
            .iter()
            .zip(&fl)
            .map(|(a, b)| {
                a[..13]
                    .iter()
                    .zip(&b[..13])
                    .map(|(x, y)| (x - y).powi(2))
                    .sum::<f32>()
            })
            .sum::<f32>()
            / fq.len() as f32;
        assert!(
            diff < 0.5,
            "CMN should suppress gain differences, diff={diff}"
        );
    }

    #[test]
    fn frame_cepstra_requires_full_window() {
        let ex = MfccExtractor::new(FrontendConfig::default()).unwrap();
        assert_eq!(ex.frame_cepstra(&[0.0; 400]).len(), 13);
        assert_eq!(ex.config().num_cepstra, 13);
    }

    #[test]
    #[should_panic(expected = "analysis window")]
    fn wrong_frame_size_panics() {
        let ex = MfccExtractor::new(FrontendConfig::default()).unwrap();
        ex.frame_cepstra(&[0.0; 100]);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = FrontendConfig {
            num_cepstra: 0,
            ..FrontendConfig::default()
        };
        assert!(Frontend::new(cfg.clone()).is_err());
        assert!(MfccExtractor::new(cfg).is_err());
    }

    #[test]
    fn no_delta_configuration() {
        let cfg = FrontendConfig {
            use_delta: false,
            use_delta_delta: false,
            ..FrontendConfig::default()
        };
        let fe = Frontend::new(cfg).unwrap();
        let feats = fe.process(&tone(500.0, 0.2, 16_000));
        assert!(feats.iter().all(|f| f.len() == 13));
    }
}
