//! Cepstral mean normalisation (CMN).
//!
//! Subtracting the per-utterance mean of each cepstral coefficient removes
//! stationary channel effects (microphone colouration).  Two modes are
//! provided: batch (whole utterance available, used by the offline decoder)
//! and live (running mean, used when streaming frames into the accelerator in
//! real time as the paper's system does).

/// Batch and streaming cepstral mean normalisation.
#[derive(Debug, Clone)]
pub struct CepstralMeanNorm {
    dim: usize,
    running_sum: Vec<f64>,
    count: u64,
    /// Prior weight (in frames) given to the initial mean estimate when
    /// streaming, so early frames are not over-corrected.
    prior_frames: f64,
    prior_mean: Vec<f64>,
}

impl CepstralMeanNorm {
    /// Creates a normaliser for `dim`-dimensional cepstra.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        CepstralMeanNorm {
            dim,
            running_sum: vec![0.0; dim],
            count: 0,
            prior_frames: 100.0,
            prior_mean: vec![0.0; dim],
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of frames accumulated so far in streaming mode.
    pub fn frames_seen(&self) -> u64 {
        self.count
    }

    /// Normalises a whole utterance in place: subtracts the utterance mean of
    /// each coefficient.
    ///
    /// # Panics
    ///
    /// Panics if any frame has the wrong dimension.
    pub fn normalize_batch(frames: &mut [Vec<f32>]) {
        if frames.is_empty() {
            return;
        }
        let dim = frames[0].len();
        let mut mean = vec![0.0f64; dim];
        for f in frames.iter() {
            assert_eq!(f.len(), dim, "inconsistent feature dimension");
            for (m, &v) in mean.iter_mut().zip(f) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= frames.len() as f64;
        }
        for f in frames.iter_mut() {
            for (v, &m) in f.iter_mut().zip(&mean) {
                *v -= m as f32;
            }
        }
    }

    /// Streaming normalisation: subtracts the current running-mean estimate
    /// and then updates it with the new frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame has the wrong dimension.
    pub fn normalize_live(&mut self, frame: &mut [f32]) {
        assert_eq!(frame.len(), self.dim, "inconsistent feature dimension");
        // Current estimate = (prior + observed) / (prior_frames + count)
        let total = self.prior_frames + self.count as f64;
        for (i, v) in frame.iter_mut().enumerate() {
            let mean =
                (self.prior_mean[i] * self.prior_frames + self.running_sum[i]) / total.max(1.0);
            let original = *v as f64;
            *v = (original - mean) as f32;
            self.running_sum[i] += original;
        }
        self.count += 1;
    }

    /// Resets the streaming state (e.g. between utterances), keeping the last
    /// utterance's mean as the prior for the next one, which is how Sphinx's
    /// `cmn prior` mode behaves.
    pub fn reset_between_utterances(&mut self) {
        if self.count > 0 {
            for i in 0..self.dim {
                self.prior_mean[i] = self.running_sum[i] / self.count as f64;
            }
        }
        self.running_sum = vec![0.0; self.dim];
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batch_mean_is_zero_after_normalisation() {
        let mut frames: Vec<Vec<f32>> = (0..50)
            .map(|t| vec![t as f32, 5.0, -3.0 + 0.1 * t as f32])
            .collect();
        CepstralMeanNorm::normalize_batch(&mut frames);
        for d in 0..3 {
            let mean: f32 = frames.iter().map(|f| f[d]).sum::<f32>() / frames.len() as f32;
            assert!(mean.abs() < 1e-4, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn batch_empty_is_noop() {
        let mut frames: Vec<Vec<f32>> = Vec::new();
        CepstralMeanNorm::normalize_batch(&mut frames);
        assert!(frames.is_empty());
    }

    #[test]
    fn live_converges_to_batch() {
        let mut cmn = CepstralMeanNorm::new(2);
        // Long stationary signal with mean (3, -1): late frames should come out
        // close to zero-mean.
        let mut last = [0.0f32; 2];
        for _ in 0..5000 {
            let mut frame = vec![3.0f32, -1.0];
            cmn.normalize_live(&mut frame);
            last = [frame[0], frame[1]];
        }
        // The fixed prior weight (100 frames at zero) leaves a small residual
        // bias of mean * prior/(prior + n) ≈ 0.06 after 5000 frames.
        assert!(last[0].abs() < 0.1, "{}", last[0]);
        assert!(last[1].abs() < 0.1, "{}", last[1]);
        assert_eq!(cmn.frames_seen(), 5000);
        assert_eq!(cmn.dim(), 2);
    }

    #[test]
    fn reset_carries_prior() {
        let mut cmn = CepstralMeanNorm::new(1);
        for _ in 0..1000 {
            let mut f = vec![10.0f32];
            cmn.normalize_live(&mut f);
        }
        cmn.reset_between_utterances();
        assert_eq!(cmn.frames_seen(), 0);
        // First frame of the next utterance benefits from the learned prior.
        let mut f = vec![10.0f32];
        cmn.normalize_live(&mut f);
        assert!(
            f[0].abs() < 1.0,
            "prior should nearly cancel the mean, got {}",
            f[0]
        );
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn wrong_dim_panics() {
        let mut cmn = CepstralMeanNorm::new(3);
        cmn.normalize_live(&mut [0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        CepstralMeanNorm::new(0);
    }

    proptest! {
        #[test]
        fn prop_batch_zero_mean(rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4), 1..40)) {
            let mut frames = rows;
            CepstralMeanNorm::normalize_batch(&mut frames);
            for d in 0..4 {
                let mean: f32 = frames.iter().map(|f| f[d]).sum::<f32>() / frames.len() as f32;
                prop_assert!(mean.abs() < 1e-3);
            }
        }

        #[test]
        fn prop_batch_preserves_variance(rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 3), 2..40)) {
            let original = rows.clone();
            let mut frames = rows;
            CepstralMeanNorm::normalize_batch(&mut frames);
            // CMN is a shift: pairwise differences are untouched.
            for t in 1..frames.len() {
                for d in 0..3 {
                    let before = original[t][d] - original[t - 1][d];
                    let after = frames[t][d] - frames[t - 1][d];
                    prop_assert!((before - after).abs() < 1e-3);
                }
            }
        }
    }
}
