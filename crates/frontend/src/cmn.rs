//! Cepstral mean normalisation (CMN).
//!
//! Subtracting the per-utterance mean of each cepstral coefficient removes
//! stationary channel effects (microphone colouration).  Two modes are
//! provided: batch (whole utterance available, used by the offline decoder)
//! and live (running mean, used when streaming frames into the accelerator in
//! real time as the paper's system does).

/// Batch and streaming cepstral mean normalisation.
#[derive(Debug, Clone)]
pub struct CepstralMeanNorm {
    dim: usize,
    running_sum: Vec<f64>,
    count: u64,
    /// Prior weight (in frames) given to the initial mean estimate when
    /// streaming, so early frames are not over-corrected.
    prior_frames: f64,
    prior_mean: Vec<f64>,
}

impl CepstralMeanNorm {
    /// Creates a normaliser for `dim`-dimensional cepstra with the default
    /// prior: 100 frames of weight at a zero mean.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self::with_prior(dim, 100.0, None)
    }

    /// Creates a normaliser with an explicit streaming prior: the initial
    /// mean estimate (`None` → zeros) and the weight, in frames, it carries
    /// against observed data.  A `prior_frames` of 0 trusts the observed
    /// running mean immediately — the setting whose frame-by-frame behaviour
    /// is pinned against batch CMN by this module's equivalence test.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, if `prior_frames` is negative or non-finite, or
    /// if a supplied `prior_mean` has the wrong dimension or non-finite
    /// values ([`crate::FrontendConfig::validate`] rejects such configs
    /// before they reach this constructor).
    pub fn with_prior(dim: usize, prior_frames: f64, prior_mean: Option<Vec<f64>>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            prior_frames.is_finite() && prior_frames >= 0.0,
            "prior_frames must be finite and non-negative"
        );
        let prior_mean = prior_mean.unwrap_or_else(|| vec![0.0; dim]);
        assert_eq!(prior_mean.len(), dim, "inconsistent prior dimension");
        assert!(
            prior_mean.iter().all(|v| v.is_finite()),
            "prior mean must be finite"
        );
        CepstralMeanNorm {
            dim,
            running_sum: vec![0.0; dim],
            count: 0,
            prior_frames,
            prior_mean,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The prior weight in frames.
    pub fn prior_frames(&self) -> f64 {
        self.prior_frames
    }

    /// The current prior mean (updated by
    /// [`CepstralMeanNorm::reset_between_utterances`]).
    pub fn prior_mean(&self) -> &[f64] {
        &self.prior_mean
    }

    /// Number of frames accumulated so far in streaming mode.
    pub fn frames_seen(&self) -> u64 {
        self.count
    }

    /// Normalises a whole utterance in place: subtracts the utterance mean of
    /// each coefficient.
    ///
    /// # Panics
    ///
    /// Panics if any frame has the wrong dimension.
    pub fn normalize_batch(frames: &mut [Vec<f32>]) {
        if frames.is_empty() {
            return;
        }
        let dim = frames[0].len();
        let mut mean = vec![0.0f64; dim];
        for f in frames.iter() {
            assert_eq!(f.len(), dim, "inconsistent feature dimension");
            for (m, &v) in mean.iter_mut().zip(f) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= frames.len() as f64;
        }
        for f in frames.iter_mut() {
            for (v, &m) in f.iter_mut().zip(&mean) {
                *v -= m as f32;
            }
        }
    }

    /// Streaming normalisation: subtracts the current running-mean estimate
    /// and then updates it with the new frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame has the wrong dimension.
    pub fn normalize_live(&mut self, frame: &mut [f32]) {
        assert_eq!(frame.len(), self.dim, "inconsistent feature dimension");
        // Current estimate = (prior + observed) / (prior_frames + count)
        let total = self.prior_frames + self.count as f64;
        for (i, v) in frame.iter_mut().enumerate() {
            let mean =
                (self.prior_mean[i] * self.prior_frames + self.running_sum[i]) / total.max(1.0);
            let original = *v as f64;
            *v = (original - mean) as f32;
            self.running_sum[i] += original;
        }
        self.count += 1;
    }

    /// Resets the streaming state (e.g. between utterances), keeping the last
    /// utterance's mean as the prior for the next one, which is how Sphinx's
    /// `cmn prior` mode behaves.
    pub fn reset_between_utterances(&mut self) {
        if self.count > 0 {
            for i in 0..self.dim {
                self.prior_mean[i] = self.running_sum[i] / self.count as f64;
            }
        }
        self.running_sum = vec![0.0; self.dim];
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batch_mean_is_zero_after_normalisation() {
        let mut frames: Vec<Vec<f32>> = (0..50)
            .map(|t| vec![t as f32, 5.0, -3.0 + 0.1 * t as f32])
            .collect();
        CepstralMeanNorm::normalize_batch(&mut frames);
        for d in 0..3 {
            let mean: f32 = frames.iter().map(|f| f[d]).sum::<f32>() / frames.len() as f32;
            assert!(mean.abs() < 1e-4, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn batch_empty_is_noop() {
        let mut frames: Vec<Vec<f32>> = Vec::new();
        CepstralMeanNorm::normalize_batch(&mut frames);
        assert!(frames.is_empty());
    }

    #[test]
    fn live_converges_to_batch() {
        let mut cmn = CepstralMeanNorm::new(2);
        // Long stationary signal with mean (3, -1): late frames should come out
        // close to zero-mean.
        let mut last = [0.0f32; 2];
        for _ in 0..5000 {
            let mut frame = vec![3.0f32, -1.0];
            cmn.normalize_live(&mut frame);
            last = [frame[0], frame[1]];
        }
        // The fixed prior weight (100 frames at zero) leaves a small residual
        // bias of mean * prior/(prior + n) ≈ 0.06 after 5000 frames.
        assert!(last[0].abs() < 0.1, "{}", last[0]);
        assert!(last[1].abs() < 0.1, "{}", last[1]);
        assert_eq!(cmn.frames_seen(), 5000);
        assert_eq!(cmn.dim(), 2);
    }

    #[test]
    fn reset_carries_prior() {
        let mut cmn = CepstralMeanNorm::new(1);
        for _ in 0..1000 {
            let mut f = vec![10.0f32];
            cmn.normalize_live(&mut f);
        }
        cmn.reset_between_utterances();
        assert_eq!(cmn.frames_seen(), 0);
        // First frame of the next utterance benefits from the learned prior.
        let mut f = vec![10.0f32];
        cmn.normalize_live(&mut f);
        assert!(
            f[0].abs() < 1.0,
            "prior should nearly cancel the mean, got {}",
            f[0]
        );
    }

    #[test]
    fn explicit_prior_is_used_and_exposed() {
        let mut cmn = CepstralMeanNorm::with_prior(2, 50.0, Some(vec![4.0, -2.0]));
        assert_eq!(cmn.prior_frames(), 50.0);
        assert_eq!(cmn.prior_mean(), &[4.0, -2.0]);
        // The very first frame is corrected by the supplied prior mean.
        let mut f = vec![4.0f32, -2.0];
        cmn.normalize_live(&mut f);
        assert!(f[0].abs() < 1e-5 && f[1].abs() < 1e-5, "{f:?}");
    }

    #[test]
    fn zero_prior_trusts_observations_immediately() {
        let mut cmn = CepstralMeanNorm::with_prior(1, 0.0, None);
        // First frame: no estimate yet, passes through unchanged.
        let mut f = vec![6.0f32];
        cmn.normalize_live(&mut f);
        assert_eq!(f[0], 6.0);
        // Second frame: the running mean (exactly 6.0) is subtracted in full,
        // with no prior pulling the estimate toward zero.
        let mut g = vec![6.0f32];
        cmn.normalize_live(&mut g);
        assert!(g[0].abs() < 1e-6, "{}", g[0]);
    }

    /// The satellite equivalence property: live CMN with `prior_frames = 0`
    /// fed frame by frame converges to batch CMN on the same utterance — the
    /// foundation of the streaming frontend's stream≈offline behaviour.  The
    /// early frames differ by construction (the running mean has seen less
    /// data); after a burn-in the gap must be small, and the *mean* over the
    /// whole utterance must agree tightly.
    #[test]
    fn live_cmn_with_zero_prior_matches_batch_cmn_frame_by_frame() {
        // A deterministic quasi-stationary utterance: a fixed offset per
        // dimension plus small bounded oscillation (what stationary channel
        // colouration plus speech modulation looks like to CMN).
        let dim = 4;
        let n = 400;
        let utterance: Vec<Vec<f32>> = (0..n)
            .map(|t| {
                (0..dim)
                    .map(|d| {
                        let offset = [5.0f32, -3.0, 0.5, 12.0][d];
                        offset + 0.3 * ((0.7 * t as f32 + d as f32).sin())
                    })
                    .collect()
            })
            .collect();

        let mut batch = utterance.clone();
        CepstralMeanNorm::normalize_batch(&mut batch);

        let mut cmn = CepstralMeanNorm::with_prior(dim, 0.0, None);
        let live: Vec<Vec<f32>> = utterance
            .iter()
            .map(|f| {
                let mut frame = f.clone();
                cmn.normalize_live(&mut frame);
                frame
            })
            .collect();

        // After burn-in, every frame agrees within a small tolerance.
        for (t, (l, b)) in live.iter().zip(&batch).enumerate().skip(n / 4) {
            for d in 0..dim {
                assert!(
                    (l[d] - b[d]).abs() < 0.05,
                    "frame {t} dim {d}: live {} vs batch {}",
                    l[d],
                    b[d]
                );
            }
        }
        // And the settled-region means agree even more tightly (the early
        // frames carry the running mean's warm-up bias by construction).
        for d in 0..dim {
            let mean = |fs: &[Vec<f32>]| {
                fs[n / 4..].iter().map(|f| f[d]).sum::<f32>() / (n - n / 4) as f32
            };
            assert!((mean(&live) - mean(&batch)).abs() < 0.02, "dim {d}");
        }
    }

    #[test]
    #[should_panic(expected = "prior_frames")]
    fn negative_prior_frames_panics() {
        CepstralMeanNorm::with_prior(2, -1.0, None);
    }

    #[test]
    #[should_panic(expected = "inconsistent prior dimension")]
    fn wrong_prior_dim_panics() {
        CepstralMeanNorm::with_prior(2, 10.0, Some(vec![0.0; 3]));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn wrong_dim_panics() {
        let mut cmn = CepstralMeanNorm::new(3);
        cmn.normalize_live(&mut [0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        CepstralMeanNorm::new(0);
    }

    proptest! {
        #[test]
        fn prop_batch_zero_mean(rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4), 1..40)) {
            let mut frames = rows;
            CepstralMeanNorm::normalize_batch(&mut frames);
            for d in 0..4 {
                let mean: f32 = frames.iter().map(|f| f[d]).sum::<f32>() / frames.len() as f32;
                prop_assert!(mean.abs() < 1e-3);
            }
        }

        #[test]
        fn prop_batch_preserves_variance(rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 3), 2..40)) {
            let original = rows.clone();
            let mut frames = rows;
            CepstralMeanNorm::normalize_batch(&mut frames);
            // CMN is a shift: pairwise differences are untouched.
            for t in 1..frames.len() {
                for d in 0..3 {
                    let before = original[t][d] - original[t - 1][d];
                    let after = frames[t][d] - frames[t - 1][d];
                    prop_assert!((before - after).abs() < 1e-3);
                }
            }
        }
    }
}
