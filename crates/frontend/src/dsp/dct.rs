//! Type-II discrete cosine transform used to decorrelate log mel energies
//! into cepstral coefficients.

/// A DCT-II plan from `input_len` log-mel energies to `output_len` cepstra.
///
/// Uses the orthonormal normalisation so energy is preserved when
/// `output_len == input_len`.
///
/// # Example
///
/// ```
/// use asr_frontend::dsp::DctII;
/// let dct = DctII::new(40, 13);
/// let cepstra = dct.apply(&vec![1.0; 40]);
/// assert_eq!(cepstra.len(), 13);
/// // A constant input has all of its energy in C0.
/// assert!(cepstra[1..].iter().all(|c| c.abs() < 1e-4));
/// ```
#[derive(Debug, Clone)]
pub struct DctII {
    input_len: usize,
    output_len: usize,
    /// Row-major `output_len × input_len` cosine basis.
    basis: Vec<f32>,
}

impl DctII {
    /// Builds a DCT-II plan.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero or `output_len > input_len`.
    pub fn new(input_len: usize, output_len: usize) -> Self {
        assert!(input_len > 0 && output_len > 0, "lengths must be positive");
        assert!(
            output_len <= input_len,
            "cannot produce more cepstra than filterbank channels"
        );
        let n = input_len as f32;
        let mut basis = Vec::with_capacity(input_len * output_len);
        for k in 0..output_len {
            let scale = if k == 0 {
                (1.0 / n).sqrt()
            } else {
                (2.0 / n).sqrt()
            };
            for i in 0..input_len {
                basis.push(
                    scale
                        * (std::f32::consts::PI * k as f32 * (2.0 * i as f32 + 1.0) / (2.0 * n))
                            .cos(),
                );
            }
        }
        DctII {
            input_len,
            output_len,
            basis,
        }
    }

    /// Input (filterbank) dimension.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Output (cepstral) dimension.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Applies the transform.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_len`.
    pub fn apply(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len, "DCT input length mismatch");
        (0..self.output_len)
            .map(|k| {
                let row = &self.basis[k * self.input_len..(k + 1) * self.input_len];
                row.iter().zip(input).map(|(&b, &x)| b * x).sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_input_concentrates_in_c0() {
        let dct = DctII::new(40, 13);
        let out = dct.apply(&[2.5; 40]);
        assert!((out[0] - 2.5 * (40.0f32).sqrt()).abs() < 1e-3);
        assert!(out[1..].iter().all(|c| c.abs() < 1e-4));
        assert_eq!(dct.input_len(), 40);
        assert_eq!(dct.output_len(), 13);
    }

    #[test]
    fn full_dct_preserves_energy() {
        let n = 16;
        let dct = DctII::new(n, n);
        let input: Vec<f32> = (0..n).map(|i| ((i * 7 % 5) as f32) - 2.0).collect();
        let out = dct.apply(&input);
        let ein: f32 = input.iter().map(|x| x * x).sum();
        let eout: f32 = out.iter().map(|x| x * x).sum();
        assert!((ein - eout).abs() / ein < 1e-4);
    }

    #[test]
    fn alternating_input_concentrates_in_high_coefficient() {
        let n = 32;
        let dct = DctII::new(n, n);
        let input: Vec<f32> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = dct.apply(&input);
        let max_idx = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert!(max_idx > n / 2, "alternating signal is high-frequency");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_panics() {
        DctII::new(10, 5).apply(&[1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "more cepstra")]
    fn too_many_outputs_panics() {
        DctII::new(5, 10);
    }

    proptest! {
        #[test]
        fn prop_linearity(a in proptest::collection::vec(-5.0f32..5.0, 20),
                          b in proptest::collection::vec(-5.0f32..5.0, 20)) {
            let dct = DctII::new(20, 13);
            let oa = dct.apply(&a);
            let ob = dct.apply(&b);
            let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let osum = dct.apply(&sum);
            for i in 0..13 {
                prop_assert!((oa[i] + ob[i] - osum[i]).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_output_finite(a in proptest::collection::vec(-100.0f32..100.0, 40)) {
            let dct = DctII::new(40, 13);
            prop_assert!(dct.apply(&a).iter().all(|v| v.is_finite()));
        }
    }
}
