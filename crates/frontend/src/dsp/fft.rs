//! Radix-2 decimation-in-time FFT, implemented from scratch.
//!
//! The frontend only needs power spectra of real 512-point frames, but the
//! transform is exposed as a general complex FFT so it can be property-tested
//! against its own inverse and reused by the corpus waveform synthesiser.

use core::fmt;
use core::ops::{Add, Mul, Sub};

/// A complex number (single precision), minimal but sufficient for the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// `e^{iθ}`.
    #[inline]
    pub fn from_polar(theta: f32) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

/// A radix-2 FFT plan for a fixed power-of-two size.
///
/// Twiddle factors and the bit-reversal permutation are precomputed once so
/// per-frame transforms allocate nothing.
///
/// # Example
///
/// ```
/// use asr_frontend::dsp::{Complex, Fft};
/// let fft = Fft::new(8).unwrap();
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f32, 0.0)).collect();
/// fft.forward(&mut data);
/// // DC bin is the sum of the inputs.
/// assert!((data[0].re - 28.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    twiddles: Vec<Complex>,
    bit_rev: Vec<u32>,
}

impl Fft {
    /// Creates a plan for `size` points.
    ///
    /// Returns `None` if `size` is not a power of two or is smaller than 2.
    pub fn new(size: usize) -> Option<Self> {
        if size < 2 || !size.is_power_of_two() {
            return None;
        }
        let twiddles = (0..size / 2)
            .map(|k| Complex::from_polar(-2.0 * std::f32::consts::PI * k as f32 / size as f32))
            .collect();
        let bits = size.trailing_zeros();
        let bit_rev = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        Some(Fft {
            size,
            twiddles,
            bit_rev,
        })
    }

    /// The transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the plan size.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.size, "buffer length must match plan size");
        // Bit-reversal permutation.
        for i in 0..self.size {
            let j = self.bit_rev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        // Iterative Cooley–Tukey butterflies.
        let mut len = 2;
        while len <= self.size {
            let half = len / 2;
            let step = self.size / len;
            for start in (0..self.size).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * step];
                    let even = data[start + k];
                    let odd = data[start + k + half] * w;
                    data[start + k] = even + odd;
                    data[start + k + half] = even - odd;
                }
            }
            len <<= 1;
        }
    }

    /// In-place inverse FFT (including the `1/N` normalisation).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the plan size.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.size, "buffer length must match plan size");
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let scale = 1.0 / self.size as f32;
        for v in data.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }

    /// Power spectrum of a real signal: returns `size/2 + 1` bins of
    /// `|X[k]|²`.  The input is zero-padded (or truncated) to the plan size.
    pub fn power_spectrum(&self, signal: &[f32]) -> Vec<f32> {
        let mut buf = vec![Complex::ZERO; self.size];
        for (i, &s) in signal.iter().take(self.size).enumerate() {
            buf[i] = Complex::new(s, 0.0);
        }
        self.forward(&mut buf);
        buf[..=self.size / 2].iter().map(|c| c.norm_sqr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in data.iter().enumerate() {
                    let w = Complex::from_polar(
                        -2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32,
                    );
                    acc = acc + x * w;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(Fft::new(0).is_none());
        assert!(Fft::new(1).is_none());
        assert!(Fft::new(3).is_none());
        assert!(Fft::new(100).is_none());
        assert!(Fft::new(2).is_some());
        assert!(Fft::new(512).is_some());
    }

    #[test]
    fn matches_naive_dft() {
        let fft = Fft::new(16).unwrap();
        let data: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f32 * 0.7).sin(), (i as f32 * 0.3).cos()))
            .collect();
        let want = naive_dft(&data);
        let mut got = data.clone();
        fft.forward(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.re - w.re).abs() < 1e-3 && (g.im - w.im).abs() < 1e-3);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let fft = Fft::new(64).unwrap();
        let mut data = vec![Complex::ZERO; 64];
        data[0] = Complex::new(1.0, 0.0);
        fft.forward(&mut data);
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-5 && c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn sine_peaks_at_its_bin() {
        let n = 256;
        let fft = Fft::new(n).unwrap();
        let bin = 17;
        let signal: Vec<f32> = (0..n)
            .map(|i| (2.0 * std::f32::consts::PI * bin as f32 * i as f32 / n as f32).sin())
            .collect();
        let ps = fft.power_spectrum(&signal);
        let peak = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin);
    }

    #[test]
    fn power_spectrum_length_and_padding() {
        let fft = Fft::new(512).unwrap();
        let ps = fft.power_spectrum(&[1.0; 400]);
        assert_eq!(ps.len(), 257);
        // A constant signal concentrates energy near DC.
        assert!(ps[0] > ps[100]);
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 128;
        let fft = Fft::new(n).unwrap();
        let signal: Vec<f32> = (0..n).map(|i| ((i * 37 % 13) as f32 - 6.0) / 6.0).collect();
        let time_energy: f32 = signal.iter().map(|x| x * x).sum();
        let mut buf: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        fft.forward(&mut buf);
        let freq_energy: f32 = buf.iter().map(|c| c.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    #[should_panic(expected = "plan size")]
    fn wrong_buffer_length_panics() {
        let fft = Fft::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        fft.forward(&mut data);
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.norm() - 5.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
        assert!(!format!("{a}").is_empty());
        assert_eq!(Complex::default(), Complex::ZERO);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(-1.0f32..1.0, 64)) {
            let fft = Fft::new(64).unwrap();
            let mut data: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let original = data.clone();
            fft.forward(&mut data);
            fft.inverse(&mut data);
            for (a, b) in data.iter().zip(&original) {
                prop_assert!((a.re - b.re).abs() < 1e-4);
                prop_assert!(a.im.abs() < 1e-4);
            }
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(-1.0f32..1.0, 32),
            b in proptest::collection::vec(-1.0f32..1.0, 32),
        ) {
            let fft = Fft::new(32).unwrap();
            let mut fa: Vec<Complex> = a.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let mut fb: Vec<Complex> = b.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| Complex::new(x + y, 0.0)).collect();
            fft.forward(&mut fa);
            fft.forward(&mut fb);
            fft.forward(&mut fab);
            for i in 0..32 {
                let sum = fa[i] + fb[i];
                prop_assert!((sum.re - fab[i].re).abs() < 1e-3);
                prop_assert!((sum.im - fab[i].im).abs() < 1e-3);
            }
        }
    }
}
