//! Pre-emphasis, framing and windowing.
//!
//! The paper: "The prime function of the Frontend is to divide the input
//! speech into blocks (time intervals) and from each block, derive a
//! smoothened spectral estimate."  These helpers perform the block division
//! (overlapping frames) and the smoothing window.

/// Applies the first-order pre-emphasis filter `y[n] = x[n] − α·x[n−1]`.
///
/// Pre-emphasis boosts the high-frequency content of speech before spectral
/// analysis, compensating for the natural −6 dB/octave tilt of voiced speech.
///
/// # Example
///
/// ```
/// use asr_frontend::dsp::pre_emphasis;
/// let y = pre_emphasis(&[1.0, 1.0, 1.0], 0.97);
/// assert_eq!(y.len(), 3);
/// assert_eq!(y[0], 1.0);
/// assert!((y[1] - 0.03).abs() < 1e-6 && (y[2] - 0.03).abs() < 1e-6);
/// ```
pub fn pre_emphasis(samples: &[f32], alpha: f32) -> Vec<f32> {
    if samples.is_empty() || alpha == 0.0 {
        return samples.to_vec();
    }
    let mut out = Vec::with_capacity(samples.len());
    out.push(samples[0]);
    for i in 1..samples.len() {
        out.push(samples[i] - alpha * samples[i - 1]);
    }
    out
}

/// Returns an `n`-point Hamming window.
///
/// `w[i] = 0.54 − 0.46·cos(2πi / (n−1))`.
pub fn hamming_window(n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    (0..n)
        .map(|i| 0.54 - 0.46 * (2.0 * std::f32::consts::PI * i as f32 / (n as f32 - 1.0)).cos())
        .collect()
}

/// Splits a signal into overlapping frames of `frame_len` samples every
/// `frame_shift` samples.  Only frames that fit entirely inside the signal are
/// produced (no padding), matching Sphinx behaviour.
///
/// # Panics
///
/// Panics if `frame_len` or `frame_shift` is zero.
pub fn frame_signal(samples: &[f32], frame_len: usize, frame_shift: usize) -> Vec<Vec<f32>> {
    FrameIter::new(samples, frame_len, frame_shift)
        .map(|f| f.to_vec())
        .collect()
}

/// Iterator over the overlapping frames of a signal (borrowed slices, no
/// copies).
#[derive(Debug, Clone)]
pub struct FrameIter<'a> {
    samples: &'a [f32],
    frame_len: usize,
    frame_shift: usize,
    pos: usize,
}

impl<'a> FrameIter<'a> {
    /// Creates a frame iterator.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` or `frame_shift` is zero.
    pub fn new(samples: &'a [f32], frame_len: usize, frame_shift: usize) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        assert!(frame_shift > 0, "frame_shift must be positive");
        FrameIter {
            samples,
            frame_len,
            frame_shift,
            pos: 0,
        }
    }

    /// Number of frames this iterator will produce.
    pub fn frame_count(&self) -> usize {
        if self.samples.len() < self.frame_len {
            0
        } else {
            (self.samples.len() - self.frame_len) / self.frame_shift + 1
        }
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a [f32];

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.frame_len > self.samples.len() {
            return None;
        }
        let frame = &self.samples[self.pos..self.pos + self.frame_len];
        self.pos += self.frame_shift;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.pos + self.frame_len > self.samples.len() {
            0
        } else {
            (self.samples.len() - self.pos - self.frame_len) / self.frame_shift + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for FrameIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pre_emphasis_dc_removal() {
        // A DC signal should be almost entirely removed (except the first sample).
        let y = pre_emphasis(&[1.0; 10], 1.0 - 1e-7);
        assert_eq!(y[0], 1.0);
        for &v in &y[1..] {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn pre_emphasis_zero_alpha_is_identity() {
        let x = vec![0.5, -0.25, 0.75];
        assert_eq!(pre_emphasis(&x, 0.0), x);
        assert!(pre_emphasis(&[], 0.97).is_empty());
    }

    #[test]
    fn hamming_window_properties() {
        let w = hamming_window(400);
        assert_eq!(w.len(), 400);
        // symmetric
        for i in 0..200 {
            assert!((w[i] - w[399 - i]).abs() < 1e-5);
        }
        // endpoints at 0.08, peak at ~1.0
        assert!((w[0] - 0.08).abs() < 1e-5);
        assert!(w.iter().cloned().fold(0.0f32, f32::max) <= 1.0 + 1e-6);
        assert!(w[200] > 0.99);
        assert!(hamming_window(0).is_empty());
        assert_eq!(hamming_window(1), vec![1.0]);
    }

    #[test]
    fn framing_counts_and_overlap() {
        // 25 ms / 10 ms at 16 kHz over 1 second: (16000 - 400)/160 + 1 = 98 frames.
        let samples = vec![0.0f32; 16_000];
        let frames = frame_signal(&samples, 400, 160);
        assert_eq!(frames.len(), 98);
        assert!(frames.iter().all(|f| f.len() == 400));

        let it = FrameIter::new(&samples, 400, 160);
        assert_eq!(it.frame_count(), 98);
        assert_eq!(it.len(), 98);
    }

    #[test]
    fn framing_short_signal_yields_nothing() {
        let samples = vec![0.0f32; 100];
        assert!(frame_signal(&samples, 400, 160).is_empty());
        assert_eq!(FrameIter::new(&samples, 400, 160).frame_count(), 0);
    }

    #[test]
    fn frames_overlap_correctly() {
        let samples: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let frames = frame_signal(&samples, 400, 160);
        // Second frame starts 160 samples later.
        assert_eq!(frames[1][0], 160.0);
        assert_eq!(frames[2][0], 320.0);
        // Overlap region matches.
        assert_eq!(frames[0][160], frames[1][0]);
    }

    #[test]
    #[should_panic(expected = "frame_len")]
    fn zero_frame_len_panics() {
        let _ = FrameIter::new(&[0.0], 0, 1);
    }

    #[test]
    #[should_panic(expected = "frame_shift")]
    fn zero_frame_shift_panics() {
        let _ = FrameIter::new(&[0.0], 1, 0);
    }

    proptest! {
        #[test]
        fn prop_frame_count_formula(
            len in 0usize..5000,
            frame_len in 1usize..500,
            shift in 1usize..500,
        ) {
            let samples = vec![0.0f32; len];
            let frames = frame_signal(&samples, frame_len, shift);
            let expected = if len < frame_len { 0 } else { (len - frame_len) / shift + 1 };
            prop_assert_eq!(frames.len(), expected);
        }

        #[test]
        fn prop_pre_emphasis_preserves_length(xs in proptest::collection::vec(-1.0f32..1.0, 0..200)) {
            prop_assert_eq!(pre_emphasis(&xs, 0.97).len(), xs.len());
        }

        #[test]
        fn prop_hamming_bounded(n in 2usize..1000) {
            let w = hamming_window(n);
            prop_assert!(w.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }
}
