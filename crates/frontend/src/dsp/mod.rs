//! Signal-processing primitives used by the MFCC pipeline.
//!
//! Everything is implemented from scratch (no external DSP crates): windowing
//! and framing, a radix-2 complex FFT, the mel filter bank and the DCT-II.

pub mod dct;
pub mod fft;
pub mod mel;
pub mod window;

pub use dct::DctII;
pub use fft::{Complex, Fft};
pub use mel::{hz_to_mel, mel_to_hz, MelFilterBank};
pub use window::{frame_signal, hamming_window, pre_emphasis, FrameIter};
