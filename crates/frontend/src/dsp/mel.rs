//! Mel-scale triangular filter bank.

/// Converts a frequency in Hz to the mel scale.
///
/// Uses the O'Shaughnessy formula `mel = 2595·log10(1 + hz/700)`, the same
/// warping Sphinx-3 uses.
#[inline]
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts a mel-scale value back to Hz.
#[inline]
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10.0f32.powf(mel / 2595.0) - 1.0)
}

/// A bank of triangular filters spaced evenly on the mel scale.
///
/// # Example
///
/// ```
/// use asr_frontend::dsp::MelFilterBank;
/// let bank = MelFilterBank::new(40, 512, 16_000, 133.0, 6_855.0);
/// assert_eq!(bank.num_filters(), 40);
/// let spectrum = vec![1.0f32; 257];
/// let energies = bank.apply(&spectrum);
/// assert_eq!(energies.len(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct MelFilterBank {
    num_filters: usize,
    /// For each filter, (start_bin, weights) — only the non-zero span is stored.
    filters: Vec<(usize, Vec<f32>)>,
    num_bins: usize,
}

impl MelFilterBank {
    /// Builds a filter bank.
    ///
    /// * `num_filters` — number of triangular filters.
    /// * `fft_size` — FFT length used to produce the power spectrum; the bank
    ///   expects `fft_size / 2 + 1` bins.
    /// * `sample_rate_hz` — input sample rate.
    /// * `low_hz` / `high_hz` — edge frequencies of the bank.
    ///
    /// # Panics
    ///
    /// Panics if `num_filters == 0`, `fft_size < 2`, or the frequency range is
    /// empty or exceeds Nyquist.
    pub fn new(
        num_filters: usize,
        fft_size: usize,
        sample_rate_hz: u32,
        low_hz: f32,
        high_hz: f32,
    ) -> Self {
        assert!(num_filters > 0, "num_filters must be positive");
        assert!(fft_size >= 2, "fft_size must be >= 2");
        let nyquist = sample_rate_hz as f32 / 2.0;
        assert!(
            low_hz >= 0.0 && high_hz > low_hz && high_hz <= nyquist + 1.0,
            "invalid filter bank frequency range [{low_hz}, {high_hz}] for nyquist {nyquist}"
        );
        let num_bins = fft_size / 2 + 1;
        let low_mel = hz_to_mel(low_hz);
        let high_mel = hz_to_mel(high_hz);
        // num_filters + 2 edge points evenly spaced in mel.
        let edges_hz: Vec<f32> = (0..num_filters + 2)
            .map(|i| {
                mel_to_hz(low_mel + (high_mel - low_mel) * i as f32 / (num_filters + 1) as f32)
            })
            .collect();
        let hz_per_bin = sample_rate_hz as f32 / fft_size as f32;
        let bin_of = |hz: f32| -> f32 { hz / hz_per_bin };

        let mut filters = Vec::with_capacity(num_filters);
        for f in 0..num_filters {
            let left = bin_of(edges_hz[f]);
            let centre = bin_of(edges_hz[f + 1]);
            let right = bin_of(edges_hz[f + 2]);
            let start = left.ceil().max(0.0) as usize;
            let end = (right.floor() as usize).min(num_bins - 1);
            let mut weights = Vec::new();
            for bin in start..=end {
                let b = bin as f32;
                let w = if b <= centre {
                    if centre > left {
                        (b - left) / (centre - left)
                    } else {
                        0.0
                    }
                } else if right > centre {
                    (right - b) / (right - centre)
                } else {
                    0.0
                };
                weights.push(w.max(0.0));
            }
            filters.push((start, weights));
        }
        MelFilterBank {
            num_filters,
            filters,
            num_bins,
        }
    }

    /// Number of filters in the bank.
    pub fn num_filters(&self) -> usize {
        self.num_filters
    }

    /// Number of power-spectrum bins the bank expects.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Applies the bank to a power spectrum, returning one energy per filter.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum does not have [`MelFilterBank::num_bins`] bins.
    pub fn apply(&self, power_spectrum: &[f32]) -> Vec<f32> {
        assert_eq!(
            power_spectrum.len(),
            self.num_bins,
            "power spectrum length mismatch"
        );
        self.filters
            .iter()
            .map(|(start, weights)| {
                weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| w * power_spectrum[start + i])
                    .sum()
            })
            .collect()
    }

    /// Applies the bank and log-compresses the energies (natural log, with a
    /// floor to avoid `-inf` on silent frames).
    pub fn apply_log(&self, power_spectrum: &[f32], floor: f32) -> Vec<f32> {
        self.apply(power_spectrum)
            .into_iter()
            .map(|e| e.max(floor).ln())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mel_conversion_roundtrip() {
        for hz in [0.0f32, 100.0, 440.0, 1000.0, 4000.0, 8000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 0.5, "{hz} -> {back}");
        }
        // 1000 Hz is ~1000 mel by construction of the scale.
        assert!((hz_to_mel(1000.0) - 999.99).abs() < 1.0);
        // Monotonicity.
        assert!(hz_to_mel(200.0) < hz_to_mel(300.0));
    }

    #[test]
    fn bank_shape() {
        let bank = MelFilterBank::new(40, 512, 16_000, 133.33, 6855.5);
        assert_eq!(bank.num_filters(), 40);
        assert_eq!(bank.num_bins(), 257);
        let energies = bank.apply(&vec![1.0; 257]);
        assert_eq!(energies.len(), 40);
        // Every filter should capture some energy from a flat spectrum.
        assert!(energies.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn filters_respond_to_their_band() {
        let bank = MelFilterBank::new(20, 512, 16_000, 100.0, 8000.0);
        // Put energy only in bin 40 (≈ 1250 Hz); nearby filters should respond,
        // far ones should not.
        let mut spectrum = vec![0.0f32; 257];
        spectrum[40] = 100.0;
        let energies = bank.apply(&spectrum);
        let responding: Vec<usize> = energies
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!responding.is_empty());
        assert!(
            responding.len() <= 3,
            "at most two adjacent filters overlap a bin"
        );
        // Low and high extremes see nothing.
        assert_eq!(energies[0], 0.0);
        assert_eq!(energies[19], 0.0);
    }

    #[test]
    fn log_compression_floors_silence() {
        let bank = MelFilterBank::new(10, 256, 16_000, 100.0, 8000.0);
        let log_e = bank.apply_log(&vec![0.0; 129], 1e-10);
        assert!(log_e.iter().all(|v| v.is_finite()));
        assert!(log_e.iter().all(|&v| (v - (1e-10f32).ln()).abs() < 1e-3));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_spectrum_length_panics() {
        let bank = MelFilterBank::new(10, 256, 16_000, 100.0, 8000.0);
        bank.apply(&[0.0; 10]);
    }

    #[test]
    #[should_panic(expected = "invalid filter bank frequency range")]
    fn bad_range_panics() {
        MelFilterBank::new(10, 256, 16_000, 5000.0, 1000.0);
    }

    proptest! {
        #[test]
        fn prop_energy_nonnegative(spec in proptest::collection::vec(0.0f32..10.0, 129)) {
            let bank = MelFilterBank::new(12, 256, 16_000, 100.0, 8000.0);
            let e = bank.apply(&spec);
            prop_assert!(e.iter().all(|&v| v >= 0.0));
        }

        #[test]
        fn prop_linearity_in_spectrum(spec in proptest::collection::vec(0.0f32..10.0, 129), k in 0.1f32..5.0) {
            let bank = MelFilterBank::new(12, 256, 16_000, 100.0, 8000.0);
            let base = bank.apply(&spec);
            let scaled_spec: Vec<f32> = spec.iter().map(|&v| v * k).collect();
            let scaled = bank.apply(&scaled_spec);
            for (b, s) in base.iter().zip(&scaled) {
                prop_assert!((b * k - s).abs() < 1e-2 * (1.0 + b * k));
            }
        }

        #[test]
        fn prop_mel_monotone(a in 0.0f32..8000.0, b in 0.0f32..8000.0) {
            if a < b {
                prop_assert!(hz_to_mel(a) <= hz_to_mel(b));
            }
        }
    }
}
