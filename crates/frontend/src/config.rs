//! Frontend configuration.

use core::fmt;

/// Errors produced while configuring or running the frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// The configuration contained an invalid value.
    InvalidConfig(String),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::InvalidConfig(msg) => write!(f, "invalid frontend config: {msg}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Configuration of the MFCC frontend.
///
/// The defaults mirror the Sphinx-3 frontend the paper used: 16 kHz input,
/// 25 ms analysis window, 10 ms shift, 40 mel filters, 13 cepstra, deltas and
/// delta-deltas appended for a 39-dimensional feature vector.
///
/// # Example
///
/// ```
/// use asr_frontend::FrontendConfig;
/// let cfg = FrontendConfig::default();
/// assert_eq!(cfg.frame_length_samples(), 400);
/// assert_eq!(cfg.frame_shift_samples(), 160);
/// assert_eq!(cfg.feature_dim(), 39);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendConfig {
    /// Input sample rate in Hz.
    pub sample_rate_hz: u32,
    /// Analysis window length in milliseconds (the paper: "typically 25 msecs").
    pub frame_length_ms: f32,
    /// Frame shift in milliseconds (the paper: "typically spaced 10 msecs").
    pub frame_shift_ms: f32,
    /// Pre-emphasis coefficient (0 disables pre-emphasis).
    pub pre_emphasis: f32,
    /// Number of triangular mel filters.
    pub num_mel_filters: usize,
    /// Number of cepstral coefficients kept after the DCT (including C0).
    pub num_cepstra: usize,
    /// Lowest filterbank edge frequency in Hz.
    pub low_freq_hz: f32,
    /// Highest filterbank edge frequency in Hz (`None` → Nyquist).
    pub high_freq_hz: Option<f32>,
    /// Whether delta (velocity) coefficients are appended.
    pub use_delta: bool,
    /// Whether delta-delta (acceleration) coefficients are appended.
    pub use_delta_delta: bool,
    /// Window (in frames) used on each side when estimating deltas.
    pub delta_window: usize,
    /// Whether cepstral mean normalisation is applied per utterance.
    pub cepstral_mean_norm: bool,
    /// Weight, in frames, of the initial mean estimate when CMN runs in
    /// *live* (streaming) mode: the running mean is blended with
    /// [`FrontendConfig::cmn_prior_mean`] as if the prior had already been
    /// observed for this many frames, so early frames are not over-corrected.
    /// 0 trusts the observed running mean immediately.  Ignored by the batch
    /// (whole-utterance) path.
    pub cmn_prior_frames: f64,
    /// Initial per-coefficient mean estimate for live CMN (`None` → zeros).
    /// Must have [`FrontendConfig::num_cepstra`] entries when set.  Ignored
    /// by the batch path.
    pub cmn_prior_mean: Option<Vec<f64>>,
    /// Dither amplitude added to the signal to avoid log(0) on digital silence.
    pub dither: f32,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            sample_rate_hz: 16_000,
            frame_length_ms: 25.0,
            frame_shift_ms: 10.0,
            pre_emphasis: 0.97,
            num_mel_filters: 40,
            num_cepstra: 13,
            low_freq_hz: 133.333_3,
            high_freq_hz: Some(6_855.5),
            use_delta: true,
            use_delta_delta: true,
            delta_window: 2,
            cepstral_mean_norm: true,
            cmn_prior_frames: 100.0,
            cmn_prior_mean: None,
            dither: 1.0e-6,
        }
    }
}

impl FrontendConfig {
    /// Analysis window length in samples.
    pub fn frame_length_samples(&self) -> usize {
        (self.sample_rate_hz as f32 * self.frame_length_ms / 1000.0).round() as usize
    }

    /// Frame shift in samples.
    pub fn frame_shift_samples(&self) -> usize {
        (self.sample_rate_hz as f32 * self.frame_shift_ms / 1000.0).round() as usize
    }

    /// FFT size: the smallest power of two that holds one analysis window.
    pub fn fft_size(&self) -> usize {
        self.frame_length_samples().next_power_of_two()
    }

    /// Number of frames produced per second of audio.
    pub fn frames_per_second(&self) -> f32 {
        1000.0 / self.frame_shift_ms
    }

    /// Dimension of the final feature vector
    /// (cepstra, optionally + deltas + delta-deltas).
    pub fn feature_dim(&self) -> usize {
        let mut dim = self.num_cepstra;
        if self.use_delta {
            dim += self.num_cepstra;
        }
        if self.use_delta_delta {
            dim += self.num_cepstra;
        }
        dim
    }

    /// Effective upper filterbank edge.
    pub fn effective_high_freq(&self) -> f32 {
        self.high_freq_hz
            .unwrap_or(self.sample_rate_hz as f32 / 2.0)
            .min(self.sample_rate_hz as f32 / 2.0)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::InvalidConfig`] when any dimension is zero,
    /// the window is shorter than the shift, or the filterbank edges are
    /// inconsistent with the sample rate.
    pub fn validate(&self) -> Result<(), FrontendError> {
        if self.sample_rate_hz == 0 {
            return Err(FrontendError::InvalidConfig("sample_rate_hz == 0".into()));
        }
        if self.frame_length_ms <= 0.0 || self.frame_shift_ms <= 0.0 {
            return Err(FrontendError::InvalidConfig(
                "frame length and shift must be positive".into(),
            ));
        }
        if self.frame_length_ms < self.frame_shift_ms {
            return Err(FrontendError::InvalidConfig(
                "frame length must be >= frame shift (overlapping blocks)".into(),
            ));
        }
        if self.num_mel_filters == 0 {
            return Err(FrontendError::InvalidConfig("num_mel_filters == 0".into()));
        }
        if self.num_cepstra == 0 || self.num_cepstra > self.num_mel_filters {
            return Err(FrontendError::InvalidConfig(
                "num_cepstra must be in 1..=num_mel_filters".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.pre_emphasis) {
            return Err(FrontendError::InvalidConfig(
                "pre_emphasis must be in [0, 1)".into(),
            ));
        }
        let nyquist = self.sample_rate_hz as f32 / 2.0;
        if self.low_freq_hz < 0.0 || self.low_freq_hz >= nyquist {
            return Err(FrontendError::InvalidConfig(
                "low_freq_hz must be in [0, nyquist)".into(),
            ));
        }
        if let Some(hi) = self.high_freq_hz {
            if hi <= self.low_freq_hz {
                return Err(FrontendError::InvalidConfig(
                    "high_freq_hz must exceed low_freq_hz".into(),
                ));
            }
        }
        if self.use_delta && self.delta_window == 0 {
            return Err(FrontendError::InvalidConfig(
                "delta_window must be >= 1 when deltas are enabled".into(),
            ));
        }
        if !self.cmn_prior_frames.is_finite() || self.cmn_prior_frames < 0.0 {
            return Err(FrontendError::InvalidConfig(
                "cmn_prior_frames must be finite and non-negative".into(),
            ));
        }
        if let Some(prior) = &self.cmn_prior_mean {
            if prior.len() != self.num_cepstra {
                return Err(FrontendError::InvalidConfig(format!(
                    "cmn_prior_mean has {} entries but num_cepstra is {}",
                    prior.len(),
                    self.num_cepstra
                )));
            }
            if prior.iter().any(|v| !v.is_finite()) {
                return Err(FrontendError::InvalidConfig(
                    "cmn_prior_mean entries must be finite".into(),
                ));
            }
        }
        Ok(())
    }

    /// Builds the live (streaming) CMN normaliser this configuration
    /// describes, over [`FrontendConfig::num_cepstra`] coefficients.
    ///
    /// # Panics
    ///
    /// Panics on an invalid prior; call [`FrontendConfig::validate`] first
    /// (every frontend constructor does).
    pub fn live_cmn(&self) -> crate::CepstralMeanNorm {
        crate::CepstralMeanNorm::with_prior(
            self.num_cepstra,
            self.cmn_prior_frames,
            self.cmn_prior_mean.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_frame_geometry() {
        let cfg = FrontendConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.frame_length_samples(), 400); // 25 ms @ 16 kHz
        assert_eq!(cfg.frame_shift_samples(), 160); // 10 ms @ 16 kHz
        assert_eq!(cfg.fft_size(), 512);
        assert_eq!(cfg.feature_dim(), 39);
        assert!((cfg.frames_per_second() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn feature_dim_combinations() {
        let mut cfg = FrontendConfig {
            use_delta: false,
            use_delta_delta: false,
            ..FrontendConfig::default()
        };
        assert_eq!(cfg.feature_dim(), 13);
        cfg.use_delta = true;
        assert_eq!(cfg.feature_dim(), 26);
        cfg.use_delta_delta = true;
        assert_eq!(cfg.feature_dim(), 39);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = FrontendConfig::default();
        let mut c = base.clone();
        c.sample_rate_hz = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.frame_shift_ms = 30.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.num_cepstra = 100;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.num_mel_filters = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.pre_emphasis = 1.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.low_freq_hz = 9_000.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.high_freq_hz = Some(10.0);
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.delta_window = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.frame_length_ms = -1.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.cmn_prior_frames = -1.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.cmn_prior_frames = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.cmn_prior_mean = Some(vec![0.0; 3]); // needs num_cepstra = 13 entries
        assert!(c.validate().is_err());
        let mut c = base;
        c.cmn_prior_mean = Some(vec![f64::INFINITY; 13]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn live_cmn_builder_applies_the_configured_prior() {
        let cfg = FrontendConfig {
            cmn_prior_frames: 25.0,
            cmn_prior_mean: Some(vec![1.5; 13]),
            ..FrontendConfig::default()
        };
        cfg.validate().unwrap();
        let cmn = cfg.live_cmn();
        assert_eq!(cmn.dim(), 13);
        assert_eq!(cmn.prior_frames(), 25.0);
        assert_eq!(cmn.prior_mean(), &[1.5f64; 13][..]);
        // The default prior matches the historical hardcoded values.
        let default_cmn = FrontendConfig::default().live_cmn();
        assert_eq!(default_cmn.prior_frames(), 100.0);
        assert!(default_cmn.prior_mean().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn high_freq_clamps_to_nyquist() {
        let mut cfg = FrontendConfig {
            high_freq_hz: Some(100_000.0),
            ..FrontendConfig::default()
        };
        assert_eq!(cfg.effective_high_freq(), 8_000.0);
        cfg.high_freq_hz = None;
        assert_eq!(cfg.effective_high_freq(), 8_000.0);
    }

    #[test]
    fn error_display() {
        let e = FrontendError::InvalidConfig("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
