//! # asr-lexicon — dictionary, lexical tree and language model
//!
//! The software side of the paper's word-decode and global-best-path stages
//! needs three knowledge sources, all stored in flash and accessed through a
//! DMA interface:
//!
//! * a **phone set** (the paper cites 51 phones for English),
//! * a **pronunciation dictionary** mapping words to phone sequences —
//!   the paper sizes a 20 000-word Wall Street Journal dictionary at ≈ 9 Mb
//!   plus ≈ 2 Mb of word-ID → ASCII mapping,
//! * an **n-gram language model** used by the global best path search.
//!
//! This crate provides all three, plus the lexical prefix tree the word-decode
//! stage walks to know which triphones (and therefore which senones) can
//! possibly start or continue a word — the source of the "Phones for
//! evaluation" feedback in Figure 1 of the paper.
//!
//! # Example
//!
//! ```
//! use asr_lexicon::{Dictionary, PhoneSet, Pronunciation};
//!
//! let phones = PhoneSet::english_51();
//! let mut dict = Dictionary::new();
//! let p = phones.id_of("AH").unwrap();
//! let t = phones.id_of("T").unwrap();
//! dict.add_word("at", Pronunciation::new(vec![p, t])).unwrap();
//! assert_eq!(dict.len(), 1);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod dictionary;
pub mod lextree;
pub mod ngram;
pub mod phone;

pub use dictionary::{Dictionary, DictionaryStorage, Pronunciation, WordId};
pub use lextree::{LexNodeId, LexTree};
pub use ngram::{NGramModel, NGramOrder};
pub use phone::PhoneSet;

/// Errors produced by lexicon construction and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum LexiconError {
    /// A word was added twice or referenced before being added.
    UnknownWord(String),
    /// A pronunciation was empty or referenced an unknown phone.
    InvalidPronunciation(String),
    /// An n-gram model parameter was invalid.
    InvalidModel(String),
}

impl core::fmt::Display for LexiconError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LexiconError::UnknownWord(w) => write!(f, "unknown word: {w}"),
            LexiconError::InvalidPronunciation(msg) => write!(f, "invalid pronunciation: {msg}"),
            LexiconError::InvalidModel(msg) => write!(f, "invalid language model: {msg}"),
        }
    }
}

impl std::error::Error for LexiconError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(LexiconError::UnknownWord("hello".into())
            .to_string()
            .contains("hello"));
        assert!(LexiconError::InvalidPronunciation("empty".into())
            .to_string()
            .contains("empty"));
        assert!(LexiconError::InvalidModel("order".into())
            .to_string()
            .contains("order"));
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Dictionary>();
        assert_send_sync::<LexTree>();
        assert_send_sync::<NGramModel>();
        assert_send_sync::<PhoneSet>();
    }
}
