//! Pronunciation dictionary and its flash storage accounting.
//!
//! The paper: "The memory requirement for the dictionary of 20,000 words
//! (Wall Street Journal, with average of 9 triphones per word) with 3 state
//! HMM is around 11 Mb (9 Mb for dictionary and 2 Mb of word ID to ASCII
//! mapping)."  [`DictionaryStorage`] reproduces that accounting.

use crate::LexiconError;
use asr_acoustic::{PhoneId, Triphone};
use std::collections::HashMap;

/// Identifier of a word in a [`Dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(pub u32);

impl WordId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for WordId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "word#{}", self.0)
    }
}

/// A pronunciation: a non-empty sequence of phones.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pronunciation {
    phones: Vec<PhoneId>,
}

impl Pronunciation {
    /// Creates a pronunciation from a phone sequence.
    pub fn new(phones: Vec<PhoneId>) -> Self {
        Pronunciation { phones }
    }

    /// The phone sequence.
    pub fn phones(&self) -> &[PhoneId] {
        &self.phones
    }

    /// Number of phones.
    pub fn len(&self) -> usize {
        self.phones.len()
    }

    /// Returns `true` if the pronunciation has no phones.
    pub fn is_empty(&self) -> bool {
        self.phones.is_empty()
    }

    /// Expands the pronunciation into word-internal triphones, using the
    /// given left/right word-boundary contexts (typically silence or the
    /// adjacent word's edge phones).
    pub fn triphones(&self, left_context: PhoneId, right_context: PhoneId) -> Vec<Triphone> {
        let n = self.phones.len();
        (0..n)
            .map(|i| {
                let left = if i == 0 {
                    left_context
                } else {
                    self.phones[i - 1]
                };
                let right = if i + 1 == n {
                    right_context
                } else {
                    self.phones[i + 1]
                };
                Triphone::new(self.phones[i], left, right)
            })
            .collect()
    }
}

/// A word → pronunciation dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    words: Vec<(String, Pronunciation)>,
    index: HashMap<String, WordId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the dictionary has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Adds a word.
    ///
    /// # Errors
    ///
    /// Returns [`LexiconError::InvalidPronunciation`] for an empty
    /// pronunciation and [`LexiconError::UnknownWord`] (reused as "duplicate")
    /// if the spelling is already present.
    pub fn add_word(
        &mut self,
        spelling: &str,
        pronunciation: Pronunciation,
    ) -> Result<WordId, LexiconError> {
        if pronunciation.is_empty() {
            return Err(LexiconError::InvalidPronunciation(format!(
                "word '{spelling}' has an empty pronunciation"
            )));
        }
        if self.index.contains_key(spelling) {
            return Err(LexiconError::UnknownWord(format!(
                "word '{spelling}' already in dictionary"
            )));
        }
        let id = WordId(self.words.len() as u32);
        self.index.insert(spelling.to_string(), id);
        self.words.push((spelling.to_string(), pronunciation));
        Ok(id)
    }

    /// Looks up a word id by spelling.
    pub fn id_of(&self, spelling: &str) -> Option<WordId> {
        self.index.get(spelling).copied()
    }

    /// The spelling of a word (the "word ID to ASCII mapping" of the paper).
    pub fn spelling(&self, id: WordId) -> Option<&str> {
        self.words.get(id.index()).map(|(s, _)| s.as_str())
    }

    /// The pronunciation of a word.
    pub fn pronunciation(&self, id: WordId) -> Option<&Pronunciation> {
        self.words.get(id.index()).map(|(_, p)| p)
    }

    /// Iterates over `(id, spelling, pronunciation)`.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str, &Pronunciation)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, (s, p))| (WordId(i as u32), s.as_str(), p))
    }

    /// Average number of phones per word (≈ triphones per word, since every
    /// phone becomes one triphone).
    pub fn mean_phones_per_word(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.words.iter().map(|(_, p)| p.len() as f64).sum::<f64>() / self.words.len() as f64
    }

    /// Flash storage accounting for this dictionary.
    pub fn storage(&self, states_per_triphone: usize) -> DictionaryStorage {
        let total_triphones: usize = self.words.iter().map(|(_, p)| p.len()).sum();
        let ascii_bytes: usize = self.words.iter().map(|(s, _)| s.len() + 1).sum();
        DictionaryStorage {
            num_words: self.words.len(),
            total_triphone_entries: total_triphones,
            states_per_triphone,
            ascii_bytes,
        }
    }
}

/// Flash-storage accounting for a dictionary, following the paper's sizing.
///
/// Each triphone entry in a word's pronunciation stores one senone-sequence
/// pointer per HMM state plus the triphone identity; at the paper's 20 000
/// words × ~9 triphones × 3 states this comes to ≈ 9 Mb, with ≈ 2 Mb more for
/// the word-ID → ASCII table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictionaryStorage {
    /// Number of words.
    pub num_words: usize,
    /// Total triphone entries across all pronunciations.
    pub total_triphone_entries: usize,
    /// HMM states per triphone (3 in the paper's sizing).
    pub states_per_triphone: usize,
    /// Bytes of ASCII spellings (including terminators).
    pub ascii_bytes: usize,
}

impl DictionaryStorage {
    /// Bits stored per triphone entry: a 16-bit senone index per state plus a
    /// 2-bit triphone-position tag — ≈ 50 bits at 3 states, which reproduces
    /// the paper's 9 Mb for 180 000 entries.
    pub fn bits_per_triphone_entry(&self) -> usize {
        16 * self.states_per_triphone + 2
    }

    /// Dictionary (pronunciation network) size in megabits.
    pub fn dictionary_megabits(&self) -> f64 {
        (self.total_triphone_entries * self.bits_per_triphone_entry()) as f64 / 1.0e6
    }

    /// Word-ID → ASCII mapping size in megabits.
    pub fn word_map_megabits(&self) -> f64 {
        (self.ascii_bytes * 8) as f64 / 1.0e6
    }

    /// Total size in megabits (the paper's ≈ 11 Mb figure).
    pub fn total_megabits(&self) -> f64 {
        self.dictionary_megabits() + self.word_map_megabits()
    }

    /// The paper's sizing exercise: 20 000 words, 9 triphones/word average,
    /// 3-state HMMs, ~12.5 ASCII characters per word entry.
    pub fn paper_estimate() -> DictionaryStorage {
        DictionaryStorage {
            num_words: 20_000,
            total_triphone_entries: 20_000 * 9,
            states_per_triphone: 3,
            ascii_bytes: 20_000 * 12 + 20_000 / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u16]) -> Pronunciation {
        Pronunciation::new(ids.iter().map(|&i| PhoneId(i)).collect())
    }

    #[test]
    fn add_and_lookup() {
        let mut d = Dictionary::new();
        assert!(d.is_empty());
        let cat = d.add_word("cat", p(&[1, 2, 3])).unwrap();
        let dog = d.add_word("dog", p(&[4, 5, 6])).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.id_of("cat"), Some(cat));
        assert_eq!(d.id_of("dog"), Some(dog));
        assert_eq!(d.id_of("bird"), None);
        assert_eq!(d.spelling(cat), Some("cat"));
        assert_eq!(d.pronunciation(dog).unwrap().len(), 3);
        assert_eq!(d.iter().count(), 2);
        assert_eq!(d.spelling(WordId(99)), None);
        assert_eq!(format!("{cat}"), "word#0");
        assert_eq!(cat.index(), 0);
        assert!((d.mean_phones_per_word() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_words() {
        let mut d = Dictionary::new();
        assert!(d.add_word("empty", Pronunciation::new(vec![])).is_err());
        d.add_word("cat", p(&[1])).unwrap();
        assert!(d.add_word("cat", p(&[2])).is_err());
        assert_eq!(Dictionary::default().mean_phones_per_word(), 0.0);
    }

    #[test]
    fn pronunciation_triphone_expansion() {
        let pron = p(&[10, 11, 12]);
        let tris = pron.triphones(PhoneId(0), PhoneId(0));
        assert_eq!(tris.len(), 3);
        assert_eq!(tris[0], Triphone::new(PhoneId(10), PhoneId(0), PhoneId(11)));
        assert_eq!(
            tris[1],
            Triphone::new(PhoneId(11), PhoneId(10), PhoneId(12))
        );
        assert_eq!(tris[2], Triphone::new(PhoneId(12), PhoneId(11), PhoneId(0)));
        // Single-phone word takes both contexts from the boundaries.
        let single = p(&[7]).triphones(PhoneId(1), PhoneId(2));
        assert_eq!(
            single,
            vec![Triphone::new(PhoneId(7), PhoneId(1), PhoneId(2))]
        );
        assert!(!pron.is_empty());
        assert_eq!(pron.phones().len(), 3);
    }

    #[test]
    fn paper_dictionary_sizing() {
        // E1-adjacent check: the 20 000-word WSJ dictionary is ≈ 9 Mb + 2 Mb.
        let s = DictionaryStorage::paper_estimate();
        assert_eq!(s.bits_per_triphone_entry(), 50);
        assert!(
            (s.dictionary_megabits() - 9.0).abs() < 0.1,
            "{}",
            s.dictionary_megabits()
        );
        assert!(
            (s.word_map_megabits() - 2.0).abs() < 0.1,
            "{}",
            s.word_map_megabits()
        );
        assert!(
            (s.total_megabits() - 11.0).abs() < 0.2,
            "{}",
            s.total_megabits()
        );
    }

    #[test]
    fn storage_from_real_dictionary() {
        let mut d = Dictionary::new();
        d.add_word("alpha", p(&[1, 2, 3, 4])).unwrap();
        d.add_word("be", p(&[5, 6])).unwrap();
        let s = d.storage(3);
        assert_eq!(s.num_words, 2);
        assert_eq!(s.total_triphone_entries, 6);
        assert_eq!(s.ascii_bytes, 6 + 3);
        assert!(s.total_megabits() > 0.0);
    }
}
