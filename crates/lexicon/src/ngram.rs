//! Back-off n-gram language model.
//!
//! The global best path search "iterates over the word lattice and combines
//! the language model to produce the utterance".  This module provides a
//! unigram/bigram/trigram model with Katz-style back-off, built either from
//! explicit probabilities or estimated from a text corpus with add-one
//! discounting (used by the synthetic task generator).

use crate::dictionary::WordId;
use crate::LexiconError;
use asr_float::LogProb;
use std::collections::HashMap;

/// Maximum n-gram order supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NGramOrder {
    /// Unigram (context-free word priors).
    Unigram,
    /// Bigram (one word of history).
    Bigram,
    /// Trigram (two words of history).
    Trigram,
}

impl NGramOrder {
    /// The numeric order (1, 2 or 3).
    pub fn order(self) -> usize {
        match self {
            NGramOrder::Unigram => 1,
            NGramOrder::Bigram => 2,
            NGramOrder::Trigram => 3,
        }
    }
}

/// A back-off n-gram language model over [`WordId`]s.
///
/// Sentence boundaries are modelled with the special [`NGramModel::BOS`] /
/// [`NGramModel::EOS`] pseudo-words.
#[derive(Debug, Clone)]
pub struct NGramModel {
    order: NGramOrder,
    vocab_size: usize,
    unigrams: HashMap<WordId, LogProb>,
    bigrams: HashMap<(WordId, WordId), LogProb>,
    trigrams: HashMap<(WordId, WordId, WordId), LogProb>,
    /// Back-off weights per history.
    bigram_backoff: HashMap<WordId, LogProb>,
    trigram_backoff: HashMap<(WordId, WordId), LogProb>,
    /// Probability assigned to a word never seen in training.
    unseen: LogProb,
}

impl NGramModel {
    /// Beginning-of-sentence pseudo-word.
    pub const BOS: WordId = WordId(u32::MAX - 1);
    /// End-of-sentence pseudo-word.
    pub const EOS: WordId = WordId(u32::MAX);

    /// Creates a uniform unigram model over a vocabulary of `vocab_size`
    /// words (every word equally likely) — the fallback when no LM training
    /// text is available.
    ///
    /// # Errors
    ///
    /// Returns [`LexiconError::InvalidModel`] if `vocab_size == 0`.
    pub fn uniform(vocab_size: usize) -> Result<Self, LexiconError> {
        if vocab_size == 0 {
            return Err(LexiconError::InvalidModel("vocabulary is empty".into()));
        }
        let p = LogProb::from_linear(1.0 / vocab_size as f64);
        let unigrams = (0..vocab_size as u32)
            .map(|w| (WordId(w), p))
            .chain([(Self::EOS, p)])
            .collect();
        Ok(NGramModel {
            order: NGramOrder::Unigram,
            vocab_size,
            unigrams,
            bigrams: HashMap::new(),
            trigrams: HashMap::new(),
            bigram_backoff: HashMap::new(),
            trigram_backoff: HashMap::new(),
            unseen: p,
        })
    }

    /// Estimates a model of the given order from training sentences
    /// (sequences of word ids, without BOS/EOS which are added internally),
    /// using add-one smoothing for the n-gram probabilities and unit back-off
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`LexiconError::InvalidModel`] if `vocab_size == 0` or the
    /// training data is empty.
    pub fn train(
        order: NGramOrder,
        vocab_size: usize,
        sentences: &[Vec<WordId>],
    ) -> Result<Self, LexiconError> {
        if vocab_size == 0 {
            return Err(LexiconError::InvalidModel("vocabulary is empty".into()));
        }
        if sentences.is_empty() || sentences.iter().all(|s| s.is_empty()) {
            return Err(LexiconError::InvalidModel("no training sentences".into()));
        }
        let v = vocab_size as f64 + 1.0; // + EOS
        let mut uni_counts: HashMap<WordId, u64> = HashMap::new();
        let mut bi_counts: HashMap<(WordId, WordId), u64> = HashMap::new();
        let mut tri_counts: HashMap<(WordId, WordId, WordId), u64> = HashMap::new();
        let mut hist1_counts: HashMap<WordId, u64> = HashMap::new();
        let mut hist2_counts: HashMap<(WordId, WordId), u64> = HashMap::new();
        let mut total_words = 0u64;

        for s in sentences {
            if s.is_empty() {
                continue;
            }
            let padded: Vec<WordId> = [Self::BOS, Self::BOS]
                .into_iter()
                .chain(s.iter().copied())
                .chain([Self::EOS])
                .collect();
            for i in 2..padded.len() {
                let w = padded[i];
                let h1 = padded[i - 1];
                let h2 = padded[i - 2];
                *uni_counts.entry(w).or_default() += 1;
                total_words += 1;
                *hist1_counts.entry(h1).or_default() += 1;
                *bi_counts.entry((h1, w)).or_default() += 1;
                if order == NGramOrder::Trigram {
                    *hist2_counts.entry((h2, h1)).or_default() += 1;
                    *tri_counts.entry((h2, h1, w)).or_default() += 1;
                }
            }
        }

        let unigrams: HashMap<WordId, LogProb> = uni_counts
            .iter()
            .map(|(&w, &c)| {
                (
                    w,
                    LogProb::from_linear((c as f64 + 1.0) / (total_words as f64 + v)),
                )
            })
            .collect();
        let unseen = LogProb::from_linear(1.0 / (total_words as f64 + v));

        // Helper shared by the back-off weight computations below.
        let uni_prob = |w: WordId| -> f64 {
            uni_counts
                .get(&w)
                .map(|&c| (c as f64 + 1.0) / (total_words as f64 + v))
                .unwrap_or(1.0 / (total_words as f64 + v))
        };

        let mut bigrams = HashMap::new();
        let mut bigram_backoff = HashMap::new();
        if order >= NGramOrder::Bigram {
            for (&(h, w), &c) in &bi_counts {
                let hist = *hist1_counts.get(&h).unwrap_or(&0);
                bigrams.insert(
                    (h, w),
                    LogProb::from_linear((c as f64 + 1.0) / (hist as f64 + v)),
                );
            }
            // Katz-style back-off weight: the probability mass not claimed by
            // seen bigrams, redistributed over the unigram mass of the words
            // not seen after this history, so Σ_w p(w | h) ≤ 1.
            for &h in hist1_counts.keys() {
                let mut seen_sum = 0.0f64;
                let mut seen_uni_sum = 0.0f64;
                for (&(hh, w), p) in &bigrams {
                    if hh == h {
                        seen_sum += p.to_linear();
                        seen_uni_sum += uni_prob(w);
                    }
                }
                let weight = if seen_uni_sum < 1.0 {
                    ((1.0 - seen_sum).max(0.0)) / (1.0 - seen_uni_sum)
                } else {
                    0.0
                };
                bigram_backoff.insert(h, LogProb::from_linear(weight.min(1.0)));
            }
        }

        let mut trigrams = HashMap::new();
        let mut trigram_backoff = HashMap::new();
        if order == NGramOrder::Trigram {
            for (&(h2, h1, w), &c) in &tri_counts {
                let hist = *hist2_counts.get(&(h2, h1)).unwrap_or(&0);
                trigrams.insert(
                    (h2, h1, w),
                    LogProb::from_linear((c as f64 + 1.0) / (hist as f64 + v)),
                );
            }
            // Bigram-level conditional used when a trigram is unseen.
            let bigram_cond = |h1: WordId, w: WordId| -> f64 {
                if let Some(p) = bigrams.get(&(h1, w)) {
                    p.to_linear()
                } else {
                    let backoff = bigram_backoff
                        .get(&h1)
                        .map(|b| b.to_linear())
                        .unwrap_or(1.0);
                    backoff * uni_prob(w)
                }
            };
            for &(h2, h1) in hist2_counts.keys() {
                let mut seen_sum = 0.0f64;
                let mut seen_lower_sum = 0.0f64;
                for (&(t2, t1, w), p) in &trigrams {
                    if t2 == h2 && t1 == h1 {
                        seen_sum += p.to_linear();
                        seen_lower_sum += bigram_cond(h1, w);
                    }
                }
                let weight = if seen_lower_sum < 1.0 {
                    ((1.0 - seen_sum).max(0.0)) / (1.0 - seen_lower_sum)
                } else {
                    0.0
                };
                trigram_backoff.insert((h2, h1), LogProb::from_linear(weight.min(1.0)));
            }
        }

        Ok(NGramModel {
            order,
            vocab_size,
            unigrams,
            bigrams,
            trigrams,
            bigram_backoff,
            trigram_backoff,
            unseen,
        })
    }

    /// The model order.
    pub fn order(&self) -> NGramOrder {
        self.order
    }

    /// Vocabulary size the model was built for.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Unigram log probability of a word.
    pub fn unigram(&self, w: WordId) -> LogProb {
        *self.unigrams.get(&w).unwrap_or(&self.unseen)
    }

    /// Log probability of `w` given up to two words of history
    /// (`history` ordered oldest → newest), backing off to lower orders when
    /// the exact n-gram was never seen.
    pub fn log_prob(&self, history: &[WordId], w: WordId) -> LogProb {
        match self.order {
            NGramOrder::Unigram => self.unigram(w),
            NGramOrder::Bigram => {
                let h1 = history.last().copied().unwrap_or(Self::BOS);
                if let Some(&p) = self.bigrams.get(&(h1, w)) {
                    p
                } else {
                    let backoff = self
                        .bigram_backoff
                        .get(&h1)
                        .copied()
                        .unwrap_or(LogProb::ONE);
                    backoff + self.unigram(w)
                }
            }
            NGramOrder::Trigram => {
                let h1 = history.last().copied().unwrap_or(Self::BOS);
                let h2 = if history.len() >= 2 {
                    history[history.len() - 2]
                } else {
                    Self::BOS
                };
                if let Some(&p) = self.trigrams.get(&(h2, h1, w)) {
                    return p;
                }
                let backoff3 = self
                    .trigram_backoff
                    .get(&(h2, h1))
                    .copied()
                    .unwrap_or(LogProb::ONE);
                if let Some(&p) = self.bigrams.get(&(h1, w)) {
                    backoff3 + p
                } else {
                    let backoff2 = self
                        .bigram_backoff
                        .get(&h1)
                        .copied()
                        .unwrap_or(LogProb::ONE);
                    backoff3 + backoff2 + self.unigram(w)
                }
            }
        }
    }

    /// Log probability of a whole sentence (BOS/EOS handled internally).
    pub fn sentence_log_prob(&self, sentence: &[WordId]) -> LogProb {
        let mut history: Vec<WordId> = vec![Self::BOS, Self::BOS];
        let mut total = LogProb::ONE;
        for &w in sentence.iter().chain([&Self::EOS]) {
            total += self.log_prob(&history, w);
            history.push(w);
        }
        total
    }

    /// Perplexity of the model on held-out sentences (lower is better).
    pub fn perplexity(&self, sentences: &[Vec<WordId>]) -> f64 {
        let mut total_logprob = 0.0f64;
        let mut total_words = 0usize;
        for s in sentences {
            total_logprob += self.sentence_log_prob(s).raw() as f64;
            total_words += s.len() + 1; // + EOS
        }
        if total_words == 0 {
            return f64::INFINITY;
        }
        (-total_logprob / total_words as f64).exp()
    }

    /// Number of explicitly stored n-gram parameters (used for the flash
    /// storage accounting of the language model).
    pub fn param_count(&self) -> usize {
        self.unigrams.len() + self.bigrams.len() + self.trigrams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WordId {
        WordId(i)
    }

    fn training_data() -> Vec<Vec<WordId>> {
        // A tiny corpus over words 0..5 with a strong 0 → 1 → 2 pattern.
        vec![
            vec![w(0), w(1), w(2)],
            vec![w(0), w(1), w(2), w(3)],
            vec![w(0), w(1), w(4)],
            vec![w(3), w(4)],
            vec![w(0), w(1), w(2)],
        ]
    }

    #[test]
    fn uniform_model() {
        let lm = NGramModel::uniform(100).unwrap();
        assert_eq!(lm.order(), NGramOrder::Unigram);
        assert_eq!(lm.vocab_size(), 100);
        let p = lm.unigram(w(3));
        assert!((p.to_linear() - 0.01).abs() < 1e-9);
        // Unknown words get the same probability in a uniform model.
        assert_eq!(lm.log_prob(&[], w(7)).raw(), p.raw());
        assert!(NGramModel::uniform(0).is_err());
    }

    #[test]
    fn training_rejects_empty() {
        assert!(NGramModel::train(NGramOrder::Bigram, 5, &[]).is_err());
        assert!(NGramModel::train(NGramOrder::Bigram, 5, &[vec![]]).is_err());
        assert!(NGramModel::train(NGramOrder::Bigram, 0, &training_data()).is_err());
    }

    #[test]
    fn bigram_prefers_seen_transitions() {
        let lm = NGramModel::train(NGramOrder::Bigram, 5, &training_data()).unwrap();
        assert_eq!(lm.order().order(), 2);
        // 0 → 1 was always observed; 0 → 3 never.
        let seen = lm.log_prob(&[w(0)], w(1));
        let unseen = lm.log_prob(&[w(0)], w(3));
        assert!(seen.raw() > unseen.raw());
        assert!(lm.param_count() > 0);
    }

    #[test]
    fn trigram_uses_two_words_of_history() {
        let lm = NGramModel::train(NGramOrder::Trigram, 5, &training_data()).unwrap();
        // (0, 1) → 2 was observed 3 times; (0, 1) → 3 never.
        let seen = lm.log_prob(&[w(0), w(1)], w(2));
        let unseen = lm.log_prob(&[w(0), w(1)], w(3));
        assert!(seen.raw() > unseen.raw());
        // With no history at all the model still returns something finite.
        assert!(!lm.log_prob(&[], w(2)).is_zero());
    }

    #[test]
    fn probabilities_sum_to_at_most_one_over_vocab() {
        let lm = NGramModel::train(NGramOrder::Bigram, 5, &training_data()).unwrap();
        // Σ_w p(w | history=0) over the vocabulary + EOS should be ≤ 1 + ε
        // (add-one smoothing leaks a little mass to BOS which never follows
        // anything, so strictly < 1).
        let total: f64 = (0..5)
            .map(|i| lm.log_prob(&[w(0)], w(i)).to_linear())
            .chain([lm.log_prob(&[w(0)], NGramModel::EOS).to_linear()])
            .sum();
        assert!(total <= 1.0 + 1e-6, "{total}");
        assert!(total > 0.5, "{total}");
    }

    #[test]
    fn sentence_probability_and_perplexity() {
        let lm = NGramModel::train(NGramOrder::Bigram, 5, &training_data()).unwrap();
        let common = vec![w(0), w(1), w(2)];
        let rare = vec![w(4), w(3), w(0)];
        assert!(lm.sentence_log_prob(&common).raw() > lm.sentence_log_prob(&rare).raw());
        let ppl_common = lm.perplexity(&[common]);
        let ppl_rare = lm.perplexity(&[rare]);
        assert!(ppl_common < ppl_rare);
        assert!(ppl_common > 1.0);
        assert_eq!(lm.perplexity(&[]), f64::INFINITY);
    }

    #[test]
    fn trained_model_beats_uniform_on_training_like_data() {
        let data = training_data();
        let uniform = NGramModel::uniform(5).unwrap();
        let trained = NGramModel::train(NGramOrder::Bigram, 5, &data).unwrap();
        assert!(trained.perplexity(&data) < uniform.perplexity(&data));
    }
}
