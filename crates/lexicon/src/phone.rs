//! The phone set.
//!
//! "For Example, there are 51 phones in English language." (paper, Section II)
//! This module provides a named phone inventory (a superset of the CMU/ARPAbet
//! phones plus silence) and name ↔ id mapping.

use asr_acoustic::PhoneId;
use std::collections::HashMap;

/// The ARPAbet-style phone names used by the built-in English set, in id
/// order.  SIL (silence) is always phone 0.
const ENGLISH_PHONES: [&str; 51] = [
    "SIL", "AA", "AE", "AH", "AO", "AW", "AX", "AXR", "AY", "B", "CH", "D", "DH", "DX", "EH", "ER",
    "EY", "F", "G", "HH", "IH", "IX", "IY", "JH", "K", "L", "M", "N", "NG", "OW", "OY", "P", "R",
    "S", "SH", "T", "TH", "TS", "UH", "UW", "V", "W", "Y", "Z", "ZH", "EM", "EN", "EL", "PAU",
    "BRE", "NOI",
];

/// A named inventory of phones.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoneSet {
    names: Vec<String>,
    index: HashMap<String, PhoneId>,
}

impl PhoneSet {
    /// The 51-phone English inventory the paper refers to
    /// (ARPAbet plus silence/pause/noise units).
    pub fn english_51() -> Self {
        Self::from_names(ENGLISH_PHONES.iter().map(|s| s.to_string()))
    }

    /// Builds a phone set from names; duplicate names are ignored after the
    /// first occurrence.
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> Self {
        let mut set = PhoneSet {
            names: Vec::new(),
            index: HashMap::new(),
        };
        for name in names {
            if !set.index.contains_key(&name) {
                let id = PhoneId(set.names.len() as u16);
                set.index.insert(name.clone(), id);
                set.names.push(name);
            }
        }
        set
    }

    /// Number of phones.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the set has no phones.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The silence phone (always id 0 in the built-in set).
    pub fn silence(&self) -> PhoneId {
        PhoneId(0)
    }

    /// Id of a phone name.
    pub fn id_of(&self, name: &str) -> Option<PhoneId> {
        self.index.get(name).copied()
    }

    /// Name of a phone id.
    pub fn name_of(&self, id: PhoneId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_str())
    }

    /// Iterates over `(id, name)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PhoneId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PhoneId(i as u16), n.as_str()))
    }

    /// All phone ids except silence — the candidates used when generating
    /// synthetic pronunciations.
    pub fn speech_phones(&self) -> Vec<PhoneId> {
        self.iter()
            .filter(|(id, _)| *id != self.silence())
            .map(|(id, _)| id)
            .collect()
    }
}

impl Default for PhoneSet {
    fn default() -> Self {
        Self::english_51()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_set_has_51_phones() {
        let p = PhoneSet::english_51();
        assert_eq!(p.len(), 51);
        assert!(!p.is_empty());
        assert_eq!(p.silence(), PhoneId(0));
        assert_eq!(p.name_of(PhoneId(0)), Some("SIL"));
        assert_eq!(PhoneSet::default(), p);
    }

    #[test]
    fn name_id_roundtrip() {
        let p = PhoneSet::english_51();
        for (id, name) in p.iter() {
            assert_eq!(p.id_of(name), Some(id));
            assert_eq!(p.name_of(id), Some(name));
        }
        assert_eq!(p.id_of("NOT_A_PHONE"), None);
        assert_eq!(p.name_of(PhoneId(200)), None);
    }

    #[test]
    fn speech_phones_excludes_silence() {
        let p = PhoneSet::english_51();
        let speech = p.speech_phones();
        assert_eq!(speech.len(), 50);
        assert!(!speech.contains(&p.silence()));
    }

    #[test]
    fn duplicates_are_ignored() {
        let p = PhoneSet::from_names(vec!["A".into(), "B".into(), "A".into()]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.id_of("A"), Some(PhoneId(0)));
        assert_eq!(p.id_of("B"), Some(PhoneId(1)));
    }
}
