//! Lexical prefix tree.
//!
//! The word-decode stage "decides which senones are to be evaluated by the
//! phone decode based on the phone combinations of the active words in the
//! dictionary".  A prefix tree over pronunciations shares common word
//! beginnings so the decoder can expand only the phones that can actually
//! continue some dictionary word — the data structure behind the
//! "Phones for evaluation" feedback arrow in Figure 1.

use crate::dictionary::{Dictionary, WordId};
use asr_acoustic::PhoneId;
use std::collections::HashMap;

/// Identifier of a node in the [`LexTree`]. The root has id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LexNodeId(pub u32);

impl LexNodeId {
    /// The root node.
    pub const ROOT: LexNodeId = LexNodeId(0);

    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Default)]
struct LexNode {
    /// Phone labelling the edge from the parent to this node
    /// (`None` only for the root).
    phone: Option<PhoneId>,
    children: HashMap<PhoneId, LexNodeId>,
    /// Words whose pronunciation ends exactly at this node.
    words: Vec<WordId>,
    depth: usize,
}

/// A prefix tree over the pronunciations of a [`Dictionary`].
#[derive(Debug, Clone)]
pub struct LexTree {
    nodes: Vec<LexNode>,
    num_words: usize,
}

impl LexTree {
    /// Builds the prefix tree of a dictionary.
    pub fn build(dictionary: &Dictionary) -> Self {
        let mut tree = LexTree {
            nodes: vec![LexNode::default()],
            num_words: 0,
        };
        for (word, _, pron) in dictionary.iter() {
            let mut node = LexNodeId::ROOT;
            for &phone in pron.phones() {
                node = tree.child_or_insert(node, phone);
            }
            tree.nodes[node.index()].words.push(word);
            tree.num_words += 1;
        }
        tree
    }

    fn child_or_insert(&mut self, parent: LexNodeId, phone: PhoneId) -> LexNodeId {
        if let Some(&existing) = self.nodes[parent.index()].children.get(&phone) {
            return existing;
        }
        let id = LexNodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(LexNode {
            phone: Some(phone),
            children: HashMap::new(),
            words: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.insert(phone, id);
        id
    }

    /// Total number of nodes (including the root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of word end-points in the tree.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The phone on the edge into `node` (`None` for the root).
    pub fn phone(&self, node: LexNodeId) -> Option<PhoneId> {
        self.nodes.get(node.index()).and_then(|n| n.phone)
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, node: LexNodeId) -> Option<usize> {
        self.nodes.get(node.index()).map(|n| n.depth)
    }

    /// The child of `node` reached by `phone`, if any.
    pub fn child(&self, node: LexNodeId, phone: PhoneId) -> Option<LexNodeId> {
        self.nodes
            .get(node.index())
            .and_then(|n| n.children.get(&phone).copied())
    }

    /// All `(phone, child)` successors of a node — the phones that can
    /// continue some dictionary word from this prefix.
    pub fn successors(&self, node: LexNodeId) -> Vec<(PhoneId, LexNodeId)> {
        self.nodes
            .get(node.index())
            .map(|n| {
                let mut v: Vec<(PhoneId, LexNodeId)> =
                    n.children.iter().map(|(&p, &c)| (p, c)).collect();
                v.sort_by_key(|&(p, _)| p);
                v
            })
            .unwrap_or_default()
    }

    /// Words ending exactly at `node`.
    pub fn words_at(&self, node: LexNodeId) -> &[WordId] {
        self.nodes
            .get(node.index())
            .map(|n| n.words.as_slice())
            .unwrap_or(&[])
    }

    /// Follows a phone sequence from the root, returning the reached node if
    /// the whole sequence is a prefix of some word.
    pub fn lookup_prefix(&self, phones: &[PhoneId]) -> Option<LexNodeId> {
        let mut node = LexNodeId::ROOT;
        for &p in phones {
            node = self.child(node, p)?;
        }
        Some(node)
    }

    /// Words whose pronunciation is exactly `phones`.
    pub fn lookup_words(&self, phones: &[PhoneId]) -> Vec<WordId> {
        self.lookup_prefix(phones)
            .map(|n| self.words_at(n).to_vec())
            .unwrap_or_default()
    }

    /// The set of *first* phones of all dictionary words — the phones the
    /// word-decode stage activates whenever a new word can start.
    pub fn initial_phones(&self) -> Vec<PhoneId> {
        self.successors(LexNodeId::ROOT)
            .into_iter()
            .map(|(p, _)| p)
            .collect()
    }

    /// Compression ratio of the tree versus a flat pronunciation list:
    /// `total phones in dictionary / (nodes − 1)`.  Greater than 1 whenever
    /// words share prefixes.
    pub fn sharing_ratio(&self, dictionary: &Dictionary) -> f64 {
        let total_phones: usize = dictionary.iter().map(|(_, _, p)| p.len()).sum();
        if self.nodes.len() <= 1 {
            return 1.0;
        }
        total_phones as f64 / (self.nodes.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Pronunciation;

    fn dict() -> Dictionary {
        let mut d = Dictionary::new();
        let p = |ids: &[u16]| Pronunciation::new(ids.iter().map(|&i| PhoneId(i)).collect());
        d.add_word("cat", p(&[10, 1, 20])).unwrap(); // K AE T
        d.add_word("cab", p(&[10, 1, 9])).unwrap(); // K AE B
        d.add_word("dog", p(&[11, 4, 18])).unwrap(); // D AO G
        d.add_word("do", p(&[11, 39])).unwrap(); // D UW
        d.add_word("a", p(&[3])).unwrap(); // AH
        d
    }

    #[test]
    fn build_and_count() {
        let d = dict();
        let t = LexTree::build(&d);
        assert_eq!(t.num_words(), 5);
        // Nodes: root + cat/cab share "K AE" → K, AE, T, B (4) + dog/do share D → D, AO, G, UW (4) + A (1) = 10 + root
        assert_eq!(t.num_nodes(), 10);
        assert!(t.sharing_ratio(&d) > 1.0);
        assert_eq!(t.depth(LexNodeId::ROOT), Some(0));
        assert_eq!(t.phone(LexNodeId::ROOT), None);
    }

    #[test]
    fn prefix_and_word_lookup() {
        let d = dict();
        let t = LexTree::build(&d);
        let cat = [PhoneId(10), PhoneId(1), PhoneId(20)];
        let words = t.lookup_words(&cat);
        assert_eq!(words.len(), 1);
        assert_eq!(d.spelling(words[0]), Some("cat"));
        // Prefix that is not a full word has no words but exists.
        let ka = t.lookup_prefix(&[PhoneId(10), PhoneId(1)]).unwrap();
        assert!(t.words_at(ka).is_empty());
        assert_eq!(t.depth(ka), Some(2));
        // Non-existent prefix.
        assert!(t.lookup_prefix(&[PhoneId(30)]).is_none());
        assert!(t.lookup_words(&[PhoneId(30)]).is_empty());
        // "do" ends at an interior node on the way to nothing else — both words under D.
        let do_words = t.lookup_words(&[PhoneId(11), PhoneId(39)]);
        assert_eq!(do_words.len(), 1);
    }

    #[test]
    fn successors_and_initial_phones() {
        let d = dict();
        let t = LexTree::build(&d);
        let initials = t.initial_phones();
        assert_eq!(initials, vec![PhoneId(3), PhoneId(10), PhoneId(11)]);
        let k_node = t.child(LexNodeId::ROOT, PhoneId(10)).unwrap();
        let succ = t.successors(k_node);
        assert_eq!(succ.len(), 1); // only AE continues K
        assert_eq!(succ[0].0, PhoneId(1));
        let ae_node = succ[0].1;
        assert_eq!(t.successors(ae_node).len(), 2); // T and B
        assert_eq!(t.phone(ae_node), Some(PhoneId(1)));
        // Unknown node id behaves gracefully.
        assert!(t.successors(LexNodeId(999)).is_empty());
        assert!(t.words_at(LexNodeId(999)).is_empty());
        assert_eq!(t.child(LexNodeId(999), PhoneId(0)), None);
        assert_eq!(t.depth(LexNodeId(999)), None);
    }

    #[test]
    fn empty_dictionary_tree() {
        let d = Dictionary::new();
        let t = LexTree::build(&d);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_words(), 0);
        assert!(t.initial_phones().is_empty());
        assert_eq!(t.sharing_ratio(&d), 1.0);
    }

    #[test]
    fn deep_sharing_reduces_nodes() {
        // 50 words all sharing a long common prefix.
        let mut d = Dictionary::new();
        for i in 0..50u16 {
            let mut phones: Vec<PhoneId> = (1..=8).map(PhoneId).collect();
            phones.push(PhoneId(10 + i));
            d.add_word(&format!("w{i}"), Pronunciation::new(phones))
                .unwrap();
        }
        let t = LexTree::build(&d);
        // Flat storage: 50 * 9 = 450 phones; tree: 8 shared + 50 leaves = 58 nodes.
        assert_eq!(t.num_nodes(), 1 + 8 + 50);
        assert!(t.sharing_ratio(&d) > 7.0);
    }
}
