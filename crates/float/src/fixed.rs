//! Q16.16 fixed-point arithmetic.
//!
//! The paper notes that software speech recognisers ported to embedded devices
//! use fixed-point arithmetic, and warns that log-domain observation
//! probabilities "can vary from zero to very large negative value, which may
//! cause a problem for the systems using fixed point computation".  The
//! software baseline in `asr-baseline` uses this type to demonstrate exactly
//! that failure mode (saturation of very negative log scores), contrasted with
//! the ASIC's 32-bit floating-point datapath.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed 32-bit fixed-point number with 16 integer and 16 fractional bits.
///
/// Arithmetic saturates instead of wrapping, mimicking DSP-style saturating
/// ALUs.
///
/// # Example
///
/// ```
/// use asr_float::Q16_16;
/// let a = Q16_16::from_f32(1.5);
/// let b = Q16_16::from_f32(2.25);
/// assert!((a * b).to_f32() - 3.375 < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16_16(i32);

impl Q16_16 {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 16;
    /// The value 0.
    pub const ZERO: Q16_16 = Q16_16(0);
    /// The value 1.
    pub const ONE: Q16_16 = Q16_16(1 << 16);
    /// The most positive representable value (≈ 32767.99998).
    pub const MAX: Q16_16 = Q16_16(i32::MAX);
    /// The most negative representable value (= −32768.0).
    pub const MIN: Q16_16 = Q16_16(i32::MIN);

    /// Smallest representable increment (2⁻¹⁶).
    pub const EPSILON: Q16_16 = Q16_16(1);

    /// Creates a fixed-point value from its raw bit representation.
    #[inline]
    pub const fn from_bits(bits: i32) -> Self {
        Q16_16(bits)
    }

    /// Returns the raw bit representation.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from `f32`, saturating at the representable range.
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        if v.is_nan() {
            return Q16_16::ZERO;
        }
        let scaled = (v as f64) * (1u32 << Self::FRAC_BITS) as f64;
        if scaled >= i32::MAX as f64 {
            Q16_16::MAX
        } else if scaled <= i32::MIN as f64 {
            Q16_16::MIN
        } else {
            Q16_16(scaled.round() as i32)
        }
    }

    /// Converts from `f64`, saturating at the representable range.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        Self::from_f32(v as f32)
    }

    /// Converts to `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1u32 << Self::FRAC_BITS) as f32
    }

    /// Converts to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1u32 << Self::FRAC_BITS) as f64
    }

    /// Returns `true` if this value equals the saturation limits, i.e. a
    /// previous operation overflowed.  The fixed-point baseline decoder uses
    /// this to count how many scores were clipped.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.0 == i32::MAX || self.0 == i32::MIN
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Q16_16(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Q16_16(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication.
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (self.0 as i64) * (rhs.0 as i64);
        let shifted = wide >> Self::FRAC_BITS;
        if shifted > i32::MAX as i64 {
            Q16_16::MAX
        } else if shifted < i32::MIN as i64 {
            Q16_16::MIN
        } else {
            Q16_16(shifted as i32)
        }
    }

    /// Saturating division. Division by zero saturates toward the sign of the
    /// dividend (and zero / zero is zero).
    #[inline]
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 > 0 {
                Q16_16::MAX
            } else if self.0 < 0 {
                Q16_16::MIN
            } else {
                Q16_16::ZERO
            };
        }
        let wide = ((self.0 as i64) << Self::FRAC_BITS) / rhs.0 as i64;
        if wide > i32::MAX as i64 {
            Q16_16::MAX
        } else if wide < i32::MIN as i64 {
            Q16_16::MIN
        } else {
            Q16_16(wide as i32)
        }
    }

    /// Absolute value (saturating for `MIN`).
    #[inline]
    pub fn abs(self) -> Self {
        if self.0 == i32::MIN {
            Q16_16::MAX
        } else {
            Q16_16(self.0.abs())
        }
    }

    /// The larger of two values.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two values.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for Q16_16 {
    type Output = Q16_16;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Q16_16 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Q16_16 {
    type Output = Q16_16;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Q16_16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Q16_16 {
    type Output = Q16_16;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl Div for Q16_16 {
    type Output = Q16_16;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl Neg for Q16_16 {
    type Output = Q16_16;
    #[inline]
    fn neg(self) -> Self {
        Q16_16(self.0.saturating_neg())
    }
}

impl From<i16> for Q16_16 {
    fn from(v: i16) -> Self {
        Q16_16((v as i32) << Self::FRAC_BITS)
    }
}

impl fmt::Display for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert_eq!(Q16_16::ZERO.to_f32(), 0.0);
        assert_eq!(Q16_16::ONE.to_f32(), 1.0);
        assert_eq!(Q16_16::default(), Q16_16::ZERO);
        assert!(Q16_16::MAX.to_f32() > 32767.0);
        assert_eq!(Q16_16::MIN.to_f32(), -32768.0);
        assert!(Q16_16::EPSILON.to_f64() > 0.0);
    }

    #[test]
    fn roundtrip_f32() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, -1234.5678, 32000.25, -32000.25] {
            let q = Q16_16::from_f32(v);
            assert!((q.to_f32() - v).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn from_i16_and_f64() {
        assert_eq!(Q16_16::from(5i16).to_f32(), 5.0);
        assert_eq!(Q16_16::from(-7i16).to_f32(), -7.0);
        assert!((Q16_16::from_f64(2.5).to_f64() - 2.5).abs() < 1e-4);
    }

    #[test]
    fn nan_becomes_zero() {
        assert_eq!(Q16_16::from_f32(f32::NAN), Q16_16::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Q16_16::from_f32(1.5);
        let b = Q16_16::from_f32(2.25);
        assert!(((a + b).to_f32() - 3.75).abs() < 1e-4);
        assert!(((a - b).to_f32() + 0.75).abs() < 1e-4);
        assert!(((a * b).to_f32() - 3.375).abs() < 1e-4);
        assert!(((b / a).to_f32() - 1.5).abs() < 1e-4);
        assert!(((-a).to_f32() + 1.5).abs() < 1e-4);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn assign_ops() {
        let mut a = Q16_16::from_f32(1.0);
        a += Q16_16::from_f32(2.0);
        assert!((a.to_f32() - 3.0).abs() < 1e-4);
        a -= Q16_16::from_f32(0.5);
        assert!((a.to_f32() - 2.5).abs() < 1e-4);
    }

    #[test]
    fn saturation_behaviour() {
        // This is the failure mode the paper warns about: very negative log
        // scores overflow the fixed-point range and saturate.
        let very_negative = Q16_16::from_f32(-1.0e9);
        assert_eq!(very_negative, Q16_16::MIN);
        assert!(very_negative.is_saturated());
        assert!((Q16_16::MIN + Q16_16::from_f32(-10.0)).is_saturated());
        assert!((Q16_16::MAX + Q16_16::ONE).is_saturated());
        assert!((Q16_16::from_f32(30000.0) * Q16_16::from_f32(10.0)).is_saturated());
        assert_eq!(Q16_16::MIN.abs(), Q16_16::MAX);
        assert_eq!((-Q16_16::MIN), Q16_16::MAX);
    }

    #[test]
    fn division_by_zero_saturates() {
        assert_eq!(Q16_16::ONE / Q16_16::ZERO, Q16_16::MAX);
        assert_eq!((-Q16_16::ONE) / Q16_16::ZERO, Q16_16::MIN);
        assert_eq!(Q16_16::ZERO / Q16_16::ZERO, Q16_16::ZERO);
    }

    #[test]
    fn display_and_bits() {
        assert_eq!(Q16_16::from_bits(1 << 16), Q16_16::ONE);
        assert_eq!(Q16_16::ONE.to_bits(), 1 << 16);
        assert!(!format!("{}", Q16_16::ONE).is_empty());
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in -30000.0f32..30000.0, b in -30000.0f32..30000.0) {
            let (qa, qb) = (Q16_16::from_f32(a), Q16_16::from_f32(b));
            prop_assert_eq!(qa + qb, qb + qa);
        }

        #[test]
        fn prop_add_matches_float(a in -10000.0f32..10000.0, b in -10000.0f32..10000.0) {
            let sum = (Q16_16::from_f32(a) + Q16_16::from_f32(b)).to_f32();
            prop_assert!((sum - (a + b)).abs() < 1e-3);
        }

        #[test]
        fn prop_mul_matches_float(a in -150.0f32..150.0, b in -150.0f32..150.0) {
            let prod = (Q16_16::from_f32(a) * Q16_16::from_f32(b)).to_f32();
            prop_assert!((prod - a * b).abs() < 0.01);
        }

        #[test]
        fn prop_roundtrip(v in -32000.0f32..32000.0) {
            prop_assert!((Q16_16::from_f32(v).to_f32() - v).abs() <= 1.0 / 65536.0 + 1e-6);
        }
    }
}
