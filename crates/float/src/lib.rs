//! # asr-float — numeric substrate for the low-power LVCSR architecture
//!
//! This crate provides the arithmetic building blocks used throughout the
//! reproduction of *"Architecture for Low Power Large Vocabulary Speech
//! Recognition"* (Chandra, Pazhayaveetil, Franzon — SOCC 2006):
//!
//! * [`LogProb`] — probabilities kept in the natural-log domain, exactly as the
//!   paper's Observation Probability unit and Viterbi decoder operate
//!   ("all the calculation are done in logarithm domain").
//! * [`LogAddTable`] — the 512-byte SRAM lookup table the OP unit uses to
//!   evaluate `log(A + B) = log(A) + log(1 + B/A)` with 16-bit fraction
//!   entries (paper Section III-B).
//! * [`MantissaWidth`] / [`Quantizer`] — reduced-mantissa IEEE-754 storage
//!   (23 / 15 / 12-bit mantissas) used for the memory-and-bandwidth study in
//!   the paper's results table.
//! * [`SoftFloat`] — a bit-level software model of the 32-bit floating-point
//!   datapath elements ( (X−Y)²·Z, add, fused multiply-add ) so the hardware
//!   simulator in `asr-hw` computes exactly what a fixed-width datapath would.
//! * [`Q16_16`] — a fixed-point type used by the software-baseline decoder
//!   (the paper contrasts its floating-point ASIC against fixed-point
//!   software ports).
//!
//! # Example
//!
//! ```
//! use asr_float::{LogProb, LogAddTable};
//!
//! let table = LogAddTable::new();
//! let a = LogProb::from_linear(0.25);
//! let b = LogProb::from_linear(0.50);
//! // exact log-add versus the SRAM-table approximation used by the hardware
//! let exact = a.log_add(b);
//! let approx = table.log_add(a, b);
//! assert!((exact.raw() - approx.raw()).abs() < 0.05);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod fixed;
pub mod logmath;
pub mod lut;
pub mod reduced;
pub mod softfloat;

pub use fixed::Q16_16;
pub use logmath::{LogDomain, LogProb};
pub use lut::{LogAddTable, LogAddTableConfig};
pub use reduced::{MantissaWidth, Quantizer, ReducedF32};
pub use softfloat::SoftFloat;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloatError {
    /// A mantissa width outside the representable `1..=23` range was requested.
    InvalidMantissaWidth(u8),
    /// A log-add table configuration was invalid (zero entries or zero range).
    InvalidTableConfig(&'static str),
}

impl core::fmt::Display for FloatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FloatError::InvalidMantissaWidth(bits) => {
                write!(f, "invalid mantissa width {bits}, expected 1..=23")
            }
            FloatError::InvalidTableConfig(msg) => write!(f, "invalid log-add table config: {msg}"),
        }
    }
}

impl std::error::Error for FloatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = FloatError::InvalidMantissaWidth(31);
        assert!(!e.to_string().is_empty());
        let e = FloatError::InvalidTableConfig("entries == 0");
        assert!(e.to_string().contains("entries"));
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogProb>();
        assert_send_sync::<LogAddTable>();
        assert_send_sync::<Quantizer>();
        assert_send_sync::<Q16_16>();
        assert_send_sync::<FloatError>();
    }
}
