//! The OP unit's log-add SRAM lookup table.
//!
//! Section III-B of the paper: the `logadd` stage of the Observation
//! Probability unit evaluates `log(A + B)` using the identity
//!
//! ```text
//! log(A + B) = log(A (1 + B/A)) = log(A) + log(1 + B/A)
//! ```
//!
//! With `B <= A`, the correction term `log(1 + B/A)` lies in `[0, 0.693]`.
//! The paper stores that correction in a **512-byte SRAM** as 16-bit binary
//! fractions, indexed by "a few least significant bits of `log(B) - log(A)`".
//! 512 bytes / 2 bytes-per-entry = **256 entries**.
//!
//! [`LogAddTable`] reproduces that hardware table bit-exactly: entries are
//! quantised to 16 fractional bits, the index is a clamped fixed-point
//! quantisation of `d = log(A) - log(B) >= 0`, and the table reports its own
//! size and worst-case error so the experiment harness can show the
//! approximation is harmless for recognition.

use crate::logmath::LogProb;
use crate::FloatError;

/// Configuration of the hardware log-add table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogAddTableConfig {
    /// Number of table entries (the paper's SRAM holds 256 × 16-bit values).
    pub entries: usize,
    /// Largest difference `d = log(A) - log(B)` covered by the table.  Beyond
    /// this the correction is below the 16-bit quantisation step and the
    /// hardware simply returns `log(A)`.
    pub max_difference: f32,
    /// Number of fractional bits stored per entry (16 in the paper).
    pub fraction_bits: u8,
}

impl LogAddTableConfig {
    /// The configuration described in the paper: 512-byte SRAM, 16-bit
    /// fractions, 256 entries.
    pub const PAPER: LogAddTableConfig = LogAddTableConfig {
        entries: 256,
        max_difference: 11.1,
        fraction_bits: 16,
    };

    /// Total SRAM footprint in bytes.
    pub fn sram_bytes(&self) -> usize {
        self.entries * 2
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), FloatError> {
        if self.entries == 0 {
            return Err(FloatError::InvalidTableConfig("entries == 0"));
        }
        if self.max_difference <= 0.0 || self.max_difference.is_nan() {
            return Err(FloatError::InvalidTableConfig("max_difference <= 0"));
        }
        if self.fraction_bits == 0 || self.fraction_bits > 16 {
            return Err(FloatError::InvalidTableConfig(
                "fraction_bits must be in 1..=16",
            ));
        }
        Ok(())
    }
}

impl Default for LogAddTableConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// The 512-byte SRAM log-add lookup table of the OP unit.
///
/// # Example
///
/// ```
/// use asr_float::{LogAddTable, LogProb};
/// let t = LogAddTable::new();
/// assert_eq!(t.config().sram_bytes(), 512);
/// let approx = t.log_add(LogProb::new(-3.0), LogProb::new(-4.0));
/// let exact = LogProb::new(-3.0).log_add(LogProb::new(-4.0));
/// assert!((approx.raw() - exact.raw()).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct LogAddTable {
    config: LogAddTableConfig,
    /// 16-bit fraction entries: `round(log(1 + exp(-d)) * 2^fraction_bits)`.
    entries: Vec<u16>,
    /// Quantisation step of the index dimension.
    step: f32,
}

impl LogAddTable {
    /// Builds the table with the paper's configuration
    /// (256 × 16-bit entries, 512 bytes of SRAM).
    pub fn new() -> Self {
        Self::with_config(LogAddTableConfig::PAPER).expect("paper config is valid")
    }

    /// Builds a table with a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FloatError::InvalidTableConfig`] if the configuration has no
    /// entries, a non-positive range, or an unsupported fraction width.
    pub fn with_config(config: LogAddTableConfig) -> Result<Self, FloatError> {
        config.validate()?;
        let step = config.max_difference / config.entries as f32;
        let scale = (1u32 << config.fraction_bits) as f64;
        let entries = (0..config.entries)
            .map(|i| {
                // Index i covers differences in [i*step, (i+1)*step); the
                // hardware stores the value at the bin centre.
                let d = (i as f64 + 0.5) * step as f64;
                let value = (1.0 + (-d).exp()).ln();
                (value * scale).round().min(scale - 1.0) as u16
            })
            .collect();
        Ok(LogAddTable {
            config,
            entries,
            step,
        })
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> &LogAddTableConfig {
        &self.config
    }

    /// Raw table contents, as they would be loaded into the SRAM at start-up.
    pub fn sram_contents(&self) -> &[u16] {
        &self.entries
    }

    /// Looks up the correction `log(1 + exp(-d))` for a non-negative
    /// difference `d = log(A) - log(B)`.
    ///
    /// Differences beyond the table range return `0.0`, exactly as the
    /// hardware saturates the index.
    #[inline]
    pub fn correction(&self, difference: f32) -> f32 {
        debug_assert!(difference >= 0.0, "difference must be non-negative");
        if difference >= self.config.max_difference {
            return 0.0;
        }
        let idx = (difference / self.step) as usize;
        let idx = idx.min(self.config.entries - 1);
        let scale = (1u32 << self.config.fraction_bits) as f32;
        self.entries[idx] as f32 / scale
    }

    /// Hardware log-add: `log(exp(a) + exp(b))` via the SRAM table.
    #[inline]
    pub fn log_add(&self, a: LogProb, b: LogProb) -> LogProb {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let (hi, lo) = if a.raw() >= b.raw() {
            (a.raw(), b.raw())
        } else {
            (b.raw(), a.raw())
        };
        let d = hi - lo;
        LogProb::new(hi + self.correction(d))
    }

    /// Folds the table-based log-add over an iterator, the way the OP unit
    /// accumulates mixture components.
    pub fn log_sum<I: IntoIterator<Item = LogProb>>(&self, iter: I) -> LogProb {
        iter.into_iter()
            .fold(LogProb::zero(), |acc, p| self.log_add(acc, p))
    }

    /// Maximum absolute error of [`LogAddTable::correction`] versus the exact
    /// correction, measured over a dense sweep.  Used by the experiment
    /// harness to report the quality of the 512-byte table.
    pub fn max_abs_error(&self) -> f32 {
        let samples = self.config.entries * 16;
        let mut worst = 0.0f32;
        for i in 0..samples {
            let d = self.config.max_difference * (i as f32 + 0.5) / samples as f32;
            let exact = (1.0 + (-(d as f64)).exp()).ln() as f32;
            let err = (exact - self.correction(d)).abs();
            if err > worst {
                worst = err;
            }
        }
        // Also check the saturated region boundary.
        let exact_at_max = (1.0 + (-(self.config.max_difference as f64)).exp()).ln() as f32;
        worst.max(exact_at_max)
    }

    /// Mean absolute error over a dense sweep of the covered range.
    pub fn mean_abs_error(&self) -> f32 {
        let samples = self.config.entries * 16;
        let mut total = 0.0f64;
        for i in 0..samples {
            let d = self.config.max_difference * (i as f32 + 0.5) / samples as f32;
            let exact = (1.0 + (-(d as f64)).exp()).ln() as f32;
            total += (exact - self.correction(d)).abs() as f64;
        }
        (total / samples as f64) as f32
    }
}

impl Default for LogAddTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_config_is_512_bytes() {
        let t = LogAddTable::new();
        assert_eq!(t.config().entries, 256);
        assert_eq!(t.config().sram_bytes(), 512);
        assert_eq!(t.sram_contents().len(), 256);
        assert_eq!(t.config().fraction_bits, 16);
    }

    #[test]
    fn entries_are_monotone_decreasing() {
        let t = LogAddTable::new();
        let e = t.sram_contents();
        for w in e.windows(2) {
            assert!(w[0] >= w[1], "table must decrease with the difference");
        }
    }

    #[test]
    fn correction_bounds() {
        let t = LogAddTable::new();
        // At d = 0 the correction is ln(2) = 0.693…; the table stores bin-centre
        // values so the lookup at the exact edge is off by about half a bin.
        assert!((t.correction(0.0) - core::f32::consts::LN_2).abs() < 0.015);
        // Far beyond the range the correction saturates to 0.
        assert_eq!(t.correction(100.0), 0.0);
        // It never exceeds ln 2.
        for i in 0..1000 {
            let d = i as f32 * 0.02;
            let c = t.correction(d);
            assert!((0.0..=core::f32::consts::LN_2 + 1e-6).contains(&c));
        }
    }

    #[test]
    fn table_log_add_matches_exact_closely() {
        let t = LogAddTable::new();
        let cases = [(-1.0, -1.5), (-10.0, -10.0), (-3.0, -20.0), (-0.1, -5.0)];
        for &(a, b) in &cases {
            let (a, b) = (LogProb::new(a), LogProb::new(b));
            let exact = a.log_add(b);
            let approx = t.log_add(a, b);
            assert!(
                (exact.raw() - approx.raw()).abs() < 0.05,
                "a={a:?} b={b:?} exact={exact:?} approx={approx:?}"
            );
        }
    }

    #[test]
    fn table_log_add_identity_with_zero() {
        let t = LogAddTable::new();
        let a = LogProb::new(-2.0);
        assert_eq!(t.log_add(a, LogProb::zero()).raw(), a.raw());
        assert_eq!(t.log_add(LogProb::zero(), a).raw(), a.raw());
    }

    #[test]
    fn log_sum_over_mixture() {
        let t = LogAddTable::new();
        let comps: Vec<LogProb> = [-2.0f32, -2.5, -3.0, -8.0]
            .iter()
            .map(|&x| LogProb::new(x))
            .collect();
        let exact = LogProb::log_sum(comps.iter().copied());
        let approx = t.log_sum(comps);
        assert!((exact.raw() - approx.raw()).abs() < 0.05);
    }

    #[test]
    fn max_error_is_small() {
        let t = LogAddTable::new();
        // 256 entries over ~11.1 range: worst-case error comes from the bin
        // width near d=0 where the slope is ~0.5 → ~0.011; also the truncation
        // at max_difference contributes ~1.5e-5.
        assert!(t.max_abs_error() < 0.02, "max err {}", t.max_abs_error());
        assert!(t.mean_abs_error() < 0.01);
        assert!(t.mean_abs_error() <= t.max_abs_error());
    }

    #[test]
    fn finer_tables_are_more_accurate() {
        let coarse = LogAddTable::with_config(LogAddTableConfig {
            entries: 64,
            ..LogAddTableConfig::PAPER
        })
        .unwrap();
        let fine = LogAddTable::with_config(LogAddTableConfig {
            entries: 1024,
            ..LogAddTableConfig::PAPER
        })
        .unwrap();
        assert!(fine.max_abs_error() < coarse.max_abs_error());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(LogAddTable::with_config(LogAddTableConfig {
            entries: 0,
            ..LogAddTableConfig::PAPER
        })
        .is_err());
        assert!(LogAddTable::with_config(LogAddTableConfig {
            max_difference: 0.0,
            ..LogAddTableConfig::PAPER
        })
        .is_err());
        assert!(LogAddTable::with_config(LogAddTableConfig {
            fraction_bits: 0,
            ..LogAddTableConfig::PAPER
        })
        .is_err());
        assert!(LogAddTable::with_config(LogAddTableConfig {
            fraction_bits: 17,
            ..LogAddTableConfig::PAPER
        })
        .is_err());
    }

    #[test]
    fn default_matches_new() {
        let a = LogAddTable::default();
        let b = LogAddTable::new();
        assert_eq!(a.sram_contents(), b.sram_contents());
        assert_eq!(LogAddTableConfig::default(), LogAddTableConfig::PAPER);
    }

    proptest! {
        #[test]
        fn prop_table_close_to_exact(a in -60.0f32..0.0, b in -60.0f32..0.0) {
            let t = LogAddTable::new();
            let (a, b) = (LogProb::new(a), LogProb::new(b));
            let exact = a.log_add(b);
            let approx = t.log_add(a, b);
            prop_assert!((exact.raw() - approx.raw()).abs() < 0.05);
        }

        #[test]
        fn prop_table_commutative(a in -60.0f32..0.0, b in -60.0f32..0.0) {
            let t = LogAddTable::new();
            let (a, b) = (LogProb::new(a), LogProb::new(b));
            prop_assert_eq!(t.log_add(a, b).raw(), t.log_add(b, a).raw());
        }

        #[test]
        fn prop_correction_monotone(d1 in 0.0f32..11.0, d2 in 0.0f32..11.0) {
            let t = LogAddTable::new();
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(t.correction(lo) >= t.correction(hi));
        }
    }
}
