//! Log-domain probability arithmetic.
//!
//! The paper performs every probability computation — Gaussian evaluation,
//! mixture summation and Viterbi recursion — in the logarithm domain so the
//! hardware never needs an exponential unit and never underflows.  This module
//! provides the [`LogProb`] newtype used everywhere in the workspace, plus the
//! [`LogDomain`] helper that describes which base the log values use (the
//! reproduction uses natural logs; Sphinx-style 1.0003-base logs are also
//! supported for the fixed-point software baseline).

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// The value used to represent `log(0)` (an impossible event).
///
/// Chosen to be very negative but far enough from `f32::MIN` that sums of a
/// few such values do not overflow to `-inf`, which matters for the hardware
/// model where `-inf` would poison the pipelined comparators.
pub const LOG_ZERO: f32 = -1.0e30;

/// Values below this threshold are treated as `log(0)` when normalising.
pub const LOG_ZERO_THRESHOLD: f32 = -0.5e30;

/// A probability stored in the natural-log domain.
///
/// `LogProb(0.0)` is probability 1, `LogProb::zero()` is probability 0.
/// Multiplication of probabilities becomes [`Add`]; addition of probabilities
/// becomes [`LogProb::log_add`].
///
/// # Example
///
/// ```
/// use asr_float::LogProb;
/// let half = LogProb::from_linear(0.5);
/// let quarter = half + half;          // 0.5 * 0.5
/// assert!((quarter.to_linear() - 0.25).abs() < 1e-6);
/// let three_quarters = half.log_add(quarter);
/// assert!((three_quarters.to_linear() - 0.75).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LogProb(f32);

impl LogProb {
    /// The log-probability of a certain event (probability 1).
    pub const ONE: LogProb = LogProb(0.0);

    /// Creates a log probability from a raw natural-log value.
    #[inline]
    pub fn new(log_value: f32) -> Self {
        if log_value < LOG_ZERO_THRESHOLD || log_value.is_nan() {
            LogProb(LOG_ZERO)
        } else {
            LogProb(log_value)
        }
    }

    /// The log-probability of an impossible event (probability 0).
    #[inline]
    pub fn zero() -> Self {
        LogProb(LOG_ZERO)
    }

    /// Converts a linear-domain probability (or likelihood) into the log domain.
    ///
    /// Non-positive inputs map to [`LogProb::zero`].
    #[inline]
    pub fn from_linear(p: f64) -> Self {
        if p <= 0.0 {
            Self::zero()
        } else {
            LogProb(p.ln() as f32)
        }
    }

    /// Converts back to the linear domain. Underflows gracefully to `0.0`.
    #[inline]
    pub fn to_linear(self) -> f64 {
        if self.is_zero() {
            0.0
        } else {
            (self.0 as f64).exp()
        }
    }

    /// Returns the raw natural-log value.
    #[inline]
    pub fn raw(self) -> f32 {
        self.0
    }

    /// Returns `true` if this represents probability zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= LOG_ZERO_THRESHOLD
    }

    /// Exact log-domain addition of the underlying probabilities:
    /// `log(exp(a) + exp(b))`, computed stably as
    /// `max + ln(1 + exp(-(max - min)))`.
    #[inline]
    pub fn log_add(self, other: LogProb) -> LogProb {
        if self.is_zero() {
            return other;
        }
        if other.is_zero() {
            return self;
        }
        let (hi, lo) = if self.0 >= other.0 {
            (self.0, other.0)
        } else {
            (other.0, self.0)
        };
        let diff = lo - hi; // <= 0
        if diff < -30.0 {
            // exp(diff) below f32 resolution relative to 1.0
            return LogProb(hi);
        }
        LogProb(hi + (diff as f64).exp().ln_1p() as f32)
    }

    /// Log-domain subtraction `log(exp(a) - exp(b))`.
    ///
    /// Returns [`LogProb::zero`] when `other >= self` (the difference would be
    /// non-positive), which is the conventional clamped behaviour for pruning
    /// arithmetic.
    #[inline]
    pub fn log_sub(self, other: LogProb) -> LogProb {
        if other.is_zero() {
            return self;
        }
        if self.is_zero() || other.0 >= self.0 {
            return Self::zero();
        }
        let diff = other.0 - self.0; // < 0
        let inner = 1.0 - (diff as f64).exp();
        if inner <= 0.0 {
            Self::zero()
        } else {
            LogProb(self.0 + inner.ln() as f32)
        }
    }

    /// Returns the larger of two log probabilities (the Viterbi max operator).
    #[inline]
    pub fn max(self, other: LogProb) -> LogProb {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two log probabilities.
    #[inline]
    pub fn min(self, other: LogProb) -> LogProb {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the underlying probability by raising it to `power`
    /// (log-domain multiply by a scalar), used for language-model weighting.
    #[inline]
    pub fn powf(self, power: f32) -> LogProb {
        if self.is_zero() {
            self
        } else {
            LogProb::new(self.0 * power)
        }
    }

    /// Total order that treats `NaN` as the smallest value.  Log probabilities
    /// never contain `NaN` when constructed through [`LogProb::new`], but the
    /// hardware simulator compares raw register contents and needs totality.
    #[inline]
    pub fn total_cmp(&self, other: &LogProb) -> Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Sums an iterator of log probabilities in the linear domain
    /// (`log(Σ exp(x_i))`), stably.
    pub fn log_sum<I: IntoIterator<Item = LogProb>>(iter: I) -> LogProb {
        let items: Vec<LogProb> = iter.into_iter().filter(|p| !p.is_zero()).collect();
        if items.is_empty() {
            return LogProb::zero();
        }
        let max = items.iter().fold(LogProb::zero(), |acc, &p| acc.max(p));
        let mut acc = 0.0f64;
        for p in &items {
            acc += ((p.0 - max.0) as f64).exp();
        }
        LogProb(max.0 + acc.ln() as f32)
    }
}

impl Default for LogProb {
    /// The default log probability is probability **zero** (an empty
    /// hypothesis), matching an uninitialised Viterbi cell.
    fn default() -> Self {
        Self::zero()
    }
}

impl Add for LogProb {
    type Output = LogProb;

    /// Log-domain `+` corresponds to multiplying the underlying probabilities.
    #[inline]
    fn add(self, rhs: LogProb) -> LogProb {
        if self.is_zero() || rhs.is_zero() {
            LogProb::zero()
        } else {
            LogProb::new(self.0 + rhs.0)
        }
    }
}

impl AddAssign for LogProb {
    #[inline]
    fn add_assign(&mut self, rhs: LogProb) {
        *self = *self + rhs;
    }
}

impl Sub for LogProb {
    type Output = LogProb;

    /// Log-domain `-` corresponds to dividing the underlying probabilities.
    #[inline]
    fn sub(self, rhs: LogProb) -> LogProb {
        if self.is_zero() {
            LogProb::zero()
        } else if rhs.is_zero() {
            // dividing by zero probability: saturate at certainty
            LogProb::ONE
        } else {
            LogProb::new(self.0 - rhs.0)
        }
    }
}

impl SubAssign for LogProb {
    #[inline]
    fn sub_assign(&mut self, rhs: LogProb) {
        *self = *self - rhs;
    }
}

impl Sum for LogProb {
    /// `Sum` composes with `+`, i.e. it multiplies the underlying
    /// probabilities (a path score).  Use [`LogProb::log_sum`] to add them.
    fn sum<I: Iterator<Item = LogProb>>(iter: I) -> LogProb {
        iter.fold(LogProb::ONE, |acc, p| acc + p)
    }
}

impl fmt::Display for LogProb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "log(0)")
        } else {
            write!(f, "{:.4}", self.0)
        }
    }
}

impl From<f32> for LogProb {
    fn from(v: f32) -> Self {
        LogProb::new(v)
    }
}

/// Description of the log base used by a model file or decoder configuration.
///
/// The hardware in the paper works with natural logarithms; CMU Sphinx-style
/// systems store scores as integers in a base very close to 1 (e.g. 1.0003) so
/// that fixed-point hardware/software keeps enough resolution.  The conversion
/// helpers make the two interoperable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LogDomain {
    /// Natural logarithm (base *e*). The representation used by [`LogProb`].
    #[default]
    Natural,
    /// Logarithm in an arbitrary base slightly above 1, stored as scaled
    /// integers by fixed-point decoders.
    Base(f64),
}

impl LogDomain {
    /// A Sphinx-3 compatible log base.
    pub const SPHINX: LogDomain = LogDomain::Base(1.0003);

    /// Converts a value in this domain to a natural-log [`LogProb`].
    pub fn to_natural(self, value: f64) -> LogProb {
        match self {
            LogDomain::Natural => LogProb::new(value as f32),
            LogDomain::Base(b) => LogProb::new((value * b.ln()) as f32),
        }
    }

    /// Converts a natural-log [`LogProb`] into a value in this domain.
    pub fn from_natural(self, value: LogProb) -> f64 {
        match self {
            LogDomain::Natural => value.raw() as f64,
            LogDomain::Base(b) => value.raw() as f64 / b.ln(),
        }
    }

    /// The scale factor between this domain and natural logs
    /// (`value_natural = value_this_domain * factor`).
    pub fn scale_to_natural(self) -> f64 {
        match self {
            LogDomain::Natural => 1.0,
            LogDomain::Base(b) => b.ln(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_and_zero_behave() {
        assert!((LogProb::ONE.to_linear() - 1.0).abs() < 1e-12);
        assert_eq!(LogProb::zero().to_linear(), 0.0);
        assert!(LogProb::zero().is_zero());
        assert!(!LogProb::ONE.is_zero());
        assert!(LogProb::default().is_zero());
    }

    #[test]
    fn from_linear_roundtrip() {
        for &p in &[1.0, 0.5, 0.1, 1e-6, 1e-20] {
            let lp = LogProb::from_linear(p);
            assert!((lp.to_linear() - p).abs() / p < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn nonpositive_linear_maps_to_zero() {
        assert!(LogProb::from_linear(0.0).is_zero());
        assert!(LogProb::from_linear(-1.0).is_zero());
    }

    #[test]
    fn nan_maps_to_zero() {
        assert!(LogProb::new(f32::NAN).is_zero());
    }

    #[test]
    fn add_multiplies() {
        let a = LogProb::from_linear(0.3);
        let b = LogProb::from_linear(0.2);
        assert!(((a + b).to_linear() - 0.06).abs() < 1e-7);
    }

    #[test]
    fn add_with_zero_is_zero() {
        let a = LogProb::from_linear(0.3);
        assert!((a + LogProb::zero()).is_zero());
        assert!((LogProb::zero() + a).is_zero());
    }

    #[test]
    fn sub_divides() {
        let a = LogProb::from_linear(0.06);
        let b = LogProb::from_linear(0.2);
        assert!(((a - b).to_linear() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn log_add_adds() {
        let a = LogProb::from_linear(0.25);
        let b = LogProb::from_linear(0.5);
        assert!((a.log_add(b).to_linear() - 0.75).abs() < 1e-6);
        // commutativity
        assert!((a.log_add(b).raw() - b.log_add(a).raw()).abs() < 1e-6);
    }

    #[test]
    fn log_add_with_zero_is_identity() {
        let a = LogProb::from_linear(0.25);
        assert_eq!(a.log_add(LogProb::zero()).raw(), a.raw());
        assert_eq!(LogProb::zero().log_add(a).raw(), a.raw());
    }

    #[test]
    fn log_add_huge_dynamic_range() {
        let a = LogProb::new(-1.0);
        let b = LogProb::new(-200.0);
        // b is negligible compared to a
        assert!((a.log_add(b).raw() - a.raw()).abs() < 1e-6);
    }

    #[test]
    fn log_sub_inverts_log_add() {
        let a = LogProb::from_linear(0.6);
        let b = LogProb::from_linear(0.3);
        let sum = a.log_add(b);
        let back = sum.log_sub(b);
        assert!((back.to_linear() - 0.6).abs() < 1e-5);
    }

    #[test]
    fn log_sub_clamps_to_zero() {
        let a = LogProb::from_linear(0.2);
        let b = LogProb::from_linear(0.3);
        assert!(a.log_sub(b).is_zero());
        assert!(a.log_sub(a).is_zero());
    }

    #[test]
    fn max_and_min() {
        let a = LogProb::from_linear(0.2);
        let b = LogProb::from_linear(0.3);
        assert_eq!(a.max(b).raw(), b.raw());
        assert_eq!(a.min(b).raw(), a.raw());
    }

    #[test]
    fn log_sum_matches_pairwise() {
        let ps = [0.1, 0.2, 0.05, 0.3];
        let items: Vec<LogProb> = ps.iter().map(|&p| LogProb::from_linear(p)).collect();
        let total = LogProb::log_sum(items.iter().copied());
        let expected: f64 = ps.iter().sum();
        assert!((total.to_linear() - expected).abs() < 1e-6);
    }

    #[test]
    fn log_sum_of_empty_is_zero() {
        assert!(LogProb::log_sum(std::iter::empty()).is_zero());
        assert!(LogProb::log_sum(vec![LogProb::zero(); 4]).is_zero());
    }

    #[test]
    fn sum_trait_multiplies() {
        let items = vec![LogProb::from_linear(0.5); 3];
        let product: LogProb = items.into_iter().sum();
        assert!((product.to_linear() - 0.125).abs() < 1e-7);
    }

    #[test]
    fn powf_scales() {
        let a = LogProb::from_linear(0.5);
        let sq = a.powf(2.0);
        assert!((sq.to_linear() - 0.25).abs() < 1e-6);
        assert!(LogProb::zero().powf(2.0).is_zero());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", LogProb::from_linear(0.5)).is_empty());
        assert_eq!(format!("{}", LogProb::zero()), "log(0)");
    }

    #[test]
    fn log_domain_conversions() {
        let sphinx = LogDomain::SPHINX;
        let lp = LogProb::from_linear(0.01);
        let in_sphinx = sphinx.from_natural(lp);
        let back = sphinx.to_natural(in_sphinx);
        assert!((back.raw() - lp.raw()).abs() < 1e-4);
        assert_eq!(LogDomain::Natural.scale_to_natural(), 1.0);
        assert_eq!(LogDomain::default(), LogDomain::Natural);
    }

    proptest! {
        #[test]
        fn prop_log_add_commutative(a in -50.0f32..0.0, b in -50.0f32..0.0) {
            let (a, b) = (LogProb::new(a), LogProb::new(b));
            prop_assert!((a.log_add(b).raw() - b.log_add(a).raw()).abs() < 1e-4);
        }

        #[test]
        fn prop_log_add_ge_max(a in -50.0f32..0.0, b in -50.0f32..0.0) {
            let (a, b) = (LogProb::new(a), LogProb::new(b));
            prop_assert!(a.log_add(b).raw() >= a.max(b).raw() - 1e-6);
        }

        #[test]
        fn prop_log_add_le_max_plus_ln2(a in -50.0f32..0.0, b in -50.0f32..0.0) {
            let (a, b) = (LogProb::new(a), LogProb::new(b));
            prop_assert!(a.log_add(b).raw() <= a.max(b).raw() + core::f32::consts::LN_2 + 1e-6);
        }

        #[test]
        fn prop_add_associative_approx(a in -30.0f32..0.0, b in -30.0f32..0.0, c in -30.0f32..0.0) {
            let (a, b, c) = (LogProb::new(a), LogProb::new(b), LogProb::new(c));
            let left = (a + b) + c;
            let right = a + (b + c);
            prop_assert!((left.raw() - right.raw()).abs() < 1e-3);
        }

        #[test]
        fn prop_linear_roundtrip(p in 1e-12f64..1.0) {
            let lp = LogProb::from_linear(p);
            prop_assert!((lp.to_linear() - p).abs() / p < 1e-4);
        }

        #[test]
        fn prop_log_sum_permutation_invariant(mut xs in proptest::collection::vec(-40.0f32..0.0, 1..8)) {
            let a: Vec<LogProb> = xs.iter().map(|&x| LogProb::new(x)).collect();
            xs.reverse();
            let b: Vec<LogProb> = xs.iter().map(|&x| LogProb::new(x)).collect();
            let sa = LogProb::log_sum(a);
            let sb = LogProb::log_sum(b);
            prop_assert!((sa.raw() - sb.raw()).abs() < 1e-3);
        }
    }
}
