//! Bit-level software model of the 32-bit floating-point datapath.
//!
//! The OP unit and the Viterbi unit are "designed for 32-bit floating-point
//! (IEEE-754 standards) operations" (paper Section III).  The cycle-accurate
//! hardware simulator in `asr-hw` wants to compute *exactly* what the silicon
//! datapath would compute, including when the mantissa datapath is narrowed
//! for the memory/bandwidth study.  [`SoftFloat`] therefore implements the
//! floating-point primitives the datapath needs — add, multiply and fused
//! multiply-add — directly on sign/exponent/mantissa fields with
//! round-to-nearest-even, with an optional reduced mantissa width applied to
//! every result, so narrowed datapaths quantise after each operation the way
//! truncated hardware would.

use crate::reduced::MantissaWidth;

/// Unpacked IEEE-754 single-precision value used internally by the datapath
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Unpacked {
    sign: u32,
    /// Biased exponent, 0..=255.
    exp: i32,
    /// 24-bit significand including the hidden bit (0 for zero).
    frac: u64,
}

fn unpack(x: f32) -> Unpacked {
    let bits = x.to_bits();
    let sign = bits >> 31;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mantissa = (bits & 0x7f_ffff) as u64;
    if exp == 0 {
        // subnormal or zero: treat as value with exponent 1 and no hidden bit
        Unpacked {
            sign,
            exp: 1,
            frac: mantissa,
        }
    } else {
        Unpacked {
            sign,
            exp,
            frac: mantissa | 0x80_0000,
        }
    }
}

/// Packs sign, unbiased-ish exponent and a 24-bit-aligned significand back
/// into an `f32` with round-to-nearest-even, handling overflow/underflow.
fn pack(sign: u32, mut exp: i32, mut frac: u64) -> f32 {
    if frac == 0 {
        return f32::from_bits(sign << 31);
    }
    // Normalise so the hidden bit sits at bit 23. Bits shifted out here are
    // dropped (truncation): callers carry guard bits and round with
    // `round_significand` before packing, so the loss is below the guard.
    while frac >= 0x100_0000 {
        frac >>= 1;
        exp += 1;
    }
    while frac < 0x80_0000 && exp > 1 {
        frac <<= 1;
        exp -= 1;
    }
    if exp >= 0xff {
        // overflow -> infinity
        return f32::from_bits((sign << 31) | 0x7f80_0000);
    }
    if frac < 0x80_0000 {
        // subnormal
        return f32::from_bits((sign << 31) | (frac as u32 & 0x7f_ffff));
    }
    f32::from_bits((sign << 31) | ((exp as u32) << 23) | (frac as u32 & 0x7f_ffff))
}

/// Rounds a significand carrying `extra` guard bits down to 24 bits with
/// round-to-nearest-even, returning the rounded significand and an exponent
/// increment.
fn round_significand(frac: u64, extra: u32) -> (u64, i32) {
    if extra == 0 {
        return (frac, 0);
    }
    let keep = frac >> extra;
    let rem = frac & ((1u64 << extra) - 1);
    let half = 1u64 << (extra - 1);
    let mut rounded = keep;
    if rem > half || (rem == half && keep & 1 == 1) {
        rounded += 1;
    }
    let mut exp_inc = 0;
    let mut out = rounded;
    if out >= 0x100_0000 {
        out >>= 1;
        exp_inc = 1;
    }
    (out, exp_inc)
}

/// A software model of the accelerator's floating-point datapath.
///
/// All operations are IEEE-754 single precision with round-to-nearest-even;
/// when constructed with a reduced [`MantissaWidth`], every *result* is
/// additionally quantised to that width, modelling a narrowed datapath.
///
/// # Example
///
/// ```
/// use asr_float::SoftFloat;
/// let fp = SoftFloat::ieee754();
/// assert_eq!(fp.add(1.5, 2.25), 3.75);
/// assert_eq!(fp.mul(3.0, -2.0), -6.0);
/// // (x - y)^2 * z, the first stage of the OP unit pipeline
/// assert_eq!(fp.sq_diff_mul(5.0, 3.0, 0.5), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftFloat {
    width: MantissaWidth,
}

impl SoftFloat {
    /// Datapath with the full 23-bit mantissa (standard IEEE-754 single).
    pub fn ieee754() -> Self {
        SoftFloat {
            width: MantissaWidth::FULL,
        }
    }

    /// Datapath whose results are quantised to `width`.
    pub fn with_width(width: MantissaWidth) -> Self {
        SoftFloat { width }
    }

    /// The mantissa width of this datapath.
    pub fn width(&self) -> MantissaWidth {
        self.width
    }

    #[inline]
    fn finish(&self, value: f32) -> f32 {
        self.width.quantize(value)
    }

    /// Floating-point addition as the hardware adder computes it.
    pub fn add(&self, a: f32, b: f32) -> f32 {
        if a.is_nan() || b.is_nan() {
            return self.finish(f32::NAN);
        }
        if a.is_infinite() || b.is_infinite() {
            return self.finish(a + b);
        }
        if a == 0.0 {
            return self.finish(b);
        }
        if b == 0.0 {
            return self.finish(a);
        }
        let ua = unpack(a);
        let ub = unpack(b);
        // Align on the larger exponent with 3 guard bits + sticky.
        const GUARD: u32 = 6;
        let (hi, lo) = if (ua.exp, ua.frac) >= (ub.exp, ub.frac) {
            (ua, ub)
        } else {
            (ub, ua)
        };
        let shift = (hi.exp - lo.exp) as u32;
        let hi_frac = hi.frac << GUARD;
        let lo_frac = if shift >= 48 {
            if lo.frac != 0 {
                1
            } else {
                0
            }
        } else {
            let shifted = (lo.frac << GUARD) >> shift;
            let sticky = if (lo.frac << GUARD) & ((1u64 << shift) - 1) != 0 {
                1
            } else {
                0
            };
            shifted | sticky
        };
        let (sign, mag) = if hi.sign == lo.sign {
            (hi.sign, hi_frac + lo_frac)
        } else if hi_frac >= lo_frac {
            (hi.sign, hi_frac - lo_frac)
        } else {
            (lo.sign, lo_frac - hi_frac)
        };
        if mag == 0 {
            return self.finish(0.0);
        }
        // Re-normalise: mag currently has the binary point at bit 23+GUARD.
        let mut exp = hi.exp;
        let mut frac = mag;
        while frac >= (0x100_0000u64 << GUARD) {
            frac >>= 1;
            exp += 1;
        }
        while frac < (0x80_0000u64 << GUARD) && exp > 1 {
            frac <<= 1;
            exp -= 1;
        }
        let (rounded, inc) = round_significand(frac, GUARD);
        let result = pack(sign, exp + inc, rounded);
        self.finish(result)
    }

    /// Floating-point subtraction.
    pub fn sub(&self, a: f32, b: f32) -> f32 {
        self.add(a, -b)
    }

    /// Floating-point multiplication as the hardware multiplier computes it.
    pub fn mul(&self, a: f32, b: f32) -> f32 {
        if a.is_nan() || b.is_nan() {
            return self.finish(f32::NAN);
        }
        if a.is_infinite() || b.is_infinite() || a == 0.0 || b == 0.0 {
            return self.finish(a * b);
        }
        let ua = unpack(a);
        let ub = unpack(b);
        let sign = ua.sign ^ ub.sign;
        // 24 x 24 -> 48-bit product; binary point after bit 46 or 47.
        let product = ua.frac * ub.frac;
        let mut exp = ua.exp + ub.exp - 127;
        let mut frac = product;
        // Normalise so the hidden bit is at bit 23 + 24 = 47 → shift down to 23
        // keeping 24 guard bits, then round.
        if frac >= (1u64 << 47) {
            exp += 1;
        } else {
            frac <<= 1;
        }
        // Now the hidden bit is at bit 47. Keep 24 guard bits below bit 23.
        let (rounded, inc) = round_significand(frac, 24);
        if exp + inc <= 0 {
            // Underflow to zero/subnormal: fall back to the native result,
            // which is what a denormal-supporting datapath produces.
            return self.finish(a * b);
        }
        let result = pack(sign, exp + inc, rounded);
        self.finish(result)
    }

    /// Fused multiply-add `a * b + c`, rounded once — the OP unit's
    /// scale-and-weight-adjust (SWA) stage is a fused multiply-add.
    pub fn fma(&self, a: f32, b: f32, c: f32) -> f32 {
        // A faithful single-rounding FMA via double precision: the product of
        // two f32 values is exact in f64, and the final rounding to f32
        // happens once, which matches fused hardware.
        let exact = (a as f64) * (b as f64) + (c as f64);
        self.finish(exact as f32)
    }

    /// The first pipeline stage of the OP unit: `(x − y)² · z`.
    ///
    /// In the paper `x` is a feature-vector component `O_ji`, `y` the Gaussian
    /// mean `µ_ji`, and `z` the precision term `δ_ji` (a function of the
    /// variance), giving one term of the exponent sum in equation (6).
    pub fn sq_diff_mul(&self, x: f32, y: f32, z: f32) -> f32 {
        let d = self.sub(x, y);
        let sq = self.mul(d, d);
        self.mul(sq, z)
    }

    /// The full inner-loop accumulation of equation (6):
    /// `C + Σ_i (o_i − µ_i)² · δ_i`, evaluated the way the pipelined hardware
    /// does — one `sq_diff_mul` plus one accumulate per dimension.
    pub fn gaussian_exponent(&self, obs: &[f32], mean: &[f32], prec: &[f32], constant: f32) -> f32 {
        debug_assert_eq!(obs.len(), mean.len());
        debug_assert_eq!(obs.len(), prec.len());
        let mut acc = constant;
        for i in 0..obs.len() {
            let term = self.sq_diff_mul(obs[i], mean[i], prec[i]);
            acc = self.add(acc, term);
        }
        acc
    }
}

impl Default for SoftFloat {
    fn default() -> Self {
        Self::ieee754()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ulp_diff(a: f32, b: f32) -> u32 {
        if a == b {
            return 0;
        }
        let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
        (ia - ib).unsigned_abs() as u32
    }

    #[test]
    fn add_matches_native_on_simple_cases() {
        let fp = SoftFloat::ieee754();
        let cases = [
            (1.5f32, 2.25f32),
            (0.1, 0.2),
            (-1.0, 1.0),
            (1.0e-10, 1.0),
            (-3.5, -4.25),
            (12345.678, -0.0001),
            (1.0, -1.0000001),
        ];
        for &(a, b) in &cases {
            let got = fp.add(a, b);
            let want = a + b;
            assert!(
                ulp_diff(got, want) <= 1,
                "add({a}, {b}) = {got}, native {want}"
            );
        }
    }

    #[test]
    fn add_special_values() {
        let fp = SoftFloat::ieee754();
        assert_eq!(fp.add(0.0, 5.0), 5.0);
        assert_eq!(fp.add(5.0, 0.0), 5.0);
        assert_eq!(fp.add(f32::INFINITY, 1.0), f32::INFINITY);
        assert!(fp.add(f32::NAN, 1.0).is_nan());
        assert_eq!(fp.add(1.0, -1.0), 0.0);
    }

    #[test]
    fn mul_matches_native_on_simple_cases() {
        let fp = SoftFloat::ieee754();
        let cases = [
            (1.5f32, 2.0f32),
            (0.1, 0.2),
            (-3.0, 7.0),
            (1.0e10, 1.0e-10),
            (123.456, -654.321),
            (1.0000001, 0.9999999),
        ];
        for &(a, b) in &cases {
            let got = fp.mul(a, b);
            let want = a * b;
            assert!(
                ulp_diff(got, want) <= 1,
                "mul({a}, {b}) = {got}, native {want}"
            );
        }
    }

    #[test]
    fn mul_special_values() {
        let fp = SoftFloat::ieee754();
        assert_eq!(fp.mul(0.0, 5.0), 0.0);
        assert_eq!(fp.mul(5.0, -0.0), -0.0);
        assert_eq!(fp.mul(f32::INFINITY, 2.0), f32::INFINITY);
        assert!(fp.mul(f32::NAN, 1.0).is_nan());
        assert_eq!(fp.mul(1.0e30, 1.0e30), f32::INFINITY);
    }

    #[test]
    fn fma_is_single_rounded() {
        let fp = SoftFloat::ieee754();
        let (a, b, c) = (1.0000001f32, 1.0000001f32, -1.0000002f32);
        let fused = fp.fma(a, b, c);
        let reference = f32::mul_add(a, b, c);
        assert!(ulp_diff(fused, reference) <= 1);
    }

    #[test]
    fn sq_diff_mul_basic() {
        let fp = SoftFloat::ieee754();
        assert_eq!(fp.sq_diff_mul(5.0, 3.0, 0.5), 2.0);
        assert_eq!(fp.sq_diff_mul(3.0, 5.0, 0.5), 2.0);
        assert_eq!(fp.sq_diff_mul(1.0, 1.0, 100.0), 0.0);
    }

    #[test]
    fn gaussian_exponent_matches_reference() {
        let fp = SoftFloat::ieee754();
        let obs = [1.0f32, 2.0, 3.0, 4.0];
        let mean = [0.5f32, 2.5, 2.0, 4.5];
        let prec = [2.0f32, 1.0, 0.5, 4.0];
        let c = -3.25f32;
        let got = fp.gaussian_exponent(&obs, &mean, &prec, c);
        let want: f32 = c + obs
            .iter()
            .zip(&mean)
            .zip(&prec)
            .map(|((&o, &m), &p)| (o - m) * (o - m) * p)
            .sum::<f32>();
        assert!((got - want).abs() < 1e-4);
    }

    #[test]
    fn reduced_width_quantises_results() {
        let fp12 = SoftFloat::with_width(MantissaWidth::BITS_12);
        let r = fp12.add(1.0, 1.0e-6);
        // With only 12 mantissa bits, 1 + 1e-6 is indistinguishable from 1.
        assert_eq!(r, 1.0);
        let full = SoftFloat::ieee754();
        assert!(full.add(1.0, 1.0e-6) > 1.0);
        assert_eq!(fp12.width(), MantissaWidth::BITS_12);
        assert_eq!(SoftFloat::default().width(), MantissaWidth::FULL);
    }

    #[test]
    fn reduced_width_error_is_bounded() {
        let fp = SoftFloat::with_width(MantissaWidth::BITS_12);
        let bound = MantissaWidth::BITS_12.max_relative_error() * 4.0;
        for i in 1..200 {
            let a = i as f32 * 0.77;
            let b = (200 - i) as f32 * 1.3;
            let got = fp.add(a, b) as f64;
            let want = (a + b) as f64;
            assert!(((got - want).abs() / want) <= bound);
        }
    }

    proptest! {
        #[test]
        fn prop_add_close_to_native(a in -1.0e20f32..1.0e20, b in -1.0e20f32..1.0e20) {
            let fp = SoftFloat::ieee754();
            let got = fp.add(a, b);
            let want = a + b;
            if want.is_finite() && want != 0.0 {
                prop_assert!(((got - want).abs() / want.abs()) < 1e-6,
                    "add({a},{b}) got {got} want {want}");
            }
        }

        #[test]
        fn prop_mul_close_to_native(a in -1.0e15f32..1.0e15, b in -1.0e15f32..1.0e15) {
            let fp = SoftFloat::ieee754();
            let got = fp.mul(a, b);
            let want = a * b;
            if want.is_finite() && want != 0.0 && want.abs() > f32::MIN_POSITIVE {
                prop_assert!(((got - want).abs() / want.abs()) < 1e-6,
                    "mul({a},{b}) got {got} want {want}");
            }
        }

        #[test]
        fn prop_add_commutative(a in -1.0e20f32..1.0e20, b in -1.0e20f32..1.0e20) {
            let fp = SoftFloat::ieee754();
            prop_assert_eq!(fp.add(a, b).to_bits(), fp.add(b, a).to_bits());
        }

        #[test]
        fn prop_sq_diff_mul_nonnegative_for_positive_z(
            x in -1.0e3f32..1.0e3, y in -1.0e3f32..1.0e3, z in 0.0f32..1.0e3
        ) {
            let fp = SoftFloat::ieee754();
            prop_assert!(fp.sq_diff_mul(x, y, z) >= 0.0);
        }
    }
}
