//! Reduced-mantissa IEEE-754 storage.
//!
//! The paper's results section studies shrinking the mantissa of the 32-bit
//! floating-point acoustic-model parameters from the full 23 bits down to 15
//! and 12 bits, which shrinks both the flash footprint of the acoustic model
//! and — because the model is re-read every frame — the worst-case memory
//! bandwidth:
//!
//! | mantissa | memory (MB) | bandwidth (GB/s) |
//! |---------:|------------:|-----------------:|
//! | 23 bits  | 15.16       | 1.516            |
//! | 15 bits  | 11.37       | 1.137            |
//! | 12 bits  |  9.95       | 0.995            |
//!
//! This module provides [`MantissaWidth`] (how many mantissa bits are kept),
//! [`Quantizer`] (applies the truncation to values and whole parameter
//! vectors, and reports storage sizes), and [`ReducedF32`] (a value that
//! remembers the width it was quantised to).

use crate::FloatError;

/// Number of explicitly stored mantissa bits in an IEEE-754 single.
pub const F32_MANTISSA_BITS: u8 = 23;
/// Exponent bits in an IEEE-754 single.
pub const F32_EXPONENT_BITS: u8 = 8;
/// Sign bits in an IEEE-754 single.
pub const F32_SIGN_BITS: u8 = 1;

/// How many mantissa bits of each stored 32-bit float are kept.
///
/// The total storage width of a value is `1 (sign) + 8 (exponent) + mantissa`
/// bits; the paper considers 23 (full single precision), 15 and 12 bits.
///
/// # Example
///
/// ```
/// use asr_float::MantissaWidth;
/// assert_eq!(MantissaWidth::FULL.storage_bits(), 32);
/// assert_eq!(MantissaWidth::new(12).unwrap().storage_bits(), 21);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MantissaWidth(u8);

impl MantissaWidth {
    /// Full IEEE-754 single precision (23 mantissa bits, 32-bit storage).
    pub const FULL: MantissaWidth = MantissaWidth(23);
    /// The paper's 15-bit mantissa configuration (24-bit storage).
    pub const BITS_15: MantissaWidth = MantissaWidth(15);
    /// The paper's 12-bit mantissa configuration (21-bit storage).
    pub const BITS_12: MantissaWidth = MantissaWidth(12);

    /// The three widths studied in the paper's results table.
    pub const PAPER_SWEEP: [MantissaWidth; 3] =
        [MantissaWidth(23), MantissaWidth(15), MantissaWidth(12)];

    /// Creates a mantissa width.
    ///
    /// # Errors
    ///
    /// Returns [`FloatError::InvalidMantissaWidth`] unless `1 <= bits <= 23`.
    pub fn new(bits: u8) -> Result<Self, FloatError> {
        if (1..=F32_MANTISSA_BITS).contains(&bits) {
            Ok(MantissaWidth(bits))
        } else {
            Err(FloatError::InvalidMantissaWidth(bits))
        }
    }

    /// Number of mantissa bits kept.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Number of mantissa bits dropped relative to full precision.
    #[inline]
    pub fn dropped_bits(self) -> u8 {
        F32_MANTISSA_BITS - self.0
    }

    /// Total storage width of one value: sign + exponent + kept mantissa.
    #[inline]
    pub fn storage_bits(self) -> u32 {
        (F32_SIGN_BITS + F32_EXPONENT_BITS + self.0) as u32
    }

    /// Storage size of one value in bytes (fractional — packed storage).
    #[inline]
    pub fn storage_bytes(self) -> f64 {
        self.storage_bits() as f64 / 8.0
    }

    /// The worst relative quantisation error introduced by truncating to this
    /// width: `2^-bits` (one unit in the last kept place).
    #[inline]
    pub fn max_relative_error(self) -> f64 {
        2.0f64.powi(-(self.0 as i32))
    }

    /// Truncates a value's mantissa to this width (round-to-nearest-even on
    /// the kept bits, as a storage quantiser would).
    #[inline]
    pub fn quantize(self, value: f32) -> f32 {
        if self.0 == F32_MANTISSA_BITS || !value.is_finite() {
            return value;
        }
        let drop = self.dropped_bits() as u32;
        let bits = value.to_bits();
        let mask = (1u32 << drop) - 1;
        let remainder = bits & mask;
        let half = 1u32 << (drop - 1);
        let mut truncated = bits & !mask;
        // round to nearest, ties to even on the kept LSB
        if remainder > half || (remainder == half && (truncated >> drop) & 1 == 1) {
            truncated = truncated.wrapping_add(1u32 << drop);
        }
        let q = f32::from_bits(truncated);
        if q.is_finite() {
            q
        } else {
            // rounding overflowed the exponent; clamp to the largest finite
            // value with the original sign, as saturating hardware would.
            if value.is_sign_negative() {
                f32::MIN
            } else {
                f32::MAX
            }
        }
    }
}

impl Default for MantissaWidth {
    fn default() -> Self {
        Self::FULL
    }
}

impl core::fmt::Display for MantissaWidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}-bit mantissa", self.0)
    }
}

impl TryFrom<u8> for MantissaWidth {
    type Error = FloatError;

    fn try_from(bits: u8) -> Result<Self, Self::Error> {
        MantissaWidth::new(bits)
    }
}

/// A float that has been quantised to a particular [`MantissaWidth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReducedF32 {
    value: f32,
    width: MantissaWidth,
}

impl ReducedF32 {
    /// Quantises `value` to `width`.
    #[inline]
    pub fn new(value: f32, width: MantissaWidth) -> Self {
        ReducedF32 {
            value: width.quantize(value),
            width,
        }
    }

    /// The quantised value.
    #[inline]
    pub fn value(self) -> f32 {
        self.value
    }

    /// The width the value was quantised to.
    #[inline]
    pub fn width(self) -> MantissaWidth {
        self.width
    }
}

impl From<ReducedF32> for f32 {
    fn from(r: ReducedF32) -> f32 {
        r.value
    }
}

/// Applies mantissa reduction to values, slices and whole parameter sets, and
/// accounts for the packed storage they would occupy in flash.
///
/// # Example
///
/// ```
/// use asr_float::{MantissaWidth, Quantizer};
/// let q = Quantizer::new(MantissaWidth::BITS_12);
/// let x = q.quantize(1.000123_f32);
/// assert!((x - 1.000123).abs() < 1.0e-3);
/// // 4 values × 21 bits = 84 bits = 10.5 bytes
/// assert!((q.storage_bytes(4) - 10.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    width: MantissaWidth,
}

impl Quantizer {
    /// Creates a quantiser for the given width.
    pub fn new(width: MantissaWidth) -> Self {
        Quantizer { width }
    }

    /// The width this quantiser truncates to.
    pub fn width(&self) -> MantissaWidth {
        self.width
    }

    /// Quantises a single value.
    #[inline]
    pub fn quantize(&self, value: f32) -> f32 {
        self.width.quantize(value)
    }

    /// Quantises a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        if self.width.bits() == F32_MANTISSA_BITS {
            return;
        }
        for v in values.iter_mut() {
            *v = self.width.quantize(*v);
        }
    }

    /// Returns a quantised copy of the input.
    pub fn quantized(&self, values: &[f32]) -> Vec<f32> {
        values.iter().map(|&v| self.width.quantize(v)).collect()
    }

    /// Packed storage, in bits, of `count` values at this width.
    pub fn storage_bits(&self, count: usize) -> u64 {
        count as u64 * self.width.storage_bits() as u64
    }

    /// Packed storage, in bytes, of `count` values at this width.
    pub fn storage_bytes(&self, count: usize) -> f64 {
        self.storage_bits(count) as f64 / 8.0
    }

    /// Packed storage, in megabytes (10^6 bytes, as the paper reports), of
    /// `count` values at this width.
    pub fn storage_megabytes(&self, count: usize) -> f64 {
        self.storage_bytes(count) / 1.0e6
    }

    /// Largest relative error introduced on any single quantised value.
    pub fn max_relative_error(&self) -> f64 {
        self.width.max_relative_error()
    }

    /// Measures the actual maximum relative error over a slice (useful in the
    /// experiment harness to confirm the analytic bound).
    pub fn measured_relative_error(&self, values: &[f32]) -> f64 {
        values
            .iter()
            .filter(|v| v.is_finite() && **v != 0.0)
            .map(|&v| {
                let q = self.quantize(v);
                ((q - v).abs() / v.abs()) as f64
            })
            .fold(0.0, f64::max)
    }
}

impl Default for Quantizer {
    fn default() -> Self {
        Quantizer::new(MantissaWidth::FULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn widths_and_storage() {
        assert_eq!(MantissaWidth::FULL.bits(), 23);
        assert_eq!(MantissaWidth::FULL.storage_bits(), 32);
        assert_eq!(MantissaWidth::BITS_15.storage_bits(), 24);
        assert_eq!(MantissaWidth::BITS_12.storage_bits(), 21);
        assert_eq!(MantissaWidth::BITS_12.dropped_bits(), 11);
        assert_eq!(MantissaWidth::default(), MantissaWidth::FULL);
        assert_eq!(MantissaWidth::PAPER_SWEEP.len(), 3);
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(MantissaWidth::new(0).is_err());
        assert!(MantissaWidth::new(24).is_err());
        assert!(MantissaWidth::try_from(12).is_ok());
        assert!(MantissaWidth::try_from(200).is_err());
    }

    #[test]
    fn full_width_is_identity() {
        let q = Quantizer::new(MantissaWidth::FULL);
        for &v in &[0.0f32, 1.5, -3.75, 1.0e-20, 1.0e20, core::f32::consts::PI] {
            assert_eq!(q.quantize(v), v);
        }
    }

    #[test]
    fn quantize_respects_relative_error_bound() {
        for width in MantissaWidth::PAPER_SWEEP {
            let q = Quantizer::new(width);
            let bound = width.max_relative_error();
            for i in 1..2000 {
                let v = (i as f32) * 0.37 - 350.0;
                if v == 0.0 {
                    continue;
                }
                let e = ((q.quantize(v) - v).abs() / v.abs()) as f64;
                assert!(e <= bound, "width {width} value {v} error {e} > {bound}");
            }
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = Quantizer::new(MantissaWidth::BITS_12);
        for i in 0..500 {
            let v = (i as f32 - 250.0) * 1.7;
            let once = q.quantize(v);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn quantize_preserves_specials() {
        let w = MantissaWidth::BITS_12;
        assert_eq!(w.quantize(0.0), 0.0);
        assert_eq!(w.quantize(f32::INFINITY), f32::INFINITY);
        assert_eq!(w.quantize(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(w.quantize(f32::NAN).is_nan());
        assert_eq!(w.quantize(-1.0), -1.0);
        // Rounding near f32::MAX must not produce infinity.
        assert!(w.quantize(f32::MAX).is_finite());
        assert!(w.quantize(f32::MIN).is_finite());
    }

    #[test]
    fn reduced_f32_remembers_width() {
        let r = ReducedF32::new(1.2345678, MantissaWidth::BITS_12);
        assert_eq!(r.width(), MantissaWidth::BITS_12);
        assert_eq!(f32::from(r), r.value());
        assert_eq!(r.value(), MantissaWidth::BITS_12.quantize(1.2345678));
    }

    #[test]
    fn slice_and_vec_quantisation() {
        let q = Quantizer::new(MantissaWidth::BITS_15);
        let src = vec![0.123_456_79_f32, -9.876_543, 3.3333333, 100000.123];
        let copy = q.quantized(&src);
        let mut in_place = src.clone();
        q.quantize_slice(&mut in_place);
        assert_eq!(copy, in_place);
        assert!(q.measured_relative_error(&src) <= q.max_relative_error());
        // Full-width in-place is a no-op fast path.
        let full = Quantizer::default();
        let mut same = src.clone();
        full.quantize_slice(&mut same);
        assert_eq!(same, src);
    }

    #[test]
    fn storage_accounting() {
        let q = Quantizer::new(MantissaWidth::BITS_12);
        assert_eq!(q.storage_bits(1000), 21_000);
        assert!((q.storage_bytes(1000) - 2625.0).abs() < 1e-9);
        assert!((q.storage_megabytes(1_000_000) - 2.625).abs() < 1e-9);
        let full = Quantizer::new(MantissaWidth::FULL);
        assert_eq!(full.storage_bits(10), 320);
    }

    #[test]
    fn display_mentions_bits() {
        assert_eq!(format!("{}", MantissaWidth::BITS_12), "12-bit mantissa");
    }

    proptest! {
        #[test]
        fn prop_error_within_bound(v in -1.0e6f32..1.0e6, bits in 1u8..=23) {
            prop_assume!(v != 0.0);
            let w = MantissaWidth::new(bits).unwrap();
            let q = w.quantize(v);
            let rel = ((q - v).abs() / v.abs()) as f64;
            prop_assert!(rel <= w.max_relative_error() + f64::EPSILON);
        }

        #[test]
        fn prop_idempotent(v in -1.0e6f32..1.0e6, bits in 1u8..=23) {
            let w = MantissaWidth::new(bits).unwrap();
            let q = w.quantize(v);
            prop_assert_eq!(w.quantize(q), q);
        }

        #[test]
        fn prop_sign_preserved(v in -1.0e6f32..1.0e6, bits in 1u8..=23) {
            prop_assume!(v != 0.0);
            let w = MantissaWidth::new(bits).unwrap();
            let q = w.quantize(v);
            prop_assert!(q == 0.0 || (q > 0.0) == (v > 0.0));
        }

        #[test]
        fn prop_monotone_storage(bits_a in 1u8..=23, bits_b in 1u8..=23) {
            let wa = MantissaWidth::new(bits_a).unwrap();
            let wb = MantissaWidth::new(bits_b).unwrap();
            if bits_a <= bits_b {
                prop_assert!(wa.storage_bits() <= wb.storage_bits());
                prop_assert!(wa.max_relative_error() >= wb.max_relative_error());
            }
        }
    }
}
