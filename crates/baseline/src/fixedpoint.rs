//! Fixed-point score analysis.
//!
//! "The observation probabilities are calculated in logarithmic domain so the
//! values can vary from zero to very large negative value, which may cause a
//! problem for the systems using fixed point computation." — this module
//! quantifies that problem: it pushes a set of log-domain scores through the
//! Q16.16 arithmetic a fixed-point software decoder would use and reports how
//! many saturate and how much precision the survivors lose.

use asr_float::{LogProb, Q16_16};

/// Outcome of passing one batch of log scores through fixed-point arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FixedPointReport {
    /// Number of scores analysed.
    pub total: usize,
    /// Scores that saturated the Q16.16 range (information destroyed).
    pub saturated: usize,
    /// Largest absolute representation error among the non-saturated scores.
    pub max_abs_error: f64,
    /// Mean absolute representation error among the non-saturated scores.
    pub mean_abs_error: f64,
}

impl FixedPointReport {
    /// Fraction of scores destroyed by saturation.
    pub fn saturation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.saturated as f64 / self.total as f64
        }
    }
}

/// Analyses fixed-point behaviour of log-domain scores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedPointAnalysis;

impl FixedPointAnalysis {
    /// Creates the analyser.
    pub fn new() -> Self {
        FixedPointAnalysis
    }

    /// Converts each score to Q16.16 and back, reporting saturation and error.
    pub fn analyze(&self, scores: &[LogProb]) -> FixedPointReport {
        let mut report = FixedPointReport {
            total: scores.len(),
            ..FixedPointReport::default()
        };
        let mut err_sum = 0.0f64;
        let mut kept = 0usize;
        for &s in scores {
            let q = Q16_16::from_f32(s.raw());
            if q.is_saturated() || s.is_zero() {
                report.saturated += 1;
                continue;
            }
            let err = (q.to_f64() - s.raw() as f64).abs();
            report.max_abs_error = report.max_abs_error.max(err);
            err_sum += err;
            kept += 1;
        }
        if kept > 0 {
            report.mean_abs_error = err_sum / kept as f64;
        }
        report
    }

    /// Analyses the accumulated *path* scores of an utterance: per-frame
    /// scores add up over `frames` frames, which is what actually overflows a
    /// 16-bit integer range first.
    pub fn analyze_accumulated(&self, per_frame_score: LogProb, frames: usize) -> FixedPointReport {
        let scores: Vec<LogProb> = (1..=frames)
            .map(|t| LogProb::new(per_frame_score.raw() * t as f32))
            .collect();
        self.analyze(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_scores_survive() {
        let a = FixedPointAnalysis::new();
        let scores: Vec<LogProb> = (1..100).map(|i| LogProb::new(-(i as f32))).collect();
        let r = a.analyze(&scores);
        assert_eq!(r.total, 99);
        assert_eq!(r.saturated, 0);
        assert!(r.max_abs_error < 1.0e-4);
        assert!(r.mean_abs_error <= r.max_abs_error);
        assert_eq!(r.saturation_rate(), 0.0);
    }

    #[test]
    fn very_negative_scores_saturate() {
        // This is exactly the paper's warning: log scores reach very large
        // negative values and destroy a fixed-point representation.
        let a = FixedPointAnalysis::new();
        let scores = vec![
            LogProb::new(-10.0),
            LogProb::new(-40_000.0),
            LogProb::new(-1.0e7),
            LogProb::zero(),
        ];
        let r = a.analyze(&scores);
        assert_eq!(r.total, 4);
        assert_eq!(r.saturated, 3);
        assert!((r.saturation_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accumulated_path_scores_overflow_within_seconds() {
        let a = FixedPointAnalysis::new();
        // A typical per-frame log score of −80 overflows Q16.16 (−32768)
        // after ~410 frames ≈ 4 seconds of speech.
        let r = a.analyze_accumulated(LogProb::new(-80.0), 1_000);
        assert!(r.saturated > 0, "long utterances must overflow");
        assert!(r.saturated < r.total, "short prefixes must survive");
        let first_overflow = r.total - r.saturated;
        assert!(
            (300..500).contains(&first_overflow),
            "overflow after ~410 frames, got {first_overflow}"
        );
        assert_eq!(a.analyze(&[]).saturation_rate(), 0.0);
    }
}
