//! A model of the Mathew, Davis and Fang (CASES 2003) SPHINX-3 accelerator,
//! the closest related design the paper compares against.
//!
//! The paper's characterisation: "This implementation meets real-time
//! performance requirement and reduces bandwidth. Though the power requirement
//! is low for Gaussian calculation, our design has much less power
//! consumption. The speech recognition application is memory intensive [...]
//! and the acoustic models are not accessed through a DMA, therefore,
//! performance may be poor because of resource contention."
//!
//! The model here reproduces those properties quantitatively so the E6
//! comparison table can be regenerated: it meets real time, evaluates the full
//! senone set (no word-decode feedback), consumes roughly an order of
//! magnitude more power than the paper's 2 × 200 mW structures, and charges a
//! host-contention penalty for the non-DMA model accesses.

use asr_acoustic::AcousticModelConfig;
use asr_float::MantissaWidth;
use asr_hw::ClockDomain;

/// Model of the CASES'03 Gaussian-acceleration coprocessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MathewAccelerator {
    /// Accelerator clock (the published design runs faster than 50 MHz).
    pub clock: ClockDomain,
    /// Power of the Gaussian accelerator while active, watts.
    pub accelerator_power_w: f64,
    /// Power of the host processor that still runs the search, watts.
    pub host_power_w: f64,
    /// Fraction of host cycles lost to contention because acoustic-model
    /// fetches are not DMA-decoupled.
    pub contention_overhead: f64,
    /// Feature dimensions the accelerator's datapath processes per cycle
    /// (the CASES'03 design is wider than the paper's single-lane OP unit).
    pub parallel_lanes: f64,
}

impl MathewAccelerator {
    /// The published design point, scaled to the same 0.18 µm-era assumptions
    /// as the rest of the workspace: a 160 MHz accelerator at ≈ 1.8 W plus a
    /// host running the search.
    pub fn published() -> Self {
        MathewAccelerator {
            clock: ClockDomain::new(160.0e6),
            accelerator_power_w: 1.8,
            host_power_w: 0.4,
            contention_overhead: 0.25,
            parallel_lanes: 2.0,
        }
    }

    /// Total system power while decoding, watts.
    pub fn system_power_w(&self) -> f64 {
        self.accelerator_power_w + self.host_power_w
    }

    /// Senones evaluated per frame: the design scores the full inventory
    /// (it has no word-decode feedback path).
    pub fn senones_per_frame(&self, geometry: &AcousticModelConfig) -> usize {
        geometry.num_senones
    }

    /// Worst-case acoustic-model bandwidth in GB/s (full model per 10 ms
    /// frame at 32-bit parameters — the design does not use reduced-mantissa
    /// storage).
    pub fn bandwidth_gb_per_s(&self, geometry: &AcousticModelConfig) -> f64 {
        let params = geometry.total_gaussian_params() as f64;
        let bytes = params * MantissaWidth::FULL.storage_bytes();
        bytes / 0.010 / 1.0e9
    }

    /// Real-time factor: the published design meets real time for the full
    /// evaluation, but host contention inflates the search time.
    pub fn real_time_factor(&self, geometry: &AcousticModelConfig) -> f64 {
        // Accelerator throughput: `parallel_lanes` dimension-MACs per cycle at
        // a higher clock than the paper's 50 MHz OP unit.
        let cycles_per_senone = geometry.num_components as f64
            * (geometry.feature_dim as f64 / self.parallel_lanes.max(1.0) + 8.0);
        let accel_cycles = geometry.num_senones as f64 * cycles_per_senone;
        let accel_time = accel_cycles / self.clock.frequency_hz();
        let accel_rtf = accel_time / 0.010;
        // Host search at ~0.4 RTF, inflated by contention.
        let host_rtf = 0.4 * (1.0 + self.contention_overhead);
        accel_rtf.max(host_rtf)
    }

    /// Energy per second of audio, joules.
    pub fn energy_per_audio_second_j(&self, geometry: &AcousticModelConfig) -> f64 {
        self.system_power_w() * self.real_time_factor(geometry).max(1.0)
    }
}

impl Default for MathewAccelerator {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_hw::PowerModel;

    #[test]
    fn meets_real_time_like_the_paper_says() {
        let m = MathewAccelerator::published();
        let g = AcousticModelConfig::paper_default();
        let rtf = m.real_time_factor(&g);
        assert!(
            rtf <= 1.0,
            "CASES'03 accelerator meets real time, rtf {rtf}"
        );
        assert_eq!(MathewAccelerator::default(), m);
    }

    #[test]
    fn consumes_much_more_power_than_the_paper_design() {
        // "our design has much less power consumption" — at least 5× less.
        let m = MathewAccelerator::published();
        let ours = 2.0 * PowerModel::paper_calibrated().structure_full_power_w();
        assert!(
            m.system_power_w() > 5.0 * ours,
            "{} vs {}",
            m.system_power_w(),
            ours
        );
    }

    #[test]
    fn full_inventory_and_full_bandwidth() {
        let m = MathewAccelerator::published();
        let g = AcousticModelConfig::paper_default();
        assert_eq!(m.senones_per_frame(&g), 6000);
        // No feedback and no mantissa reduction → the 1.5 GB/s worst case.
        assert!((m.bandwidth_gb_per_s(&g) - 1.5168).abs() < 0.01);
        assert!(m.energy_per_audio_second_j(&g) >= m.system_power_w());
    }

    #[test]
    fn contention_inflates_rtf() {
        let mut m = MathewAccelerator::published();
        let g = AcousticModelConfig::paper_default();
        let base = m.real_time_factor(&g);
        m.contention_overhead = 2.0;
        assert!(m.real_time_factor(&g) > base);
    }
}
