//! The software-decoder baseline: the same recognition algorithm run entirely
//! on a general-purpose processor, with an operation-level cost model that
//! converts the decode's measured workload (Gaussians evaluated, HMM updates,
//! bytes moved) into cycles, real-time factor, power and energy.

use asr_acoustic::AcousticModelConfig;
use asr_core::DecodeStats;
use asr_hw::{ClockDomain, HostCpuModel};

/// Which general-purpose platform runs the software decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftwarePlatform {
    /// A 200 MHz embedded ARM9-class core with a floating-point coprocessor —
    /// what a mobile device of the paper's era offers.
    EmbeddedArm,
    /// A 2 GHz desktop processor ("Pentium Series"), the platform the
    /// software recognisers of the related work actually run on.
    DesktopPentium,
}

impl SoftwarePlatform {
    /// The host-CPU model for this platform.
    pub fn cpu_model(self) -> HostCpuModel {
        match self {
            SoftwarePlatform::EmbeddedArm => HostCpuModel::arm9_embedded(),
            SoftwarePlatform::DesktopPentium => HostCpuModel::desktop_pentium(),
        }
    }

    /// The clock the platform runs at.
    pub fn clock(self) -> ClockDomain {
        self.cpu_model().clock
    }
}

/// Cycles a general-purpose processor spends per unit of decoding work.
///
/// The numbers follow the usual software-decoder breakdown: the mixture
/// evaluation dominates (a multiply-accumulate, a subtract and a load per
/// dimension per component, plus log-add overhead), with the search and
/// language model contributing a smaller share — consistent with the profile
/// that motivates both this paper and Mathew et al.'s accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareCostModel {
    /// Cycles per feature dimension per Gaussian component
    /// (load µ/σ, subtract, square, multiply, accumulate).
    pub cycles_per_gaussian_dim: f64,
    /// Fixed cycles per Gaussian component (weight, log-add, bookkeeping).
    pub cycles_per_gaussian_overhead: f64,
    /// Cycles per HMM state update in the Viterbi search.
    pub cycles_per_state_update: f64,
    /// Cycles per active HMM per frame for search bookkeeping (pruning,
    /// lexical-tree traversal, lattice updates).
    pub cycles_per_active_hmm: f64,
    /// Cycles per frame for the frontend.
    pub frontend_cycles_per_frame: f64,
}

impl SoftwareCostModel {
    /// A model of an optimised scalar software decoder (no SIMD), the class
    /// of implementation the paper compares against.
    pub fn scalar_decoder() -> Self {
        SoftwareCostModel {
            cycles_per_gaussian_dim: 6.0,
            cycles_per_gaussian_overhead: 40.0,
            cycles_per_state_update: 25.0,
            cycles_per_active_hmm: 60.0,
            frontend_cycles_per_frame: 60_000.0,
        }
    }

    /// Cycles to evaluate one senone (all mixture components).
    pub fn cycles_per_senone(&self, feature_dim: usize, components: usize) -> f64 {
        components as f64
            * (self.cycles_per_gaussian_dim * feature_dim as f64
                + self.cycles_per_gaussian_overhead)
    }
}

impl Default for SoftwareCostModel {
    fn default() -> Self {
        Self::scalar_decoder()
    }
}

/// The software baseline evaluated for a given platform and model geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareBaseline {
    /// Platform running the decoder.
    pub platform: SoftwarePlatform,
    /// Operation-level cost model.
    pub cost: SoftwareCostModel,
    /// Acoustic-model geometry being decoded.
    pub geometry: AcousticModelConfig2,
}

/// The subset of the acoustic-model geometry the cost model needs.
/// (Mirrors [`asr_acoustic::AcousticModelConfig`] but kept `Copy`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcousticModelConfig2 {
    /// Number of senones in the inventory.
    pub num_senones: usize,
    /// Mixture components per senone.
    pub num_components: usize,
    /// Feature dimension.
    pub feature_dim: usize,
    /// HMM states per triphone.
    pub states_per_hmm: usize,
}

impl From<&AcousticModelConfig> for AcousticModelConfig2 {
    fn from(c: &AcousticModelConfig) -> Self {
        AcousticModelConfig2 {
            num_senones: c.num_senones,
            num_components: c.num_components,
            feature_dim: c.feature_dim,
            states_per_hmm: c.topology.num_states(),
        }
    }
}

/// Result of evaluating the software baseline over a decode's workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareReport {
    /// Platform evaluated.
    pub platform: SoftwarePlatform,
    /// Mean CPU cycles per 10 ms frame.
    pub cycles_per_frame: f64,
    /// Real-time factor (processing time / audio time); ≤ 1 is real time.
    pub real_time_factor: f64,
    /// Average power while decoding, watts.
    pub average_power_w: f64,
    /// Energy per second of audio, joules.
    pub energy_per_audio_second_j: f64,
}

impl SoftwareBaseline {
    /// Creates a baseline.
    pub fn new(
        platform: SoftwarePlatform,
        cost: SoftwareCostModel,
        geometry: &AcousticModelConfig,
    ) -> Self {
        SoftwareBaseline {
            platform,
            cost,
            geometry: geometry.into(),
        }
    }

    /// Evaluates the baseline for a workload in which `senones_per_frame`
    /// senones are scored and `active_hmms_per_frame` HMMs are advanced every
    /// 10 ms frame.
    pub fn evaluate_workload(
        &self,
        senones_per_frame: f64,
        active_hmms_per_frame: f64,
    ) -> SoftwareReport {
        let frame_period = 0.010f64;
        let per_senone = self
            .cost
            .cycles_per_senone(self.geometry.feature_dim, self.geometry.num_components);
        let gaussian_cycles = senones_per_frame * per_senone;
        let viterbi_cycles = active_hmms_per_frame
            * self.geometry.states_per_hmm as f64
            * self.cost.cycles_per_state_update;
        let search_cycles = active_hmms_per_frame * self.cost.cycles_per_active_hmm;
        let cycles_per_frame =
            gaussian_cycles + viterbi_cycles + search_cycles + self.cost.frontend_cycles_per_frame;

        let cpu = self.platform.cpu_model();
        let available = cpu.clock.cycles_in(frame_period) as f64;
        let rtf = cycles_per_frame / available;
        // When the decoder cannot keep up, it runs flat out; otherwise it
        // idles for the rest of the frame.
        let duty = rtf.min(1.0);
        let average_power_w = cpu.active_power_w * duty + cpu.idle_power_w * (1.0 - duty);
        // Energy per second of *audio*: if slower than real time the CPU works
        // rtf seconds per audio second at full power.
        let energy_per_audio_second_j = if rtf <= 1.0 {
            average_power_w
        } else {
            cpu.active_power_w * rtf
        };
        SoftwareReport {
            platform: self.platform,
            cycles_per_frame,
            real_time_factor: rtf,
            average_power_w,
            energy_per_audio_second_j,
        }
    }

    /// Evaluates the baseline for the *worst case* the paper's bandwidth
    /// figure assumes: every senone scored every frame, with a proportional
    /// number of active HMMs.
    pub fn evaluate_full_evaluation(&self) -> SoftwareReport {
        let senones = self.geometry.num_senones as f64;
        // Roughly one active triphone per 3 scored senones (its 3 states).
        let hmms = senones / self.geometry.states_per_hmm as f64;
        self.evaluate_workload(senones, hmms)
    }

    /// Evaluates the baseline replaying the measured workload of a real
    /// decode (the per-frame senone and HMM counts from [`DecodeStats`]).
    pub fn evaluate_decode(&self, stats: &DecodeStats) -> SoftwareReport {
        self.evaluate_workload(stats.mean_senones_scored(), stats.mean_active_hmms())
    }

    /// Evaluates the baseline over a whole batch of decodes (e.g. the
    /// per-utterance statistics out of `Recognizer::decode_batch`), weighting
    /// each utterance's per-frame means by its frame count so the result is
    /// the true per-frame average of the combined stream.  Empty batches (or
    /// batches of empty utterances) evaluate the zero workload.
    pub fn evaluate_decode_batch<'a, I>(&self, stats: I) -> SoftwareReport
    where
        I: IntoIterator<Item = &'a DecodeStats>,
    {
        let mut frames = 0.0f64;
        let mut senones = 0.0f64;
        let mut hmms = 0.0f64;
        for s in stats {
            let f = s.num_frames() as f64;
            frames += f;
            senones += s.mean_senones_scored() * f;
            hmms += s.mean_active_hmms() * f;
        }
        if frames == 0.0 {
            return self.evaluate_workload(0.0, 0.0);
        }
        self.evaluate_workload(senones / frames, hmms / frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_geometry() -> AcousticModelConfig {
        AcousticModelConfig::paper_default()
    }

    #[test]
    fn cost_model_per_senone() {
        let c = SoftwareCostModel::scalar_decoder();
        // 8 comps × (6 × 39 + 40) = 8 × 274 = 2192 cycles per senone.
        assert!((c.cycles_per_senone(39, 8) - 2192.0).abs() < 1e-9);
        assert_eq!(SoftwareCostModel::default(), c);
    }

    #[test]
    fn desktop_is_borderline_real_time_on_full_evaluation() {
        // The paper cites [3]: "Sphinx barely shows real-time performance
        // using present day computers."  Full 6000-senone evaluation on the
        // 2 GHz desktop must land near RTF ≈ 1 (between 0.5 and 2).
        let b = SoftwareBaseline::new(
            SoftwarePlatform::DesktopPentium,
            SoftwareCostModel::scalar_decoder(),
            &paper_geometry(),
        );
        let r = b.evaluate_full_evaluation();
        assert!(
            r.real_time_factor > 0.5 && r.real_time_factor < 2.0,
            "desktop RTF {}",
            r.real_time_factor
        );
        // And it burns tens of watts doing it.
        assert!(r.average_power_w > 10.0);
    }

    #[test]
    fn embedded_software_cannot_do_large_vocabulary_in_real_time() {
        // "Real-time recognition is not achieved by porting software
        // solutions on embedded device."
        let b = SoftwareBaseline::new(
            SoftwarePlatform::EmbeddedArm,
            SoftwareCostModel::scalar_decoder(),
            &paper_geometry(),
        );
        let r = b.evaluate_full_evaluation();
        assert!(
            r.real_time_factor > 3.0,
            "embedded RTF {}",
            r.real_time_factor
        );
        assert!(r.energy_per_audio_second_j > r.average_power_w);
    }

    #[test]
    fn reduced_workload_helps_but_energy_still_exceeds_accelerator() {
        let b = SoftwareBaseline::new(
            SoftwarePlatform::EmbeddedArm,
            SoftwareCostModel::scalar_decoder(),
            &paper_geometry(),
        );
        // Even with only 1500 active senones (the feedback-limited load), the
        // embedded CPU is well above the paper's 0.4 W accelerator budget or
        // fails real time.
        let r = b.evaluate_workload(1500.0, 500.0);
        assert!(r.real_time_factor > 1.0 || r.average_power_w > 0.4);
        // Larger workloads cost more.
        let r2 = b.evaluate_workload(3000.0, 1000.0);
        assert!(r2.cycles_per_frame > r.cycles_per_frame);
        assert!(r2.real_time_factor > r.real_time_factor);
    }

    #[test]
    fn evaluate_decode_uses_measured_stats() {
        use asr_core::FrameStats;
        let mut stats = DecodeStats::new();
        for t in 0..10 {
            stats.push(FrameStats {
                frame: t,
                senones_scored: 100,
                senone_inventory: 6000,
                active_hmms: 30,
                pruned_hmms: 0,
                word_ends: 0,
                cds_skipped: false,
            });
        }
        let b = SoftwareBaseline::new(
            SoftwarePlatform::DesktopPentium,
            SoftwareCostModel::scalar_decoder(),
            &paper_geometry(),
        );
        let r = b.evaluate_decode(&stats);
        let manual = b.evaluate_workload(100.0, 30.0);
        assert_eq!(r, manual);
        assert!(r.real_time_factor < 1.0);
    }

    #[test]
    fn evaluate_decode_batch_weights_by_frames() {
        use asr_core::FrameStats;
        let make = |frames: usize, senones: usize, hmms: usize| {
            let mut s = DecodeStats::new();
            for t in 0..frames {
                s.push(FrameStats {
                    frame: t,
                    senones_scored: senones,
                    senone_inventory: 6000,
                    active_hmms: hmms,
                    pruned_hmms: 0,
                    word_ends: 0,
                    cds_skipped: false,
                });
            }
            s
        };
        let b = SoftwareBaseline::new(
            SoftwarePlatform::DesktopPentium,
            SoftwareCostModel::scalar_decoder(),
            &paper_geometry(),
        );
        // 10 frames at 100 senones + 30 frames at 300 senones → mean 250.
        let parts = [make(10, 100, 20), make(30, 300, 40)];
        let batch = b.evaluate_decode_batch(parts.iter());
        let manual = b.evaluate_workload(250.0, 35.0);
        assert_eq!(batch, manual);
        // A batch is NOT the naive mean of per-utterance reports.
        let naive = b.evaluate_workload(200.0, 30.0);
        assert!(batch.cycles_per_frame > naive.cycles_per_frame);
        // Degenerate batches evaluate the zero workload.
        let empty = b.evaluate_decode_batch([]);
        assert_eq!(empty, b.evaluate_workload(0.0, 0.0));
    }

    #[test]
    fn platform_models() {
        assert!(SoftwarePlatform::DesktopPentium.cpu_model().active_power_w > 10.0);
        assert!(SoftwarePlatform::EmbeddedArm.cpu_model().active_power_w < 1.0);
        assert!(
            SoftwarePlatform::DesktopPentium.clock().frequency_hz()
                > SoftwarePlatform::EmbeddedArm.clock().frequency_hz()
        );
    }
}
