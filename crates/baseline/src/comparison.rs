//! The Section V comparison table (experiment E6).

use crate::mathew::MathewAccelerator;
use crate::software::{SoftwareBaseline, SoftwareCostModel, SoftwarePlatform};
use asr_acoustic::AcousticModelConfig;
use asr_acoustic::StorageLayout;
use asr_float::MantissaWidth;
use asr_hw::PowerModel;

/// One row of the related-work comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// System name.
    pub system: String,
    /// Real-time factor on the paper's 6 000-senone task (≤ 1 is real time).
    pub real_time_factor: f64,
    /// Decoding power, watts.
    pub power_w: f64,
    /// Vocabulary size supported.
    pub vocabulary: usize,
    /// Whether the system models triphones (context-dependent phones).
    pub triphone_based: bool,
    /// Worst-case acoustic-model bandwidth, GB/s.
    pub bandwidth_gb_per_s: f64,
}

impl ComparisonRow {
    /// Whether this row meets real time.
    pub fn is_real_time(&self) -> bool {
        self.real_time_factor <= 1.0
    }
}

/// The full comparison table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComparisonTable {
    rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Builds the Section V comparison for a given acoustic-model geometry and
    /// a measured (or assumed) active-senone count per frame for the paper's
    /// own architecture.
    pub fn section_v(geometry: &AcousticModelConfig, active_senones_per_frame: usize) -> Self {
        let mut rows = Vec::new();

        // This paper's architecture: 2 structures, feedback-limited workload,
        // reduced bandwidth proportional to the active fraction.
        let ours_power = 2.0 * PowerModel::paper_calibrated().structure_full_power_w();
        let layout = StorageLayout::for_config(geometry, MantissaWidth::FULL);
        let ours_bandwidth =
            layout.active_bandwidth_gb_per_s(active_senones_per_frame, geometry.num_senones);
        // Capacity argument: two OP units at 50 MHz cover ~2800 senones/frame.
        let capacity = 2 * asr_hw::OpuConfig::default().senone_capacity(
            geometry.feature_dim,
            geometry.num_components,
            500_000,
        );
        let ours_rtf = active_senones_per_frame as f64 / capacity.max(1) as f64;
        rows.push(ComparisonRow {
            system: "This paper (2 × OPU + Viterbi @ 50 MHz)".into(),
            real_time_factor: ours_rtf,
            power_w: ours_power,
            vocabulary: 20_000,
            triphone_based: true,
            bandwidth_gb_per_s: ours_bandwidth,
        });

        // Desktop software decoder.
        let desktop = SoftwareBaseline::new(
            SoftwarePlatform::DesktopPentium,
            SoftwareCostModel::scalar_decoder(),
            geometry,
        )
        .evaluate_full_evaluation();
        rows.push(ComparisonRow {
            system: "Software decoder on desktop (Sphinx/HTK class)".into(),
            real_time_factor: desktop.real_time_factor,
            power_w: desktop.average_power_w,
            vocabulary: 20_000,
            triphone_based: true,
            bandwidth_gb_per_s: layout.worst_case_bandwidth_gb_per_s(),
        });

        // Embedded software decoder.
        let embedded = SoftwareBaseline::new(
            SoftwarePlatform::EmbeddedArm,
            SoftwareCostModel::scalar_decoder(),
            geometry,
        )
        .evaluate_full_evaluation();
        rows.push(ComparisonRow {
            system: "Software decoder on embedded ARM".into(),
            real_time_factor: embedded.real_time_factor,
            power_w: embedded.average_power_w,
            vocabulary: 20_000,
            triphone_based: true,
            bandwidth_gb_per_s: layout.worst_case_bandwidth_gb_per_s(),
        });

        // Mathew et al. CASES'03.
        let mathew = MathewAccelerator::published();
        rows.push(ComparisonRow {
            system: "Mathew et al. (CASES'03) accelerator".into(),
            real_time_factor: mathew.real_time_factor(geometry),
            power_w: mathew.system_power_w(),
            vocabulary: 20_000,
            triphone_based: true,
            bandwidth_gb_per_s: mathew.bandwidth_gb_per_s(geometry),
        });

        // Nedevschi et al. DAC'05: very low power but small-vocabulary and not
        // triphone based (figures from the paper's characterisation).
        rows.push(ComparisonRow {
            system: "Nedevschi et al. (DAC'05) low-cost recogniser".into(),
            real_time_factor: 1.0,
            power_w: 0.05,
            vocabulary: 200,
            triphone_based: false,
            bandwidth_gb_per_s: 0.01,
        });

        ComparisonTable { rows }
    }

    /// The rows.
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// The row describing this paper's architecture.
    pub fn ours(&self) -> &ComparisonRow {
        &self.rows[0]
    }

    /// Renders the table as fixed-width text (used by the experiment binary).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<48} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "system", "RTF", "power(W)", "vocab", "triphone", "BW(GB/s)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<48} {:>8.2} {:>10.3} {:>10} {:>10} {:>10.3}\n",
                r.system,
                r.real_time_factor,
                r.power_w,
                r.vocabulary,
                if r.triphone_based { "yes" } else { "no" },
                r.bandwidth_gb_per_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ComparisonTable {
        ComparisonTable::section_v(&AcousticModelConfig::paper_default(), 2_500)
    }

    #[test]
    fn has_all_five_systems() {
        let t = table();
        assert_eq!(t.rows().len(), 5);
        assert!(t.to_text().lines().count() >= 6);
        assert!(t.to_text().contains("Mathew"));
    }

    #[test]
    fn paper_claims_hold_in_the_comparison() {
        let t = table();
        let ours = t.ours();
        // We are real-time at the feedback-limited workload.
        assert!(ours.is_real_time(), "rtf {}", ours.real_time_factor);
        // We are the lowest-power *large-vocabulary* real-time system.
        for r in t.rows().iter().skip(1) {
            if r.vocabulary >= 5_000 && r.is_real_time() {
                assert!(
                    ours.power_w < r.power_w,
                    "{} at {} W beats us at {} W",
                    r.system,
                    r.power_w,
                    ours.power_w
                );
            }
        }
        // The Nedevschi row is lower power but not large-vocabulary/triphone.
        let nedevschi = &t.rows()[4];
        assert!(nedevschi.power_w < ours.power_w);
        assert!(nedevschi.vocabulary < 1_000);
        assert!(!nedevschi.triphone_based);
        // Our feedback cuts bandwidth below the full-evaluation systems.
        let desktop = &t.rows()[1];
        assert!(ours.bandwidth_gb_per_s < desktop.bandwidth_gb_per_s);
        let mathew = &t.rows()[3];
        assert!(ours.bandwidth_gb_per_s < mathew.bandwidth_gb_per_s);
        // The embedded software port is nowhere near real time.
        let embedded = &t.rows()[2];
        assert!(!embedded.is_real_time());
    }
}
