//! # asr-baseline — the comparison points of the paper's Section V
//!
//! The paper argues for its architecture against three alternatives:
//!
//! 1. **Pure-software decoders** (Sphinx/HTK class) on a desktop processor —
//!    "barely shows real-time performance using present day computers" and is
//!    "not particularly designed to be power efficient"; the same software on
//!    an embedded processor is far from real time.
//! 2. **The Mathew et al. CASES'03 accelerator** — meets real time and
//!    reduces bandwidth, but draws more power than the paper's design and
//!    does not stream the acoustic model over a DMA, so it suffers host
//!    resource contention.
//! 3. **The Nedevschi et al. DAC'05 low-power recogniser** — very low power
//!    but limited to a few hundred words and not triphone-based.
//!
//! This crate provides quantitative models of those baselines over the same
//! synthetic tasks, so experiment E6 can regenerate the comparison the paper
//! makes qualitatively.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod comparison;
pub mod fixedpoint;
pub mod mathew;
pub mod software;

pub use comparison::{ComparisonRow, ComparisonTable};
pub use fixedpoint::{FixedPointAnalysis, FixedPointReport};
pub use mathew::MathewAccelerator;
pub use software::{SoftwareBaseline, SoftwareCostModel, SoftwarePlatform, SoftwareReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SoftwareCostModel>();
        assert_send_sync::<MathewAccelerator>();
        assert_send_sync::<ComparisonTable>();
        assert_send_sync::<FixedPointAnalysis>();
    }
}
