//! Streaming sessions: feature-chunk sessions (one utterance, any chunking)
//! and continuous-audio sessions (VAD-endpointed utterance stream), both with
//! per-chunk latency accounting.

use crate::frontend::StreamingFrontend;
use crate::vad::{hop_rms, EnergyVad, VadEvent};
use crate::{StreamConfig, StreamError};
use asr_core::{DecodeResult, DecodeSession, PartialHypothesis, PhoneDecoder, Recognizer};
use asr_hw::StreamTiming;
use asr_obs::{Outcome, RequestKind, SpanEvent, Telemetry, TraceId};
use std::collections::VecDeque;
use std::time::Instant;

/// Everything produced by one streamed utterance: the decode result (with
/// the timing folded into its hardware report, when there is one) and the
/// stand-alone timing record for software backends.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The decoded utterance — identical to what the offline path would have
    /// produced for the same feature frames.
    pub result: DecodeResult,
    /// Per-chunk latency / stream real-time-factor record.
    pub timing: StreamTiming,
    /// The exact feature frames this utterance decoded, captured when
    /// [`StreamConfig::capture_features`] is set (`None` otherwise).
    /// Replaying them through
    /// [`Recognizer::decode_features`](asr_core::Recognizer::decode_features)
    /// reproduces `result` exactly — the parity oracle the scenario tests
    /// assert on.
    pub features: Option<Vec<Vec<f32>>>,
}

/// An event surfaced by [`AudioStreamSession::push_audio`].
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// The endpointer opened an utterance (speech detected).  Also emitted
    /// after an [`UtteranceForceEnded`](StreamEvent::UtteranceForceEnded)
    /// re-open, so `UtteranceStarted` and the two end events strictly
    /// alternate.
    UtteranceStarted,
    /// The in-flight utterance's partial hypothesis grew.
    Partial(PartialHypothesis),
    /// The endpointer closed the utterance; here is everything it produced.
    UtteranceEnd(Box<StreamOutcome>),
    /// The utterance hit [`StreamConfig::max_utterance_frames`] and was
    /// force-closed mid-speech; a fresh utterance re-opens on the very next
    /// event.  No frames are lost: every feature decoded so far is in this
    /// outcome, and subsequent audio feeds the re-opened utterance.
    UtteranceForceEnded(Box<StreamOutcome>),
}

/// The streaming façade over a [`Recognizer`]: owns it plus the stream
/// configuration, and opens sessions.
#[derive(Debug)]
pub struct StreamingRecognizer {
    recognizer: Recognizer,
    config: StreamConfig,
    telemetry: Telemetry,
}

impl StreamingRecognizer {
    /// Wraps a recogniser for streaming with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] for an invalid stream configuration.  (The
    /// frontend-vs-model feature-dimension match is checked when an audio
    /// session is opened — feature sessions don't involve the frontend.)
    pub fn new(recognizer: Recognizer, config: StreamConfig) -> Result<Self, StreamError> {
        config.validate()?;
        Ok(StreamingRecognizer {
            recognizer,
            config,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry pipeline: every subsequent
    /// [`audio_session`](StreamingRecognizer::audio_session) mints a trace
    /// and emits endpointing span events ([`SpanEvent::VadSpeechStart`],
    /// [`SpanEvent::VadSpeechEnd`], [`SpanEvent::ForcedEndpoint`],
    /// [`SpanEvent::PartialEmitted`], [`SpanEvent::BargeIn`]) as the VAD
    /// drives the session, ending with one [`SpanEvent::Finished`] when the
    /// session is [`close`](AudioStreamSession::close)d.  With the default
    /// [`Telemetry::disabled`], every emission site is a single branch.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry pipeline (disabled unless
    /// [`with_telemetry`](StreamingRecognizer::with_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Wraps a recogniser for feature-level streaming with the default
    /// configuration — enough for [`StreamingRecognizer::feature_session`];
    /// audio sessions additionally need the frontend dimension to match the
    /// acoustic model's.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the default configuration is valid); the
    /// `Result` mirrors [`StreamingRecognizer::new`].
    pub fn feature_only(recognizer: Recognizer) -> Result<Self, StreamError> {
        Self::new(recognizer, StreamConfig::default())
    }

    /// The wrapped recogniser.
    pub fn recognizer(&self) -> &Recognizer {
        &self.recognizer
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Releases the wrapped recogniser.
    pub fn into_recognizer(self) -> Recognizer {
        self.recognizer
    }

    fn frame_shift_s(&self) -> f64 {
        self.config.frontend.frame_shift_ms as f64 / 1000.0
    }

    /// Opens a feature-chunk session for one utterance on the configured
    /// backend.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn feature_session(&self) -> Result<FeatureStreamSession<'_>, StreamError> {
        Ok(FeatureStreamSession {
            session: self.recognizer.begin_session()?,
            timing: StreamTiming::new(),
            frame_shift_s: self.frame_shift_s(),
            captured: self.config.capture_features.then(Vec::new),
        })
    }

    /// Opens a feature-chunk session around a caller-supplied phone decoder
    /// — reclaim it with [`FeatureStreamSession::finish_parts`] so one warmed
    /// backend serves session after session.
    pub fn feature_session_with(&self, decoder: PhoneDecoder) -> FeatureStreamSession<'_> {
        FeatureStreamSession {
            session: self.recognizer.begin_session_with(decoder),
            timing: StreamTiming::new(),
            frame_shift_s: self.frame_shift_s(),
            captured: self.config.capture_features.then(Vec::new),
        }
    }

    /// Opens a continuous-audio session: push raw samples, collect endpointed
    /// utterances.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] when the configured frontend's
    /// feature dimension does not match the acoustic model's, and propagates
    /// frontend construction failures.
    pub fn audio_session(&self) -> Result<AudioStreamSession<'_>, StreamError> {
        let frontend_dim = self.config.frontend.feature_dim();
        let model_dim = self.recognizer.model().feature_dim();
        if frontend_dim != model_dim {
            return Err(StreamError::InvalidConfig(format!(
                "frontend produces {frontend_dim}-dim features but the acoustic model \
                 expects {model_dim}"
            )));
        }
        let hop = self.config.frontend.frame_shift_samples();
        let trace = if self.telemetry.is_enabled() {
            let trace = self.telemetry.begin_trace();
            self.telemetry.emit(
                trace,
                &SpanEvent::Admitted {
                    kind: RequestKind::Stream,
                    model: None,
                    tenant: None,
                },
            );
            trace
        } else {
            TraceId::NONE
        };
        Ok(AudioStreamSession {
            owner: self,
            trace,
            frontend: StreamingFrontend::new(self.config.frontend.clone())?,
            vad: EnergyVad::new(self.config.vad.clone()),
            hop,
            residue: Vec::new(),
            preroll: VecDeque::new(),
            current: None,
            last_partial_words: 0,
            utterances_finished: 0,
            utterances_cancelled: 0,
            features_emitted: 0,
            frames_discarded: 0,
        })
    }
}

/// One utterance streamed as feature-vector chunks.
///
/// Chunk boundaries are invisible to the search: any chunking of the same
/// frames finishes with exactly the offline
/// [`Recognizer::decode_features`] result.  Each [`push_chunk`] records its
/// wall-clock latency and audio coverage into the session's
/// [`StreamTiming`].
///
/// [`push_chunk`]: FeatureStreamSession::push_chunk
#[derive(Debug)]
pub struct FeatureStreamSession<'r> {
    session: DecodeSession<'r>,
    timing: StreamTiming,
    frame_shift_s: f64,
    /// `Some` when [`StreamConfig::capture_features`] is on: every pushed
    /// frame, for offline-parity replay.
    captured: Option<Vec<Vec<f32>>>,
}

impl<'r> FeatureStreamSession<'r> {
    /// Consumes one chunk of feature frames (any size) and returns the
    /// updated partial hypothesis.
    ///
    /// # Errors
    ///
    /// Propagates decode errors; earlier frames of the chunk have been
    /// consumed.
    pub fn push_chunk(&mut self, frames: &[Vec<f32>]) -> Result<PartialHypothesis, StreamError> {
        let start = Instant::now();
        self.session.push_chunk(frames)?;
        if let Some(captured) = &mut self.captured {
            captured.extend(frames.iter().cloned());
        }
        self.timing.record_chunk(
            start.elapsed().as_secs_f64(),
            frames.len() as f64 * self.frame_shift_s,
        );
        Ok(self.session.partial())
    }

    /// The current partial hypothesis.
    pub fn partial(&self) -> PartialHypothesis {
        self.session.partial()
    }

    /// Feature frames consumed so far.
    pub fn frames(&self) -> usize {
        self.session.frames()
    }

    /// The latency record so far.
    pub fn timing(&self) -> &StreamTiming {
        &self.timing
    }

    /// Closes the session: the full [`DecodeResult`] (identical to offline
    /// decoding of the concatenated chunks; [`DecodeResult::empty`] when no
    /// frame was pushed) plus the latency record, which is also folded into
    /// the hardware report when the backend kept one.
    ///
    /// # Errors
    ///
    /// Propagates decode errors.
    pub fn finish(self) -> Result<StreamOutcome, StreamError> {
        self.finish_parts().0
    }

    /// Like [`FeatureStreamSession::finish`], but also hands back the phone
    /// decoder for reuse via
    /// [`StreamingRecognizer::feature_session_with`].
    pub fn finish_parts(self) -> (Result<StreamOutcome, StreamError>, PhoneDecoder) {
        let timing = self.timing;
        let captured = self.captured;
        let (result, decoder) = self.session.finish_parts();
        let outcome = result.map_err(StreamError::from).map(|mut result| {
            if let Some(hw) = &mut result.hardware {
                hw.streaming = Some(timing.clone());
            }
            StreamOutcome {
                result,
                timing,
                features: captured,
            }
        });
        (outcome, decoder)
    }

    /// Abandons the utterance without decoding a final result (barge-in):
    /// the search state is discarded and the phone decoder handed back,
    /// re-armed for the next utterance.  Frames already pushed are simply
    /// dropped.
    pub fn cancel(self) -> PhoneDecoder {
        self.session.cancel()
    }
}

/// A continuous-audio session: raw PCM in, endpointed utterances out.
///
/// Audio is consumed in VAD hops (one frame shift each).  While the
/// endpointer reports silence, hops accumulate in a bounded pre-roll; when
/// speech opens, the pre-roll and every further hop stream through the
/// chunked frontend into an incremental decode session, and utterance events
/// surface as they happen.
#[derive(Debug)]
pub struct AudioStreamSession<'r> {
    owner: &'r StreamingRecognizer,
    /// The session's telemetry trace ([`TraceId::NONE`] when telemetry is
    /// disabled).  One trace spans the whole session: every endpointed
    /// utterance adds span events to it, and [`close`] emits the single
    /// terminal [`SpanEvent::Finished`].  Dropping the session without
    /// closing it leaves the trace unterminated — same as a client that
    /// vanished mid-stream.
    ///
    /// [`close`]: AudioStreamSession::close
    trace: TraceId,
    frontend: StreamingFrontend,
    vad: EnergyVad,
    hop: usize,
    /// Samples not yet forming a full hop.
    residue: Vec<f32>,
    /// Recent silence hops, replayed into the utterance on speech start.
    preroll: VecDeque<Vec<f32>>,
    current: Option<FeatureStreamSession<'r>>,
    last_partial_words: usize,
    utterances_finished: usize,
    utterances_cancelled: usize,
    /// Feature frames the frontend has emitted into decode sessions (preroll
    /// replay + in-speech hops + endpoint tails).  On an error-free stream,
    /// `features_emitted == Σ finished num_frames + frames_discarded +
    /// frames still in the open utterance` — the zero-loss ledger the
    /// forced-endpoint tests audit.
    features_emitted: usize,
    /// Feature frames deliberately dropped by [`AudioStreamSession::cancel`].
    frames_discarded: usize,
}

impl<'r> AudioStreamSession<'r> {
    /// Emits a span event on the session trace (one branch when telemetry is
    /// disabled: `Telemetry::emit` returns immediately).
    fn emit(&self, event: &SpanEvent) {
        self.owner.telemetry.emit(self.trace, event);
    }

    /// The session's telemetry trace ([`TraceId::NONE`] when the owning
    /// recogniser has no telemetry attached).
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Whether an utterance is currently open.
    pub fn in_utterance(&self) -> bool {
        self.current.is_some()
    }

    /// Utterances endpointed and decoded so far.
    pub fn utterances_finished(&self) -> usize {
        self.utterances_finished
    }

    /// Utterances abandoned via [`AudioStreamSession::cancel`].
    pub fn utterances_cancelled(&self) -> usize {
        self.utterances_cancelled
    }

    /// Feature frames the frontend has emitted into decode sessions so far.
    pub fn features_emitted(&self) -> usize {
        self.features_emitted
    }

    /// Feature frames deliberately discarded by cancellation.
    pub fn frames_discarded(&self) -> usize {
        self.frames_discarded
    }

    /// Feature frames decoded by the currently open utterance (0 when idle).
    pub fn frames_in_flight(&self) -> usize {
        self.current.as_ref().map_or(0, |s| s.frames())
    }

    /// Silence hops currently buffered for pre-roll replay — bounded by
    /// `preroll_hops + min_speech_hops` at all times.
    pub fn preroll_buffered(&self) -> usize {
        self.preroll.len()
    }

    /// The endpointer's current voiced threshold (adapts when
    /// [`crate::VadConfig::adaptive`] is set).
    pub fn vad_threshold(&self) -> f32 {
        self.vad.threshold()
    }

    /// Consumes a chunk of PCM samples (any size) and returns the stream
    /// events it caused, in order.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the in-flight utterance.
    pub fn push_audio(&mut self, samples: &[f32]) -> Result<Vec<StreamEvent>, StreamError> {
        self.residue.extend_from_slice(samples);
        let mut events = Vec::new();
        while self.residue.len() >= self.hop {
            let hop: Vec<f32> = self.residue.drain(..self.hop).collect();
            self.process_hop(hop, &mut events)?;
        }
        Ok(events)
    }

    fn process_hop(
        &mut self,
        hop: Vec<f32>,
        events: &mut Vec<StreamEvent>,
    ) -> Result<(), StreamError> {
        let rms = hop_rms(&hop);
        if !self.vad.in_speech() {
            // Buffer the hop first so the trigger hops themselves (and the
            // configured pre-roll before them) belong to the utterance.
            self.preroll.push_back(hop);
            let capacity =
                self.owner.config.vad.preroll_hops + self.owner.config.vad.min_speech_hops;
            while self.preroll.len() > capacity.max(1) {
                self.preroll.pop_front();
            }
            if self.vad.push_hop(rms) == Some(VadEvent::SpeechStart) {
                events.push(StreamEvent::UtteranceStarted);
                self.emit(&SpanEvent::VadSpeechStart {
                    frame: self.features_emitted,
                });
                self.last_partial_words = 0;
                if let Err(e) = self.open_utterance() {
                    // The VAD already flipped to speech; roll everything back
                    // to silence so the session stays usable (the next hop
                    // must not find in_speech with no open utterance).
                    self.vad.reset();
                    self.current = None;
                    self.frontend.finish_utterance();
                    return Err(e);
                }
            }
            return Ok(());
        }

        // In speech: the hop (voiced, or silence inside the hangover) is part
        // of the utterance.
        let ended = self.vad.push_hop(rms) == Some(VadEvent::SpeechEnd);
        let features = self.frontend.push_samples(&hop);
        self.features_emitted += features.len();
        let session = self
            .current
            .as_mut()
            .expect("an utterance is open while the VAD is in speech");
        if !features.is_empty() {
            let started = self.owner.telemetry.is_enabled().then(Instant::now);
            let partial = session.push_chunk(&features)?;
            if partial.words.len() > self.last_partial_words {
                self.last_partial_words = partial.words.len();
                let words = partial.words.len();
                events.push(StreamEvent::Partial(partial));
                if let Some(started) = started {
                    self.emit(&SpanEvent::PartialEmitted {
                        words,
                        latency_us: started.elapsed().as_micros().min(u64::MAX as u128) as u64,
                    });
                }
            }
        }
        if ended {
            let outcome = self.finish_current()?;
            self.emit(&SpanEvent::VadSpeechEnd {
                frames: outcome.result.stats.num_frames(),
            });
            events.push(StreamEvent::UtteranceEnd(Box::new(outcome)));
        } else if let Some(limit) = self.owner.config.max_utterance_frames {
            let frames = self
                .current
                .as_ref()
                .expect("utterance still open: the VAD did not end it")
                .frames();
            if frames >= limit {
                // Forced endpoint: close the runaway utterance (flushing the
                // frontend tail into it — nothing decoded so far is lost) and
                // re-open immediately, since the VAD still reports speech.
                let outcome = self.finish_current()?;
                self.emit(&SpanEvent::ForcedEndpoint {
                    frames: outcome.result.stats.num_frames(),
                });
                events.push(StreamEvent::UtteranceForceEnded(Box::new(outcome)));
                if let Err(e) = self.open_utterance() {
                    // Same rollback as the SpeechStart path: return the whole
                    // session to silence so it stays usable.
                    self.vad.reset();
                    self.current = None;
                    self.frontend.finish_utterance();
                    return Err(e);
                }
                events.push(StreamEvent::UtteranceStarted);
                self.emit(&SpanEvent::VadSpeechStart {
                    frame: self.features_emitted,
                });
            }
        }
        Ok(())
    }

    /// Opens the utterance the VAD just triggered: builds a decode session
    /// and replays the buffered pre-roll into it.
    fn open_utterance(&mut self) -> Result<(), StreamError> {
        let mut session = self.owner.feature_session()?;
        for buffered in self.preroll.drain(..) {
            let features = self.frontend.push_samples(&buffered);
            self.features_emitted += features.len();
            if !features.is_empty() {
                session.push_chunk(&features)?;
            }
        }
        self.current = Some(session);
        Ok(())
    }

    /// Flushes the frontend tail into the open session and finishes it.
    fn finish_current(&mut self) -> Result<StreamOutcome, StreamError> {
        let mut session = self
            .current
            .take()
            .expect("finish_current requires an open utterance");
        let tail = self.frontend.finish_utterance();
        self.features_emitted += tail.len();
        if !tail.is_empty() {
            session.push_chunk(&tail)?;
        }
        self.last_partial_words = 0;
        let outcome = session.finish()?;
        self.utterances_finished += 1;
        Ok(outcome)
    }

    /// Barge-in: abandons the in-flight utterance, discarding everything it
    /// decoded, and re-arms the session for fresh speech.  Returns the
    /// number of feature frames discarded (decoded so far plus the flushed
    /// frontend tail), or `None` if no utterance was open.  The VAD resets
    /// (adaptive noise floor re-primed), and buffered pre-roll and sub-hop
    /// sample residue are cleared — the next audio pushed is treated as the
    /// start of a new listening window.
    pub fn cancel(&mut self) -> Option<usize> {
        let session = self.current.take()?;
        let decoded = session.frames();
        drop(session.cancel());
        let tail = self.frontend.finish_utterance();
        self.features_emitted += tail.len();
        let discarded = decoded + tail.len();
        self.frames_discarded += discarded;
        self.utterances_cancelled += 1;
        self.emit(&SpanEvent::BargeIn { frames: discarded });
        self.vad.reset();
        self.preroll.clear();
        self.residue.clear();
        self.last_partial_words = 0;
        Some(discarded)
    }

    /// Closes the session.  An utterance still open (speech ran into the end
    /// of the stream) is finished and returned; a session in which the VAD
    /// never triggered — or whose last utterance already ended — returns
    /// [`DecodeResult::empty`] with an empty timing record rather than an
    /// error.  Sub-hop residue and un-triggered pre-roll audio are discarded.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from finishing the open utterance.
    pub fn close(mut self) -> Result<StreamOutcome, StreamError> {
        let outcome = if self.current.is_some() {
            self.vad.reset();
            let finished = self.finish_current();
            if let Ok(outcome) = &finished {
                // Speech ran into the end of the stream: balance the
                // trace's VadSpeechStart before terminating it.
                self.emit(&SpanEvent::VadSpeechEnd {
                    frames: outcome.result.stats.num_frames(),
                });
            }
            finished
        } else {
            Ok(StreamOutcome {
                result: DecodeResult::empty(),
                timing: StreamTiming::new(),
                features: None,
            })
        };
        self.emit(&SpanEvent::Finished {
            outcome: if outcome.is_ok() {
                Outcome::Completed
            } else {
                Outcome::Failed
            },
            frames: self.features_emitted,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vad::VadConfig;
    use asr_core::DecoderConfig;
    use asr_corpus::{SyntheticTask, TaskConfig, TaskGenerator};
    use asr_frontend::FrontendConfig;

    fn task_with_dim(dim: usize) -> SyntheticTask {
        TaskGenerator::new(51)
            .generate(&TaskConfig {
                feature_dim: dim,
                ..TaskConfig::tiny()
            })
            .unwrap()
    }

    fn recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .unwrap()
    }

    /// A stream config whose frontend emits 13-dim statics (matching the
    /// test task) and whose VAD endpoints quickly.
    fn audio_config() -> StreamConfig {
        StreamConfig {
            frontend: FrontendConfig {
                use_delta: false,
                use_delta_delta: false,
                ..FrontendConfig::default()
            },
            vad: VadConfig {
                energy_threshold: 0.05,
                min_speech_hops: 2,
                hangover_hops: 5,
                preroll_hops: 2,
                adaptive: None,
            },
            ..StreamConfig::default()
        }
    }

    fn tone(seconds: f32) -> Vec<f32> {
        (0..(seconds * 16_000.0) as usize)
            .map(|n| 0.5 * (2.0 * std::f32::consts::PI * 440.0 * n as f32 / 16_000.0).sin())
            .collect()
    }

    #[test]
    fn feature_session_equals_offline_and_records_timing() {
        let task = task_with_dim(6);
        let rec = recognizer(&task, DecoderConfig::simd());
        let (features, reference) = task.synthesize_utterance(2, 0.2, 2);
        let offline = rec.decode_features(&features).unwrap();
        let streamer = StreamingRecognizer::feature_only(rec).unwrap();
        let mut session = streamer.feature_session().unwrap();
        for chunk in features.chunks(4) {
            session.push_chunk(chunk).unwrap();
        }
        assert_eq!(session.frames(), features.len());
        assert!(session.timing().chunks() > 0);
        let outcome = session.finish().unwrap();
        assert_eq!(outcome.result.hypothesis.words, reference);
        assert_eq!(outcome.result.hypothesis, offline.hypothesis);
        assert_eq!(outcome.result.best_score.raw(), offline.best_score.raw());
        assert_eq!(outcome.timing.chunks(), features.len().div_ceil(4));
        // 10 ms of audio per frame was accounted.
        let expected_audio = features.len() as f64 * 0.010;
        assert!((outcome.timing.audio_seconds() - expected_audio).abs() < 1e-9);
    }

    #[test]
    fn hardware_report_carries_the_stream_timing() {
        let task = task_with_dim(6);
        let rec = recognizer(&task, DecoderConfig::hardware(2));
        let (features, _) = task.synthesize_utterance(1, 0.2, 5);
        let streamer = StreamingRecognizer::feature_only(rec).unwrap();
        let mut session = streamer.feature_session().unwrap();
        session.push_chunk(&features).unwrap();
        let outcome = session.finish().unwrap();
        let hw = outcome.result.hardware.expect("hardware report");
        let timing = hw.streaming.expect("stream timing folded into report");
        assert_eq!(timing.chunks(), 1);
        assert_eq!(timing, outcome.timing);
    }

    #[test]
    fn feature_session_decoder_reuse() {
        let task = task_with_dim(6);
        let rec = recognizer(&task, DecoderConfig::simd());
        let (features, reference) = task.synthesize_utterance(1, 0.2, 7);
        let streamer = StreamingRecognizer::feature_only(rec).unwrap();
        let mut decoder = streamer.recognizer().phone_decoder().unwrap();
        for _ in 0..2 {
            let mut session = streamer.feature_session_with(decoder);
            session.push_chunk(&features).unwrap();
            let (outcome, recycled) = session.finish_parts();
            assert_eq!(outcome.unwrap().result.hypothesis.words, reference);
            decoder = recycled;
        }
    }

    #[test]
    fn audio_session_endpoints_a_tone_burst() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::hardware(1));
        let streamer = StreamingRecognizer::new(rec, audio_config()).unwrap();
        let mut session = streamer.audio_session().unwrap();
        assert!(!session.in_utterance());

        let mut events = Vec::new();
        // 200 ms of leading silence, 300 ms of tone, 300 ms of trailing
        // silence — pushed in odd-sized chunks.
        let mut audio = vec![0.0f32; 3200];
        audio.extend(tone(0.3));
        audio.extend(vec![0.0f32; 4800]);
        for chunk in audio.chunks(777) {
            events.extend(session.push_audio(chunk).unwrap());
        }
        let started = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::UtteranceStarted))
            .count();
        let ended: Vec<&StreamOutcome> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::UtteranceEnd(o) => Some(o.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(started, 1, "{events:?}");
        assert_eq!(ended.len(), 1);
        assert_eq!(session.utterances_finished(), 1);
        let outcome = ended[0];
        assert!(outcome.result.stats.num_frames() > 10);
        assert!(outcome.timing.chunks() > 0);
        assert!(outcome.timing.audio_seconds() > 0.2);
        let hw = outcome.result.hardware.as_ref().expect("hardware report");
        assert_eq!(
            hw.streaming.as_ref().unwrap().chunks(),
            outcome.timing.chunks()
        );
        // The stream went back to silence; closing now is the empty result.
        assert!(!session.in_utterance());
        let last = session.close().unwrap();
        assert!(last.result.is_empty());
    }

    #[test]
    fn telemetry_traces_an_endpointed_session() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::software());
        let (telemetry, sink) = asr_obs::Telemetry::to_memory();
        let streamer = StreamingRecognizer::new(rec, audio_config())
            .unwrap()
            .with_telemetry(telemetry);
        let mut session = streamer.audio_session().unwrap();
        assert!(!session.trace().is_none());

        let mut audio = vec![0.0f32; 3200];
        audio.extend(tone(0.3));
        audio.extend(vec![0.0f32; 4800]);
        for chunk in audio.chunks(777) {
            session.push_audio(chunk).unwrap();
        }
        // Second burst, abandoned by barge-in mid-speech.
        audio = vec![0.0f32; 3200];
        audio.extend(tone(0.3));
        for chunk in audio.chunks(777) {
            session.push_audio(chunk).unwrap();
        }
        assert!(session.in_utterance());
        assert!(session.cancel().unwrap() > 0);
        session.close().unwrap();

        let facts = sink.facts();
        let events: Vec<String> = facts
            .iter()
            .filter(|f| f.kind == "span")
            .map(|f| {
                f.field("event")
                    .and_then(asr_obs::FieldValue::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(events.first().map(String::as_str), Some("admitted"));
        assert_eq!(events.last().map(String::as_str), Some("finished"));
        assert_eq!(events.iter().filter(|e| *e == "finished").count(), 1);
        assert_eq!(
            events.iter().filter(|e| *e == "vad_speech_start").count(),
            2
        );
        // The first utterance ended naturally; the second was barged in on.
        assert_eq!(events.iter().filter(|e| *e == "vad_speech_end").count(), 1);
        assert_eq!(events.iter().filter(|e| *e == "barge_in").count(), 1);
        assert!(events.iter().any(|e| e == "partial_emitted"));
        // Timestamps are monotone in emission order.
        let spans: Vec<&asr_obs::Fact> = facts.iter().filter(|f| f.kind == "span").collect();
        assert!(spans.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn close_finishes_an_utterance_cut_by_end_of_stream() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::software());
        let streamer = StreamingRecognizer::new(rec, audio_config()).unwrap();
        let mut session = streamer.audio_session().unwrap();
        // Tone right up to the end: the VAD never sees the hangover.
        session.push_audio(&tone(0.3)).unwrap();
        assert!(session.in_utterance());
        let outcome = session.close().unwrap();
        assert!(outcome.result.stats.num_frames() > 0);
        assert!(outcome.timing.chunks() > 0);
    }

    #[test]
    fn zero_voiced_session_closes_to_the_typed_empty_result() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::software());
        let streamer = StreamingRecognizer::new(rec, audio_config()).unwrap();
        let mut session = streamer.audio_session().unwrap();
        // Half a second of silence: the VAD never triggers.
        for chunk in vec![0.0f32; 8000].chunks(640) {
            let events = session.push_audio(chunk).unwrap();
            assert!(events.is_empty(), "{events:?}");
        }
        assert!(!session.in_utterance());
        let outcome = session.close().unwrap();
        assert!(outcome.result.is_empty());
        assert_eq!(outcome.result.hypothesis.words.len(), 0);
        assert_eq!(outcome.timing.chunks(), 0);
    }

    #[test]
    fn forced_endpoint_splits_a_long_utterance_without_losing_frames() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::software());
        let config = StreamConfig {
            max_utterance_frames: Some(20),
            capture_features: true,
            ..audio_config()
        };
        let streamer = StreamingRecognizer::new(rec, config).unwrap();
        let mut session = streamer.audio_session().unwrap();
        let mut audio = vec![0.0f32; 3200];
        audio.extend(tone(1.0)); // ~100 frames of speech: several forced cuts
        audio.extend(vec![0.0f32; 4800]);
        let mut events = Vec::new();
        for chunk in audio.chunks(640) {
            events.extend(session.push_audio(chunk).unwrap());
        }
        let forced: Vec<&StreamOutcome> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::UtteranceForceEnded(o) => Some(o.as_ref()),
                _ => None,
            })
            .collect();
        let natural: Vec<&StreamOutcome> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::UtteranceEnd(o) => Some(o.as_ref()),
                _ => None,
            })
            .collect();
        let started = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::UtteranceStarted))
            .count();
        assert!(forced.len() >= 2, "{} forced cuts", forced.len());
        assert_eq!(natural.len(), 1, "the hangover still closes the last piece");
        // Every end (forced or natural) pairs with a start.
        assert_eq!(started, forced.len() + natural.len());
        assert_eq!(session.utterances_finished(), started);
        // Zero-loss ledger: every feature the frontend emitted is in exactly
        // one finished outcome.
        let total_frames: usize = forced
            .iter()
            .chain(natural.iter())
            .map(|o| o.result.stats.num_frames())
            .sum();
        assert_eq!(session.frames_discarded(), 0);
        assert_eq!(session.features_emitted(), total_frames);
        // Each piece hits the trigger (the tail flush may push it past it).
        for piece in &forced {
            assert!(piece.result.stats.num_frames() >= 20);
        }
        // And every piece replays to offline parity.
        for piece in forced.iter().chain(natural.iter()) {
            let captured = piece.features.as_ref().expect("capture_features on");
            assert_eq!(captured.len(), piece.result.stats.num_frames());
            let offline = streamer.recognizer().decode_features(captured).unwrap();
            assert_eq!(piece.result.hypothesis, offline.hypothesis);
        }
    }

    #[test]
    fn cancel_discards_the_utterance_and_rearms_the_session() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::software());
        let streamer = StreamingRecognizer::new(rec, audio_config()).unwrap();
        let mut session = streamer.audio_session().unwrap();
        // Nothing open yet: cancel is a no-op.
        assert_eq!(session.cancel(), None);
        session.push_audio(&tone(0.3)).unwrap();
        assert!(session.in_utterance());
        let emitted_before = session.features_emitted();
        assert!(emitted_before > 0);
        let discarded = session.cancel().expect("an utterance was open");
        assert!(discarded > 0);
        assert!(!session.in_utterance());
        assert_eq!(session.utterances_cancelled(), 1);
        assert_eq!(session.utterances_finished(), 0);
        assert_eq!(session.frames_discarded(), discarded);
        // Ledger: everything emitted so far was discarded (the cancel also
        // flushed the frontend tail).
        assert_eq!(session.features_emitted(), session.frames_discarded());
        assert_eq!(session.preroll_buffered(), 0);

        // The session is re-armed: a fresh burst endpoints normally.
        let mut audio = vec![0.0f32; 3200];
        audio.extend(tone(0.3));
        audio.extend(vec![0.0f32; 4800]);
        let mut events = Vec::new();
        for chunk in audio.chunks(777) {
            events.extend(session.push_audio(chunk).unwrap());
        }
        let ended = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::UtteranceEnd(_)))
            .count();
        assert_eq!(ended, 1, "{events:?}");
        assert_eq!(session.utterances_finished(), 1);
        assert_eq!(
            session.features_emitted(),
            session.frames_discarded()
                + events
                    .iter()
                    .filter_map(|e| match e {
                        StreamEvent::UtteranceEnd(o) => Some(o.result.stats.num_frames()),
                        _ => None,
                    })
                    .sum::<usize>()
        );
    }

    #[test]
    fn adaptive_session_reports_a_moving_threshold() {
        let task = task_with_dim(13);
        let rec = recognizer(&task, DecoderConfig::software());
        let config = StreamConfig {
            vad: VadConfig {
                adaptive: Some(crate::vad::AdaptiveVadConfig {
                    window_hops: 20,
                    ..Default::default()
                }),
                ..audio_config().vad
            },
            ..audio_config()
        };
        let streamer = StreamingRecognizer::new(rec, config).unwrap();
        let mut session = streamer.audio_session().unwrap();
        let initial = session.vad_threshold();
        // A steady 0.004-RMS noise bed: the threshold settles onto it.
        let noise: Vec<f32> = (0..8000)
            .map(|n| if n % 2 == 0 { 0.004 } else { -0.004 })
            .collect();
        session.push_audio(&noise).unwrap();
        assert!(!session.in_utterance(), "noise bed must not trigger");
        assert!(session.vad_threshold() < initial);
    }

    #[test]
    fn audio_session_requires_matching_dimensions() {
        let task = task_with_dim(6); // model wants 6-dim, frontend makes 13
        let rec = recognizer(&task, DecoderConfig::software());
        let streamer = StreamingRecognizer::new(rec, audio_config()).unwrap();
        assert!(matches!(
            streamer.audio_session(),
            Err(StreamError::InvalidConfig(_))
        ));
        // Feature sessions are still fine: they bypass the frontend.
        assert!(streamer.feature_session().is_ok());
        assert_eq!(streamer.config().vad.min_speech_hops, 2);
        let rec = streamer.into_recognizer();
        assert_eq!(rec.model().feature_dim(), 6);
    }
}
