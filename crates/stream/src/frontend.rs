//! The chunked frontend: raw audio pushed in arbitrary-size chunks, feature
//! vectors out as soon as they are computable.
//!
//! Reuses the per-frame MFCC kernel ([`MfccExtractor`]) of the offline
//! frontend unchanged; what changes is the state that the offline path gets
//! for free from seeing the whole utterance:
//!
//! * **pre-emphasis** carries its one-sample history across chunks;
//! * **framing** buffers the 15 ms of window overlap between 10 ms hops;
//! * **CMN** runs in *live* mode (running mean with the configured prior),
//!   because the utterance mean is unknowable mid-stream;
//! * **deltas** are computed incrementally: a frame's feature vector is
//!   emitted once its full regression context has arrived (a fixed lookahead
//!   of `delta_window` frames per derivative order), and
//!   [`StreamingFrontend::finish_utterance`] flushes the tail with the same
//!   edge clamping the offline [`DeltaComputer`](asr_frontend::DeltaComputer)
//!   applies — so with CMN disabled the streamed features are **bit-identical**
//!   to [`Frontend::process`](asr_frontend::Frontend::process) regardless of
//!   chunking (pinned by this module's tests).

use asr_frontend::mfcc::MfccExtractor;
use asr_frontend::{CepstralMeanNorm, FeatureVector, FrontendConfig, FrontendError};

/// Incremental delta / delta-delta appender over a growing cepstra sequence.
///
/// Holds the utterance's static cepstra and emits fully-contexted feature
/// vectors; the final clamped frames are produced on `flush`.
#[derive(Debug, Clone)]
struct IncrementalDelta {
    window: usize,
    use_delta: bool,
    use_delta_delta: bool,
    cepstra: Vec<Vec<f32>>,
    emitted: usize,
}

impl IncrementalDelta {
    fn new(window: usize, use_delta: bool, use_delta_delta: bool) -> Self {
        IncrementalDelta {
            window: window.max(1),
            use_delta,
            use_delta_delta,
            cepstra: Vec::new(),
            emitted: 0,
        }
    }

    /// Frames of future context frame `t` needs before its derivatives stop
    /// depending on frames that have not arrived yet.
    fn lookahead(&self) -> usize {
        match (self.use_delta, self.use_delta_delta) {
            (false, _) => 0,
            (true, false) => self.window,
            // Δ at t+W reads cepstra up to t+2W; ΔΔ at t reads Δ up to t+W.
            (true, true) => 2 * self.window,
        }
    }

    /// The regression delta of `seq` at index `t`, with indices clamped to
    /// the sequence — the exact per-frame formula of
    /// [`asr_frontend::DeltaComputer::delta`].
    fn delta_at(seq: &[Vec<f32>], t: usize, window: usize) -> Vec<f32> {
        let n = seq.len();
        let dim = seq[0].len();
        let denom: f32 = 2.0 * (1..=window).map(|i| (i * i) as f32).sum::<f32>();
        let clamp = |idx: isize| -> &Vec<f32> { &seq[idx.clamp(0, n as isize - 1) as usize] };
        let mut out = vec![0.0f32; dim];
        for w in 1..=window {
            let plus = clamp(t as isize + w as isize);
            let minus = clamp(t as isize - w as isize);
            for d in 0..dim {
                out[d] += w as f32 * (plus[d] - minus[d]);
            }
        }
        for v in &mut out {
            *v /= denom;
        }
        out
    }

    fn feature_at(&self, t: usize) -> FeatureVector {
        let mut v = self.cepstra[t].clone();
        if self.use_delta {
            let delta_of = |i: usize| Self::delta_at(&self.cepstra, i, self.window);
            let delta = delta_of(t);
            if self.use_delta_delta {
                // ΔΔ is the regression of Δ; materialise only the Δ frames
                // the window touches (clamped like the offline pass over the
                // full Δ sequence — clamping an index then differentiating
                // equals differentiating the clamped sequence).
                let n = self.cepstra.len();
                let deltas: Vec<Vec<f32>> = (0..n.min(t + self.window + 1))
                    .skip(t.saturating_sub(self.window))
                    .map(delta_of)
                    .collect();
                let local_t = t - t.saturating_sub(self.window);
                // Re-clamp inside the materialised slice: indices below the
                // slice start are the slice's first entry only when that
                // entry is genuinely frame 0 (saturating_sub guarantees it).
                let dd = Self::delta_at(&deltas, local_t, self.window);
                v.extend_from_slice(&delta);
                v.extend_from_slice(&dd);
            } else {
                v.extend_from_slice(&delta);
            }
        }
        v
    }

    /// Accepts one static cepstrum and returns every frame whose context is
    /// now complete.
    fn push(&mut self, cepstrum: Vec<f32>) -> Vec<FeatureVector> {
        self.cepstra.push(cepstrum);
        let lookahead = self.lookahead();
        let mut out = Vec::new();
        while self.emitted + lookahead < self.cepstra.len() {
            out.push(self.feature_at(self.emitted));
            self.emitted += 1;
        }
        out
    }

    /// Emits the remaining tail with end-of-utterance clamping and resets
    /// for the next utterance.
    fn flush(&mut self) -> Vec<FeatureVector> {
        let mut out = Vec::new();
        while self.emitted < self.cepstra.len() {
            out.push(self.feature_at(self.emitted));
            self.emitted += 1;
        }
        self.cepstra.clear();
        self.emitted = 0;
        out
    }
}

/// The chunked streaming frontend: push samples of any chunk size, collect
/// feature vectors as their context completes, and
/// [`finish_utterance`](StreamingFrontend::finish_utterance) at an endpoint.
#[derive(Debug, Clone)]
pub struct StreamingFrontend {
    extractor: MfccExtractor,
    cmn: Option<CepstralMeanNorm>,
    delta: IncrementalDelta,
    /// Emphasized + dithered samples not yet consumed by framing (the next
    /// frame starts at index 0).
    buffer: Vec<f32>,
    /// Last *raw* input sample of the previous chunk (pre-emphasis history).
    last_raw: Option<f32>,
    /// Absolute sample index within the utterance (dither parity).
    samples_seen: usize,
    /// Feature frames emitted for the current utterance.
    frames_emitted: usize,
}

impl StreamingFrontend {
    /// Builds a streaming frontend for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: FrontendConfig) -> Result<Self, FrontendError> {
        config.validate()?;
        let cmn = config.cepstral_mean_norm.then(|| config.live_cmn());
        let delta = IncrementalDelta::new(
            config.delta_window.max(1),
            config.use_delta,
            config.use_delta_delta,
        );
        Ok(StreamingFrontend {
            extractor: MfccExtractor::new(config)?,
            cmn,
            delta,
            buffer: Vec::new(),
            last_raw: None,
            samples_seen: 0,
            frames_emitted: 0,
        })
    }

    /// The configuration this frontend was built with.
    pub fn config(&self) -> &FrontendConfig {
        self.extractor.config()
    }

    /// Feature frames emitted so far for the current utterance.
    pub fn frames_emitted(&self) -> usize {
        self.frames_emitted
    }

    /// Samples consumed so far for the current utterance.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Consumes one chunk of PCM samples and returns every feature vector
    /// whose analysis window *and* delta context are now complete.  Returns
    /// an empty vector while the stream is still inside the initial window
    /// or the delta lookahead.
    pub fn push_samples(&mut self, samples: &[f32]) -> Vec<FeatureVector> {
        // Only four scalars of the configuration matter per chunk; copy them
        // out rather than cloning the whole config on the hot path.
        let cfg = self.extractor.config();
        let pre_emphasis = cfg.pre_emphasis;
        let dither = cfg.dither;
        let frame_len = cfg.frame_length_samples();
        let shift = cfg.frame_shift_samples();
        // Pre-emphasis with cross-chunk history, exactly as the offline pass
        // over the concatenated signal: y[0] = x[0], y[n] = x[n] − α·x[n−1].
        for &x in samples {
            let emphasized = if pre_emphasis == 0.0 {
                x
            } else {
                match self.last_raw {
                    Some(prev) => x - pre_emphasis * prev,
                    None => x,
                }
            };
            self.last_raw = Some(x);
            // Deterministic dither, parity-indexed by the absolute sample
            // position (matches the offline frontend's alternating sign).
            let dithered = if dither > 0.0 {
                emphasized
                    + dither
                        * if self.samples_seen % 2 == 0 {
                            1.0
                        } else {
                            -1.0
                        }
            } else {
                emphasized
            };
            self.samples_seen += 1;
            self.buffer.push(dithered);
        }

        // Slide complete analysis windows out of the buffer.
        let mut out = Vec::new();
        while self.buffer.len() >= frame_len {
            let mut cepstra = self.extractor.frame_cepstra(&self.buffer[..frame_len]);
            if let Some(cmn) = &mut self.cmn {
                cmn.normalize_live(&mut cepstra);
            }
            out.extend(self.delta.push(cepstra));
            self.buffer.drain(..shift);
        }
        self.frames_emitted += out.len();
        out
    }

    /// Ends the current utterance: flushes the delta lookahead tail (with the
    /// offline edge clamping), discards the sub-window sample remainder, and
    /// resets per-utterance state.  The live-CMN running mean becomes the
    /// prior of the next utterance (Sphinx's `cmn prior` behaviour).
    pub fn finish_utterance(&mut self) -> Vec<FeatureVector> {
        let tail = self.delta.flush();
        self.buffer.clear();
        self.last_raw = None;
        self.samples_seen = 0;
        self.frames_emitted = 0;
        if let Some(cmn) = &mut self.cmn {
            cmn.reset_between_utterances();
        }
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_frontend::{DeltaComputer, Frontend};
    use proptest::prelude::*;

    fn tone(freq: f32, seconds: f32, rate: u32) -> Vec<f32> {
        (0..(seconds * rate as f32) as usize)
            .map(|n| (2.0 * std::f32::consts::PI * freq * n as f32 / rate as f32).sin())
            .collect()
    }

    /// Streams `samples` through a fresh frontend in the given chunk sizes
    /// (cycled) and returns all emitted features.
    fn stream_in_chunks(cfg: &FrontendConfig, samples: &[f32], chunks: &[usize]) -> Vec<Vec<f32>> {
        let mut fe = StreamingFrontend::new(cfg.clone()).unwrap();
        let mut out = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < samples.len() {
            let take = chunks[i % chunks.len()].max(1).min(samples.len() - pos);
            out.extend(fe.push_samples(&samples[pos..pos + take]));
            pos += take;
            i += 1;
        }
        out.extend(fe.finish_utterance());
        out
    }

    #[test]
    fn matches_offline_frontend_exactly_without_cmn() {
        // CMN off isolates the streaming machinery (pre-emphasis carry,
        // framing, dither parity, incremental deltas), all of which must be
        // bit-identical to the offline pass.
        let cfg = FrontendConfig {
            cepstral_mean_norm: false,
            ..FrontendConfig::default()
        };
        let samples = tone(440.0, 0.5, 16_000);
        let offline = Frontend::new(cfg.clone()).unwrap().process(&samples);
        for chunks in [&[1usize][..], &[7, 160, 3][..], &[4096][..]] {
            let streamed = stream_in_chunks(&cfg, &samples, chunks);
            assert_eq!(streamed.len(), offline.len(), "chunks {chunks:?}");
            for (t, (s, o)) in streamed.iter().zip(&offline).enumerate() {
                assert_eq!(s, o, "frame {t} with chunks {chunks:?}");
            }
        }
    }

    #[test]
    fn matches_offline_without_deltas_or_dither() {
        let cfg = FrontendConfig {
            cepstral_mean_norm: false,
            use_delta: false,
            use_delta_delta: false,
            dither: 0.0,
            ..FrontendConfig::default()
        };
        let samples = tone(900.0, 0.3, 16_000);
        let offline = Frontend::new(cfg.clone()).unwrap().process(&samples);
        let streamed = stream_in_chunks(&cfg, &samples, &[123]);
        assert_eq!(streamed, offline);
    }

    #[test]
    fn delta_only_configuration_matches_offline() {
        let cfg = FrontendConfig {
            cepstral_mean_norm: false,
            use_delta: true,
            use_delta_delta: false,
            ..FrontendConfig::default()
        };
        let samples = tone(600.0, 0.3, 16_000);
        let offline = Frontend::new(cfg.clone()).unwrap().process(&samples);
        let streamed = stream_in_chunks(&cfg, &samples, &[50, 1]);
        assert_eq!(streamed, offline);
    }

    #[test]
    fn incremental_delta_equals_offline_delta_computer() {
        // The delta appender alone, against the offline DeltaComputer, for a
        // sequence shorter than the lookahead (pure flush), around it, and
        // well beyond it.
        for n in [1usize, 3, 4, 5, 20] {
            let frames: Vec<Vec<f32>> = (0..n)
                .map(|t| vec![t as f32, -(t as f32) * 0.5, (t * t) as f32 * 0.1])
                .collect();
            let offline = DeltaComputer::new(2).append(&frames, true, true);
            let mut inc = IncrementalDelta::new(2, true, true);
            let mut streamed = Vec::new();
            for f in &frames {
                streamed.extend(inc.push(f.clone()));
            }
            streamed.extend(inc.flush());
            assert_eq!(streamed, offline, "n = {n}");
        }
    }

    #[test]
    fn live_cmn_path_produces_sane_features_and_resets() {
        let cfg = FrontendConfig::default(); // CMN on
        let mut fe = StreamingFrontend::new(cfg.clone()).unwrap();
        let samples = tone(500.0, 0.4, 16_000);
        let mut feats = fe.push_samples(&samples);
        feats.extend(fe.finish_utterance());
        let offline_count = Frontend::new(cfg.clone()).unwrap().process(&samples).len();
        assert_eq!(feats.len(), offline_count);
        assert!(feats.iter().all(|f| f.len() == cfg.feature_dim()));
        assert!(feats.iter().flatten().all(|v| v.is_finite()));
        // After finish_utterance the frontend starts the next utterance clean.
        assert_eq!(fe.samples_seen(), 0);
        assert_eq!(fe.frames_emitted(), 0);
        let again = fe.push_samples(&samples);
        assert!(!again.is_empty());
    }

    #[test]
    fn short_input_yields_nothing_even_after_flush() {
        let mut fe = StreamingFrontend::new(FrontendConfig {
            cepstral_mean_norm: false,
            ..FrontendConfig::default()
        })
        .unwrap();
        assert!(fe.push_samples(&[0.0; 100]).is_empty());
        assert!(fe.finish_utterance().is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = FrontendConfig {
            num_cepstra: 0,
            ..FrontendConfig::default()
        };
        assert!(StreamingFrontend::new(cfg).is_err());
    }

    proptest! {
        /// Chunking invariance: the emitted features never depend on how the
        /// sample stream was sliced.
        #[test]
        fn prop_chunking_is_invisible(chunk in 1usize..700, freq in 100.0f32..3000.0) {
            let cfg = FrontendConfig {
                cepstral_mean_norm: false,
                ..FrontendConfig::default()
            };
            let samples = tone(freq, 0.2, 16_000);
            let whole = stream_in_chunks(&cfg, &samples, &[samples.len()]);
            let sliced = stream_in_chunks(&cfg, &samples, &[chunk]);
            prop_assert_eq!(whole, sliced);
        }
    }
}
