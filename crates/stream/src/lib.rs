//! # asr-stream — streaming recognition
//!
//! The paper's SoC is a *real-time* recognizer: audio arrives frame by frame
//! and the hardware keeps up at low power.  Every other path in this
//! workspace is offline — it takes the whole utterance up front.  This crate
//! is the real-time regime as a subsystem:
//!
//! ```text
//!  audio chunks ──► StreamingFrontend ──► EnergyVad ──► DecodeSession
//!   (any size)       (25 ms windows,       (energy        (incremental
//!                     live CMN,             endpointer:    Viterbi: partial
//!                     incremental deltas)   segments       hypotheses per
//!                                           utterances)    chunk)
//!                                                              │
//!                 StreamOutcome { DecodeResult, StreamTiming } ◄┘
//!                  (per-chunk latency + stream RTF folded into
//!                   the hardware UtteranceReport)
//! ```
//!
//! Two session shapes, both opened from a [`StreamingRecognizer`]:
//!
//! * [`FeatureStreamSession`] — feature-vector chunks in, one utterance out.
//!   The core invariant, property-tested across every backend in the
//!   workspace's `tests/stream.rs`: **any chunking of the same frames decodes
//!   to exactly the offline result** of
//!   [`Recognizer::decode_features`](asr_core::Recognizer::decode_features),
//!   because chunk boundaries never reach the search
//!   ([`asr_core::DecodeSession`] steps the identical per-frame loop).
//! * [`AudioStreamSession`] — continuous raw audio in, a stream of endpointed
//!   utterances out: the chunked frontend turns samples into features with
//!   *live* (running-mean) CMN, the energy VAD opens an utterance when speech
//!   starts and closes it after a hangover of silence, and each utterance
//!   decodes incrementally while its audio is still arriving.
//!
//! Between chunks, sessions surface [`PartialHypothesis`] snapshots —
//! prefix-consistent, monotone previews of the final result.  Every chunk's
//! wall-clock latency and audio coverage is recorded into an
//! [`asr_hw::StreamTiming`], which [`StreamOutcome`] carries and which is
//! folded into the hardware [`UtteranceReport`](asr_hw::UtteranceReport) on
//! hardware backends — so a streamed decode reports its host real-time
//! factor next to the SoC's simulated one.
//!
//! # Example
//!
//! ```
//! use asr_core::{DecoderConfig, Recognizer};
//! use asr_corpus::{TaskConfig, TaskGenerator};
//! use asr_stream::{StreamConfig, StreamingRecognizer};
//!
//! let task = TaskGenerator::new(7).generate(&TaskConfig::tiny()).unwrap();
//! let recognizer = Recognizer::new(
//!     task.acoustic_model.clone(),
//!     task.dictionary.clone(),
//!     task.language_model.clone(),
//!     DecoderConfig::simd(),
//! )
//! .unwrap();
//! let (features, reference) = task.synthesize_utterance(2, 0.2, 1);
//!
//! // Offline result for comparison…
//! let offline = recognizer.decode_features(&features).unwrap();
//!
//! // …and the same frames streamed in 3-frame chunks.
//! let streamer = StreamingRecognizer::feature_only(recognizer).unwrap();
//! let mut session = streamer.feature_session().unwrap();
//! for chunk in features.chunks(3) {
//!     session.push_chunk(chunk).unwrap();
//! }
//! let outcome = session.finish().unwrap();
//! assert_eq!(outcome.result.hypothesis.words, reference);
//! assert_eq!(outcome.result.hypothesis, offline.hypothesis);
//! assert!(outcome.timing.chunks() > 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod frontend;
pub mod session;
pub mod vad;

pub use frontend::StreamingFrontend;
pub use session::{
    AudioStreamSession, FeatureStreamSession, StreamEvent, StreamOutcome, StreamingRecognizer,
};
pub use vad::{AdaptiveVadConfig, EnergyVad, VadConfig, VadEvent};

// The partial-hypothesis type is asr-core's (the serving layer shares it);
// re-exported so streaming callers need only this crate.
pub use asr_core::PartialHypothesis;

use asr_core::DecodeError;
use asr_frontend::{FrontendConfig, FrontendError};

/// Configuration of the streaming subsystem: the chunked frontend and the
/// energy endpointer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamConfig {
    /// Frontend geometry and live-CMN prior
    /// ([`FrontendConfig::cmn_prior_frames`] / `cmn_prior_mean`).
    pub frontend: FrontendConfig,
    /// Energy VAD / endpointing parameters.
    pub vad: VadConfig,
    /// Forced endpoint: when an open utterance has decoded this many feature
    /// frames, the session closes it (emitting
    /// [`StreamEvent::UtteranceForceEnded`]) and immediately re-opens, so a
    /// noise step the adaptive VAD mistakes for unending speech cannot grow
    /// an utterance without bound.  The limit is a *trigger* threshold: the
    /// closing utterance still flushes its delta-lookahead tail, so its
    /// final frame count can exceed the limit by that tail.  `None` (the
    /// default) disables forcing.
    pub max_utterance_frames: Option<usize>,
    /// When set, every [`StreamOutcome`] carries the exact feature frames
    /// that were decoded ([`StreamOutcome::features`]), so tests can replay
    /// them through the offline decoder and assert parity.  Off by default —
    /// it clones every frame.
    pub capture_features: bool,
}

impl StreamConfig {
    /// Validates the configuration, including the cross-field endpointing
    /// guarantee: any endpointed utterance has received at least
    /// `min_speech_hops + hangover_hops` hops of audio (preroll is *not*
    /// guaranteed — the stream may start mid-trigger), so
    ///
    /// ```text
    /// (min_speech_hops + hangover_hops) · frame_shift  ≥  frame_length
    /// ```
    ///
    /// is exactly the condition under which every `UtteranceEnd` carries at
    /// least one analysis window — i.e. a non-empty decode.  Configurations
    /// violating it could emit empty-utterance endpoints and are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Frontend`] or [`StreamError::InvalidConfig`]
    /// for an invalid frontend or VAD configuration, a zero
    /// `max_utterance_frames`, or a debounce+hangover span shorter than one
    /// analysis window.
    pub fn validate(&self) -> Result<(), StreamError> {
        self.frontend.validate()?;
        self.vad.validate()?;
        if self.max_utterance_frames == Some(0) {
            return Err(StreamError::InvalidConfig(
                "max_utterance_frames must be >= 1 when set".into(),
            ));
        }
        let buffered_samples = (self.vad.min_speech_hops + self.vad.hangover_hops)
            * self.frontend.frame_shift_samples();
        if buffered_samples < self.frontend.frame_length_samples() {
            return Err(StreamError::InvalidConfig(format!(
                "min_speech_hops + hangover_hops buffer only {buffered_samples} samples, \
                 fewer than one {}-sample analysis window: an endpointed utterance could \
                 be empty",
                self.frontend.frame_length_samples()
            )));
        }
        Ok(())
    }
}

/// Errors produced by the streaming subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The streaming configuration was invalid (VAD parameters, or a
    /// frontend whose feature dimension does not match the acoustic model).
    InvalidConfig(String),
    /// The frontend configuration was invalid (typed source preserved).
    Frontend(FrontendError),
    /// Decoding failed (typed source preserved).
    Decode(DecodeError),
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::InvalidConfig(msg) => write!(f, "invalid stream config: {msg}"),
            StreamError::Frontend(e) => write!(f, "stream frontend: {e}"),
            StreamError::Decode(e) => write!(f, "stream decode: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Frontend(e) => Some(e),
            StreamError::Decode(e) => Some(e),
            StreamError::InvalidConfig(_) => None,
        }
    }
}

impl From<FrontendError> for StreamError {
    fn from(e: FrontendError) -> Self {
        StreamError::Frontend(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = StreamError::InvalidConfig("vad".into());
        assert!(e.to_string().contains("vad"));
        assert!(e.source().is_none());
        let e: StreamError = FrontendError::InvalidConfig("cmn".into()).into();
        assert!(e.to_string().contains("cmn"));
        assert!(e.source().is_some());
        let e: StreamError = DecodeError::InvalidConfig("beam".into()).into();
        assert!(e.to_string().contains("beam"));
        assert!(e.source().is_some());
    }

    #[test]
    fn config_validation_covers_both_halves() {
        StreamConfig::default().validate().unwrap();
        let bad_frontend = StreamConfig {
            frontend: FrontendConfig {
                num_cepstra: 0,
                ..FrontendConfig::default()
            },
            ..StreamConfig::default()
        };
        assert!(matches!(
            bad_frontend.validate(),
            Err(StreamError::Frontend(_))
        ));
        let bad_vad = StreamConfig {
            vad: VadConfig {
                energy_threshold: -1.0,
                ..VadConfig::default()
            },
            ..StreamConfig::default()
        };
        assert!(matches!(
            bad_vad.validate(),
            Err(StreamError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_max_utterance_frames_is_rejected() {
        let bad = StreamConfig {
            max_utterance_frames: Some(0),
            ..StreamConfig::default()
        };
        assert!(matches!(bad.validate(), Err(StreamError::InvalidConfig(_))));
        StreamConfig {
            max_utterance_frames: Some(1),
            ..StreamConfig::default()
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn endpoint_shorter_than_one_window_is_rejected() {
        // 1 debounce + 1 hangover hop buffer 2 × 160 = 320 samples — less
        // than the 400-sample analysis window, so an utterance endpointed at
        // stream start (no preroll yet) would decode zero frames.  The
        // cross-field check must reject this even though each half validates
        // on its own.
        let bad = StreamConfig {
            vad: VadConfig {
                min_speech_hops: 1,
                hangover_hops: 1,
                preroll_hops: 0,
                ..VadConfig::default()
            },
            ..StreamConfig::default()
        };
        bad.vad.validate().unwrap();
        assert!(matches!(bad.validate(), Err(StreamError::InvalidConfig(_))));
        // One more hangover hop crosses the window boundary (480 >= 400).
        let ok = StreamConfig {
            vad: VadConfig {
                min_speech_hops: 1,
                hangover_hops: 2,
                preroll_hops: 0,
                ..VadConfig::default()
            },
            ..StreamConfig::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn crate_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<StreamingFrontend>();
        assert_send::<EnergyVad>();
        assert_send::<StreamConfig>();
    }
}
