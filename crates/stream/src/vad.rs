//! Energy-based voice activity detection and endpointing.
//!
//! The continuous-audio session needs to know where utterances begin and end
//! so the decoder is only driven while someone is speaking — the same
//! power-saving instinct as the paper's feedback path, one stage earlier.
//! The detector is deliberately simple (per-hop RMS energy against a
//! threshold, with debounce and hangover), which is exactly what low-power
//! always-listening front ends deploy: the expensive recognizer only wakes
//! up behind it.
//!
//! The detector consumes one *hop* (one 10 ms frame shift) of audio at a
//! time and runs a two-state machine:
//!
//! ```text
//!             ≥ min_speech_hops consecutive voiced hops
//!   Silence ────────────────────────────────────────────► Speech
//!      ▲                                                    │
//!      └──────────────────────────────────────────────────┘
//!             ≥ hangover_hops consecutive silent hops
//! ```
//!
//! The voiced/silent decision compares the hop RMS against either a **fixed**
//! threshold ([`VadConfig::energy_threshold`], the default mode) or an
//! **adaptive** one ([`VadConfig::adaptive`]): a running percentile of recent
//! hop energies estimates the noise floor, and the threshold rides a
//! multiplicative margin above it.  Fixed thresholds break under exactly the
//! conditions a deployed endpointer meets — a rising noise floor *floods* the
//! detector (everything is "speech"), a falling one plus a quiet talker
//! *freezes* it (nothing ever is) — while the adaptive floor tracks both
//! directions.  Hops that classify as voiced while an utterance is open are
//! excluded from the floor estimate, so speech itself cannot lift the
//! threshold from under the very utterance it belongs to.  To keep that
//! exclusion from immortalising an utterance when the noise floor rises
//! *during* speech (the stale threshold would classify the new, louder
//! noise as voiced forever), adaptive mode also tracks the utterance's
//! running peak energy: a hop more than [`AdaptiveVadConfig::drop_ratio`]
//! below the peak counts as silent regardless of the floor — the classic
//! peak-relative endpoint rule — which both ends the utterance through the
//! normal hangover and resumes floor observation.  The hard bound on
//! utterance length remains the session's forced endpoint
//! (`StreamConfig::max_utterance_frames`).

use crate::StreamError;
use std::collections::VecDeque;

/// Configuration of the adaptive noise-floor tracker behind [`EnergyVad`].
///
/// The floor is the configured percentile of the last `window_hops` observed
/// hop RMS values (voiced hops inside an open utterance are not observed),
/// and the voiced threshold is `floor * margin`, clamped to
/// `[min_threshold, max_threshold]`.  Until real hops displace it, the
/// window is pre-filled with the prior `energy_threshold / margin`, so an
/// adaptive detector starts out behaving exactly like the fixed one.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveVadConfig {
    /// Hops of history the floor percentile is computed over (1 s at the
    /// 10 ms default hop).
    pub window_hops: usize,
    /// Percentile of the windowed energies taken as the noise floor, in
    /// `(0, 1)`.  A low percentile makes the floor a robust minimum
    /// statistic: brief energy bursts in the window cannot raise it.
    pub percentile: f32,
    /// Multiplicative headroom between the floor and the voiced threshold
    /// (`> 1`).  Noise may drift by up to this factor per window without
    /// ever classifying as speech.
    pub margin: f32,
    /// Lower clamp on the derived threshold, so digital silence cannot
    /// collapse it to zero and arm the detector on quantisation noise.
    pub min_threshold: f32,
    /// Upper clamp on the derived threshold.
    pub max_threshold: f32,
    /// Peak-relative endpoint level: while an utterance is open, a hop whose
    /// RMS falls below `drop_ratio` times the utterance's running peak is
    /// classified silent even if it clears the (possibly stale) floor
    /// threshold.  The default 0.1 is a 20 dB drop — far below any speech,
    /// far above a noise floor that merely drifted during the utterance.
    /// `0` disables the rule.
    pub drop_ratio: f32,
}

impl Default for AdaptiveVadConfig {
    fn default() -> Self {
        AdaptiveVadConfig {
            window_hops: 100,
            percentile: 0.2,
            margin: 3.0,
            min_threshold: 0.004,
            max_threshold: 0.5,
            drop_ratio: 0.1,
        }
    }
}

impl AdaptiveVadConfig {
    /// Validates the adaptive-tracker parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a window under 2 hops, a
    /// percentile outside `(0, 1)`, a margin not greater than 1, or clamp
    /// bounds that are non-positive, non-finite or inverted.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.window_hops < 2 {
            return Err(StreamError::InvalidConfig(
                "adaptive window_hops must be >= 2".into(),
            ));
        }
        if !self.percentile.is_finite() || self.percentile <= 0.0 || self.percentile >= 1.0 {
            return Err(StreamError::InvalidConfig(
                "adaptive percentile must be inside (0, 1)".into(),
            ));
        }
        if !self.margin.is_finite() || self.margin <= 1.0 {
            return Err(StreamError::InvalidConfig(
                "adaptive margin must be finite and > 1".into(),
            ));
        }
        if !self.min_threshold.is_finite()
            || !self.max_threshold.is_finite()
            || self.min_threshold <= 0.0
            || self.max_threshold < self.min_threshold
        {
            return Err(StreamError::InvalidConfig(
                "adaptive threshold clamps must satisfy 0 < min <= max".into(),
            ));
        }
        if !self.drop_ratio.is_finite() || self.drop_ratio < 0.0 || self.drop_ratio >= 1.0 {
            return Err(StreamError::InvalidConfig(
                "adaptive drop_ratio must be inside [0, 1)".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of the energy VAD / endpointer.
#[derive(Debug, Clone, PartialEq)]
pub struct VadConfig {
    /// RMS amplitude above which a hop counts as voiced (input samples are
    /// expected roughly in `[-1, 1]`).  In adaptive mode this is the
    /// *bootstrap* threshold: the tracker starts from it and then follows
    /// the measured noise floor.
    pub energy_threshold: f32,
    /// Consecutive voiced hops required to open an utterance (debounce
    /// against clicks).
    pub min_speech_hops: usize,
    /// Consecutive silent hops required to close an utterance (hangover
    /// across short intra-utterance pauses).
    pub hangover_hops: usize,
    /// Hops of audio kept before the trigger and prepended to the utterance,
    /// so a soft word onset is not clipped.
    pub preroll_hops: usize,
    /// `Some` enables the adaptive noise-floor tracker; `None` (the default)
    /// keeps the fixed-threshold behaviour.
    pub adaptive: Option<AdaptiveVadConfig>,
}

impl Default for VadConfig {
    fn default() -> Self {
        VadConfig {
            energy_threshold: 0.01,
            min_speech_hops: 3,
            // 300 ms of hangover at the 10 ms default hop.
            hangover_hops: 30,
            preroll_hops: 5,
            adaptive: None,
        }
    }
}

impl VadConfig {
    /// The default configuration with the adaptive noise-floor tracker on.
    pub fn adaptive() -> Self {
        VadConfig {
            adaptive: Some(AdaptiveVadConfig::default()),
            ..VadConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a non-positive or
    /// non-finite threshold, zero debounce/hangover counts, or invalid
    /// adaptive-tracker parameters.
    ///
    /// This check is per-field only: whether `min_speech_hops` +
    /// `hangover_hops` buffer enough audio for at least one analysis window
    /// (so an endpointed utterance can never finish empty) depends on the
    /// frontend geometry and is enforced by
    /// [`crate::StreamConfig::validate`].
    pub fn validate(&self) -> Result<(), StreamError> {
        if !self.energy_threshold.is_finite() || self.energy_threshold <= 0.0 {
            return Err(StreamError::InvalidConfig(
                "energy_threshold must be finite and positive".into(),
            ));
        }
        if self.min_speech_hops == 0 {
            return Err(StreamError::InvalidConfig(
                "min_speech_hops must be >= 1".into(),
            ));
        }
        if self.hangover_hops == 0 {
            return Err(StreamError::InvalidConfig(
                "hangover_hops must be >= 1".into(),
            ));
        }
        if let Some(adaptive) = &self.adaptive {
            adaptive.validate()?;
        }
        Ok(())
    }
}

/// A state transition reported by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VadEvent {
    /// An utterance opened at this hop (its voiced run reaches back
    /// `min_speech_hops − 1` hops).
    SpeechStart,
    /// The utterance closed at this hop (its last voiced hop was
    /// `hangover_hops` ago).
    SpeechEnd,
}

/// RMS amplitude of one hop of samples (0 for an empty hop).
pub fn hop_rms(samples: &[f32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let sum_sq: f32 = samples.iter().map(|s| s * s).sum();
    (sum_sq / samples.len() as f32).sqrt()
}

/// The energy endpointer state machine.
///
/// `PartialEq` compares the *entire* detector state (configuration, speech
/// state, debounce/hangover runs and the adaptive floor window), so
/// `detector == EnergyVad::new(config)` is the definition of "freshly
/// reset" — the property `reset()` guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyVad {
    config: VadConfig,
    in_speech: bool,
    voiced_run: usize,
    silent_run: usize,
    /// Recent observed hop energies (adaptive mode only; empty in fixed
    /// mode).  Pre-filled with the bootstrap prior on construction/reset.
    window: VecDeque<f32>,
    /// The current noise-floor estimate (adaptive mode only).
    noise_floor: f32,
    /// The current voiced threshold (equals `energy_threshold` in fixed
    /// mode).
    threshold: f32,
    /// Running peak RMS of the current (or forming) utterance, for the
    /// adaptive peak-relative drop rule; 0 while listening to silence.
    speech_peak: f32,
}

impl EnergyVad {
    /// Creates a detector (validate the config first via
    /// [`VadConfig::validate`]; [`crate::StreamConfig::validate`] does).
    pub fn new(config: VadConfig) -> Self {
        let mut vad = EnergyVad {
            config,
            in_speech: false,
            voiced_run: 0,
            silent_run: 0,
            window: VecDeque::new(),
            noise_floor: 0.0,
            threshold: 0.0,
            speech_peak: 0.0,
        };
        vad.reset();
        vad
    }

    /// The configuration.
    pub fn config(&self) -> &VadConfig {
        &self.config
    }

    /// Whether the detector currently believes speech is in progress.
    pub fn in_speech(&self) -> bool {
        self.in_speech
    }

    /// The RMS threshold the *next* hop will be classified against: the
    /// fixed `energy_threshold`, or `noise_floor() * margin` (clamped) in
    /// adaptive mode.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The current noise-floor estimate, or `None` in fixed-threshold mode.
    pub fn noise_floor(&self) -> Option<f32> {
        self.config.adaptive.as_ref().map(|_| self.noise_floor)
    }

    /// Feeds one observed hop energy into the adaptive floor window and
    /// refreshes the cached floor/threshold.  Voiced hops inside an open
    /// utterance are excluded so speech cannot lift the floor; everything
    /// else — silence, noise, and the few debounce hops before a trigger —
    /// is tracked.
    fn observe(&mut self, rms: f32, voiced: bool) {
        let Some(adaptive) = &self.config.adaptive else {
            return;
        };
        if voiced && self.in_speech {
            return;
        }
        self.window.push_back(rms.max(0.0));
        while self.window.len() > adaptive.window_hops {
            self.window.pop_front();
        }
        let mut sorted: Vec<f32> = self.window.iter().copied().collect();
        sorted.sort_by(f32::total_cmp);
        let rank = (adaptive.percentile * (sorted.len() - 1) as f32).round() as usize;
        self.noise_floor = sorted[rank.min(sorted.len() - 1)];
        self.threshold = (self.noise_floor * adaptive.margin)
            .clamp(adaptive.min_threshold, adaptive.max_threshold);
    }

    /// Consumes one hop's RMS energy; returns the state transition it caused,
    /// if any.
    pub fn push_hop(&mut self, rms: f32) -> Option<VadEvent> {
        let mut voiced = rms >= self.threshold;
        if voiced && self.in_speech {
            if let Some(adaptive) = &self.config.adaptive {
                // Peak-relative drop: a hop this far under the utterance's
                // own level is silence, whatever a stale floor says.
                if adaptive.drop_ratio > 0.0 && rms < self.speech_peak * adaptive.drop_ratio {
                    voiced = false;
                }
            }
        }
        self.observe(rms, voiced);
        if voiced {
            self.speech_peak = self.speech_peak.max(rms);
        } else if !self.in_speech {
            // The debounce run broke: nothing to anchor a peak to.
            self.speech_peak = 0.0;
        }
        if self.in_speech {
            if voiced {
                self.silent_run = 0;
            } else {
                self.silent_run += 1;
                if self.silent_run >= self.config.hangover_hops {
                    self.in_speech = false;
                    self.voiced_run = 0;
                    self.silent_run = 0;
                    self.speech_peak = 0.0;
                    return Some(VadEvent::SpeechEnd);
                }
            }
        } else if voiced {
            self.voiced_run += 1;
            if self.voiced_run >= self.config.min_speech_hops {
                self.in_speech = true;
                self.silent_run = 0;
                return Some(VadEvent::SpeechStart);
            }
        } else {
            self.voiced_run = 0;
        }
        None
    }

    /// Returns the detector to its exact initial state (e.g. when a session
    /// force-closes or cancels an utterance): silence, empty runs, and the
    /// adaptive floor window re-primed with the bootstrap prior — total, by
    /// the `PartialEq` definition (`*self == EnergyVad::new(config)`).
    pub fn reset(&mut self) {
        self.in_speech = false;
        self.voiced_run = 0;
        self.silent_run = 0;
        self.speech_peak = 0.0;
        self.window.clear();
        match &self.config.adaptive {
            Some(adaptive) => {
                let prior = self.config.energy_threshold / adaptive.margin;
                for _ in 0..adaptive.window_hops {
                    self.window.push_back(prior);
                }
                self.noise_floor = prior;
                self.threshold =
                    (prior * adaptive.margin).clamp(adaptive.min_threshold, adaptive.max_threshold);
            }
            None => {
                self.noise_floor = 0.0;
                self.threshold = self.config.energy_threshold;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vad() -> EnergyVad {
        EnergyVad::new(VadConfig {
            energy_threshold: 0.1,
            min_speech_hops: 3,
            hangover_hops: 4,
            preroll_hops: 2,
            adaptive: None,
        })
    }

    fn adaptive_vad() -> EnergyVad {
        EnergyVad::new(VadConfig {
            energy_threshold: 0.03,
            min_speech_hops: 2,
            hangover_hops: 4,
            preroll_hops: 2,
            adaptive: Some(AdaptiveVadConfig {
                window_hops: 20,
                ..AdaptiveVadConfig::default()
            }),
        })
    }

    #[test]
    fn triggers_after_min_speech_and_ends_after_hangover() {
        let mut v = vad();
        assert!(!v.in_speech());
        // Two voiced hops: still debouncing.
        assert_eq!(v.push_hop(0.5), None);
        assert_eq!(v.push_hop(0.5), None);
        assert!(!v.in_speech());
        // Third: speech starts.
        assert_eq!(v.push_hop(0.5), Some(VadEvent::SpeechStart));
        assert!(v.in_speech());
        // Three silent hops: hangover not yet exhausted.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert!(v.in_speech());
        // Fourth: utterance ends.
        assert_eq!(v.push_hop(0.0), Some(VadEvent::SpeechEnd));
        assert!(!v.in_speech());
    }

    #[test]
    fn clicks_shorter_than_debounce_do_not_trigger() {
        let mut v = vad();
        for _ in 0..10 {
            assert_eq!(v.push_hop(0.5), None); // one voiced hop…
            assert_eq!(v.push_hop(0.0), None); // …then silence resets the run
        }
        assert!(!v.in_speech());
    }

    #[test]
    fn short_pauses_inside_speech_are_bridged() {
        let mut v = vad();
        for _ in 0..3 {
            v.push_hop(0.5);
        }
        assert!(v.in_speech());
        // A 3-hop pause (< hangover of 4), then speech resumes: no end event.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert_eq!(v.push_hop(0.5), None);
        assert!(v.in_speech());
        // The hangover counter restarted: four fresh silent hops to close.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert_eq!(v.push_hop(0.0), Some(VadEvent::SpeechEnd));
    }

    #[test]
    fn reset_returns_to_silence() {
        let mut v = vad();
        for _ in 0..3 {
            v.push_hop(0.9);
        }
        assert!(v.in_speech());
        v.reset();
        assert!(!v.in_speech());
        assert_eq!(v.config().min_speech_hops, 3);
    }

    #[test]
    fn reset_is_total_in_both_modes() {
        for mut v in [vad(), adaptive_vad()] {
            let fresh = EnergyVad::new(v.config().clone());
            assert_eq!(v, fresh, "a new detector is its own reset state");
            for rms in [0.0, 0.7, 0.7, 0.7, 0.01, 0.0, 0.2, 0.0, 0.0] {
                v.push_hop(rms);
            }
            assert_ne!(v, fresh, "pushing hops must move the state");
            v.reset();
            assert_eq!(v, fresh, "reset must restore the exact initial state");
        }
    }

    #[test]
    fn rms_is_zero_for_empty_and_scales_with_amplitude() {
        assert_eq!(hop_rms(&[]), 0.0);
        assert!((hop_rms(&[0.5; 160]) - 0.5).abs() < 1e-6);
        assert!(hop_rms(&[0.2; 160]) < hop_rms(&[0.8; 160]));
    }

    #[test]
    fn adaptive_starts_at_the_bootstrap_threshold() {
        let v = adaptive_vad();
        assert!((v.threshold() - 0.03).abs() < 1e-6);
        assert!((v.noise_floor().unwrap() - 0.01).abs() < 1e-6);
        // Fixed mode reports no floor.
        assert_eq!(vad().noise_floor(), None);
        assert!((vad().threshold() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn adaptive_floor_tracks_a_rising_ramp_without_flooding() {
        let mut v = adaptive_vad();
        // Noise rises 0.002 → 0.02 over 200 hops: always inside the margin,
        // so the detector must never open an utterance.
        for i in 0..200 {
            let rms = 0.002 + 0.018 * i as f32 / 200.0;
            assert_eq!(v.push_hop(rms), None, "hop {i}: noise must not trigger");
        }
        assert!(!v.in_speech());
        // The threshold followed the ramp up…
        assert!(v.threshold() > 0.04, "threshold {}", v.threshold());
        // …and genuine speech above it still triggers.
        assert_eq!(v.push_hop(0.4), None);
        assert_eq!(v.push_hop(0.4), Some(VadEvent::SpeechStart));
    }

    #[test]
    fn adaptive_floor_falls_so_quiet_speech_is_found_again() {
        let mut v = adaptive_vad();
        // A long stretch of near-silence drags the floor to the clamp.
        for _ in 0..100 {
            v.push_hop(0.0005);
        }
        assert!((v.threshold() - 0.004).abs() < 1e-6, "clamped at min");
        // Far-field speech at 0.01 RMS — under the 0.03 bootstrap threshold,
        // but over the adapted one.
        assert_eq!(v.push_hop(0.01), None);
        assert_eq!(v.push_hop(0.01), Some(VadEvent::SpeechStart));
    }

    #[test]
    fn speech_does_not_lift_the_adaptive_floor() {
        let mut v = adaptive_vad();
        for _ in 0..30 {
            v.push_hop(0.001);
        }
        let before = v.threshold();
        v.push_hop(0.5);
        v.push_hop(0.5);
        assert!(v.in_speech());
        // A long loud utterance: voiced hops are excluded from the window.
        for _ in 0..100 {
            assert_eq!(v.push_hop(0.5), None);
        }
        assert!(v.in_speech(), "speech must not end itself via the floor");
        assert!((v.threshold() - before).abs() < 1e-6);
        // Hangover silence still closes it (and is observed again).
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert_eq!(v.push_hop(0.0), Some(VadEvent::SpeechEnd));
    }

    #[test]
    fn a_noise_step_during_speech_ends_via_the_peak_relative_drop() {
        let mut v = adaptive_vad();
        for _ in 0..30 {
            v.push_hop(0.001);
        }
        v.push_hop(0.5);
        assert_eq!(v.push_hop(0.5), Some(VadEvent::SpeechStart));
        for _ in 0..10 {
            assert_eq!(v.push_hop(0.5), None);
        }
        // The noise floor steps to 0.02 mid-utterance: above the stale
        // 0.004 threshold (so floor-only classification would keep the
        // utterance open forever) but 28 dB under the utterance's peak —
        // the drop rule classifies it silent and the hangover closes.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.02), None);
        }
        assert_eq!(v.push_hop(0.02), Some(VadEvent::SpeechEnd));
        // The hops were observed, so the floor is free to absorb the step.
        assert!(!v.in_speech());
    }

    #[test]
    fn adaptive_threshold_respects_the_max_clamp() {
        let mut v = adaptive_vad();
        for _ in 0..100 {
            v.push_hop(0.9);
        }
        assert!(v.threshold() <= 0.5 + 1e-6);
    }

    #[test]
    fn config_validation() {
        VadConfig::default().validate().unwrap();
        VadConfig::adaptive().validate().unwrap();
        for bad in [
            VadConfig {
                energy_threshold: 0.0,
                ..VadConfig::default()
            },
            VadConfig {
                energy_threshold: f32::NAN,
                ..VadConfig::default()
            },
            VadConfig {
                min_speech_hops: 0,
                ..VadConfig::default()
            },
            VadConfig {
                hangover_hops: 0,
                ..VadConfig::default()
            },
            VadConfig {
                adaptive: Some(AdaptiveVadConfig {
                    window_hops: 1,
                    ..AdaptiveVadConfig::default()
                }),
                ..VadConfig::default()
            },
            VadConfig {
                adaptive: Some(AdaptiveVadConfig {
                    percentile: 1.0,
                    ..AdaptiveVadConfig::default()
                }),
                ..VadConfig::default()
            },
            VadConfig {
                adaptive: Some(AdaptiveVadConfig {
                    margin: 1.0,
                    ..AdaptiveVadConfig::default()
                }),
                ..VadConfig::default()
            },
            VadConfig {
                adaptive: Some(AdaptiveVadConfig {
                    min_threshold: 0.0,
                    ..AdaptiveVadConfig::default()
                }),
                ..VadConfig::default()
            },
            VadConfig {
                adaptive: Some(AdaptiveVadConfig {
                    min_threshold: 0.4,
                    max_threshold: 0.1,
                    ..AdaptiveVadConfig::default()
                }),
                ..VadConfig::default()
            },
            VadConfig {
                adaptive: Some(AdaptiveVadConfig {
                    drop_ratio: 1.0,
                    ..AdaptiveVadConfig::default()
                }),
                ..VadConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        // Zero preroll is allowed: it only trades onset clipping for memory.
        VadConfig {
            preroll_hops: 0,
            ..VadConfig::default()
        }
        .validate()
        .unwrap();
    }
}
