//! Energy-based voice activity detection and endpointing.
//!
//! The continuous-audio session needs to know where utterances begin and end
//! so the decoder is only driven while someone is speaking — the same
//! power-saving instinct as the paper's feedback path, one stage earlier.
//! The detector is deliberately simple (per-hop RMS energy against a fixed
//! threshold, with debounce and hangover), which is exactly what low-power
//! always-listening front ends deploy: the expensive recognizer only wakes
//! up behind it.
//!
//! The detector consumes one *hop* (one 10 ms frame shift) of audio at a
//! time and runs a two-state machine:
//!
//! ```text
//!             ≥ min_speech_hops consecutive voiced hops
//!   Silence ────────────────────────────────────────────► Speech
//!      ▲                                                    │
//!      └──────────────────────────────────────────────────┘
//!             ≥ hangover_hops consecutive silent hops
//! ```

use crate::StreamError;

/// Configuration of the energy VAD / endpointer.
#[derive(Debug, Clone, PartialEq)]
pub struct VadConfig {
    /// RMS amplitude above which a hop counts as voiced (input samples are
    /// expected roughly in `[-1, 1]`).
    pub energy_threshold: f32,
    /// Consecutive voiced hops required to open an utterance (debounce
    /// against clicks).
    pub min_speech_hops: usize,
    /// Consecutive silent hops required to close an utterance (hangover
    /// across short intra-utterance pauses).
    pub hangover_hops: usize,
    /// Hops of audio kept before the trigger and prepended to the utterance,
    /// so a soft word onset is not clipped.
    pub preroll_hops: usize,
}

impl Default for VadConfig {
    fn default() -> Self {
        VadConfig {
            energy_threshold: 0.01,
            min_speech_hops: 3,
            // 300 ms of hangover at the 10 ms default hop.
            hangover_hops: 30,
            preroll_hops: 5,
        }
    }
}

impl VadConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a non-positive or
    /// non-finite threshold or zero debounce/hangover counts.
    pub fn validate(&self) -> Result<(), StreamError> {
        if !self.energy_threshold.is_finite() || self.energy_threshold <= 0.0 {
            return Err(StreamError::InvalidConfig(
                "energy_threshold must be finite and positive".into(),
            ));
        }
        if self.min_speech_hops == 0 {
            return Err(StreamError::InvalidConfig(
                "min_speech_hops must be >= 1".into(),
            ));
        }
        if self.hangover_hops == 0 {
            return Err(StreamError::InvalidConfig(
                "hangover_hops must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// A state transition reported by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VadEvent {
    /// An utterance opened at this hop (its voiced run reaches back
    /// `min_speech_hops − 1` hops).
    SpeechStart,
    /// The utterance closed at this hop (its last voiced hop was
    /// `hangover_hops` ago).
    SpeechEnd,
}

/// RMS amplitude of one hop of samples (0 for an empty hop).
pub fn hop_rms(samples: &[f32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let sum_sq: f32 = samples.iter().map(|s| s * s).sum();
    (sum_sq / samples.len() as f32).sqrt()
}

/// The energy endpointer state machine.
#[derive(Debug, Clone)]
pub struct EnergyVad {
    config: VadConfig,
    in_speech: bool,
    voiced_run: usize,
    silent_run: usize,
}

impl EnergyVad {
    /// Creates a detector (validate the config first via
    /// [`VadConfig::validate`]; [`crate::StreamConfig::validate`] does).
    pub fn new(config: VadConfig) -> Self {
        EnergyVad {
            config,
            in_speech: false,
            voiced_run: 0,
            silent_run: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VadConfig {
        &self.config
    }

    /// Whether the detector currently believes speech is in progress.
    pub fn in_speech(&self) -> bool {
        self.in_speech
    }

    /// Consumes one hop's RMS energy; returns the state transition it caused,
    /// if any.
    pub fn push_hop(&mut self, rms: f32) -> Option<VadEvent> {
        let voiced = rms >= self.config.energy_threshold;
        if self.in_speech {
            if voiced {
                self.silent_run = 0;
            } else {
                self.silent_run += 1;
                if self.silent_run >= self.config.hangover_hops {
                    self.in_speech = false;
                    self.voiced_run = 0;
                    self.silent_run = 0;
                    return Some(VadEvent::SpeechEnd);
                }
            }
        } else if voiced {
            self.voiced_run += 1;
            if self.voiced_run >= self.config.min_speech_hops {
                self.in_speech = true;
                self.silent_run = 0;
                return Some(VadEvent::SpeechStart);
            }
        } else {
            self.voiced_run = 0;
        }
        None
    }

    /// Returns the detector to silence (e.g. when a session force-closes an
    /// utterance).
    pub fn reset(&mut self) {
        self.in_speech = false;
        self.voiced_run = 0;
        self.silent_run = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vad() -> EnergyVad {
        EnergyVad::new(VadConfig {
            energy_threshold: 0.1,
            min_speech_hops: 3,
            hangover_hops: 4,
            preroll_hops: 2,
        })
    }

    #[test]
    fn triggers_after_min_speech_and_ends_after_hangover() {
        let mut v = vad();
        assert!(!v.in_speech());
        // Two voiced hops: still debouncing.
        assert_eq!(v.push_hop(0.5), None);
        assert_eq!(v.push_hop(0.5), None);
        assert!(!v.in_speech());
        // Third: speech starts.
        assert_eq!(v.push_hop(0.5), Some(VadEvent::SpeechStart));
        assert!(v.in_speech());
        // Three silent hops: hangover not yet exhausted.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert!(v.in_speech());
        // Fourth: utterance ends.
        assert_eq!(v.push_hop(0.0), Some(VadEvent::SpeechEnd));
        assert!(!v.in_speech());
    }

    #[test]
    fn clicks_shorter_than_debounce_do_not_trigger() {
        let mut v = vad();
        for _ in 0..10 {
            assert_eq!(v.push_hop(0.5), None); // one voiced hop…
            assert_eq!(v.push_hop(0.0), None); // …then silence resets the run
        }
        assert!(!v.in_speech());
    }

    #[test]
    fn short_pauses_inside_speech_are_bridged() {
        let mut v = vad();
        for _ in 0..3 {
            v.push_hop(0.5);
        }
        assert!(v.in_speech());
        // A 3-hop pause (< hangover of 4), then speech resumes: no end event.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert_eq!(v.push_hop(0.5), None);
        assert!(v.in_speech());
        // The hangover counter restarted: four fresh silent hops to close.
        for _ in 0..3 {
            assert_eq!(v.push_hop(0.0), None);
        }
        assert_eq!(v.push_hop(0.0), Some(VadEvent::SpeechEnd));
    }

    #[test]
    fn reset_returns_to_silence() {
        let mut v = vad();
        for _ in 0..3 {
            v.push_hop(0.9);
        }
        assert!(v.in_speech());
        v.reset();
        assert!(!v.in_speech());
        assert_eq!(v.config().min_speech_hops, 3);
    }

    #[test]
    fn rms_is_zero_for_empty_and_scales_with_amplitude() {
        assert_eq!(hop_rms(&[]), 0.0);
        assert!((hop_rms(&[0.5; 160]) - 0.5).abs() < 1e-6);
        assert!(hop_rms(&[0.2; 160]) < hop_rms(&[0.8; 160]));
    }

    #[test]
    fn config_validation() {
        VadConfig::default().validate().unwrap();
        for bad in [
            VadConfig {
                energy_threshold: 0.0,
                ..VadConfig::default()
            },
            VadConfig {
                energy_threshold: f32::NAN,
                ..VadConfig::default()
            },
            VadConfig {
                min_speech_hops: 0,
                ..VadConfig::default()
            },
            VadConfig {
                hangover_hops: 0,
                ..VadConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        // Zero preroll is allowed: it only trades onset clipping for memory.
        VadConfig {
            preroll_hops: 0,
            ..VadConfig::default()
        }
        .validate()
        .unwrap();
    }
}
