//! Diagonal-covariance Gaussians and Gaussian mixtures.
//!
//! The paper evaluates the observation probability of equation (3)–(4):
//! a weighted mixture of multivariate Gaussians with diagonal covariance,
//! computed entirely in the log domain.  Equation (6) rewrites one component
//! as
//!
//! ```text
//! log(A_kj) = C_jk + Σ_i (O_ji − µ_ji)² · δ_ji
//! ```
//!
//! where `δ_ji = −1 / (2σ_ji²)` and `C_jk` folds the mixture weight and the
//! Gaussian normalisation constant.  [`DiagGaussian`] precomputes exactly the
//! `δ` and `C` terms the hardware's Gaussian-parameter buffer holds, so both
//! the software decoder and the cycle-accurate OP-unit model consume the same
//! parameters.

use crate::AcousticError;
use asr_float::{LogProb, Quantizer};

/// Floor applied to variances to avoid division by ~zero and the resulting
/// spiky likelihoods; standard practice in HMM training.
pub const VARIANCE_FLOOR: f32 = 1.0e-4;

/// A single diagonal-covariance Gaussian.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagGaussian {
    mean: Vec<f32>,
    variance: Vec<f32>,
    /// `δ_i = -1 / (2 σ_i²)` — the precision terms streamed to the OP unit.
    precision: Vec<f32>,
    /// `log( (2π)^(-L/2) · Π σ_i^(-1) )` — the log normalisation constant.
    log_norm: f32,
}

impl DiagGaussian {
    /// Creates a Gaussian from a mean and variance vector.
    ///
    /// Variances are floored at [`VARIANCE_FLOOR`].
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::DimensionMismatch`] if the vectors differ in
    /// length or are empty, and [`AcousticError::InvalidParameter`] if any
    /// value is not finite.
    pub fn new(mean: Vec<f32>, variance: Vec<f32>) -> Result<Self, AcousticError> {
        if mean.is_empty() || mean.len() != variance.len() {
            return Err(AcousticError::DimensionMismatch {
                expected: mean.len(),
                got: variance.len(),
            });
        }
        if mean.iter().chain(variance.iter()).any(|v| !v.is_finite()) {
            return Err(AcousticError::InvalidParameter(
                "mean/variance must be finite".into(),
            ));
        }
        let variance: Vec<f32> = variance.iter().map(|&v| v.max(VARIANCE_FLOOR)).collect();
        let precision: Vec<f32> = variance.iter().map(|&v| -0.5 / v).collect();
        let dim = mean.len() as f64;
        let log_det: f64 = variance.iter().map(|&v| (v as f64).ln()).sum();
        let log_norm = (-0.5 * (dim * (2.0 * std::f64::consts::PI).ln() + log_det)) as f32;
        Ok(DiagGaussian {
            mean,
            variance,
            precision,
            log_norm,
        })
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Variance vector (after flooring).
    pub fn variance(&self) -> &[f32] {
        &self.variance
    }

    /// The `δ_i = −1/(2σ_i²)` precision terms fed to the OP unit datapath.
    pub fn precision(&self) -> &[f32] {
        &self.precision
    }

    /// The log normalisation constant
    /// `log((2π)^(−L/2) · Πσ_i^(−1/2)·…)` of this Gaussian.
    pub fn log_norm(&self) -> f32 {
        self.log_norm
    }

    /// Log density `log N(x; µ, σ)` evaluated in the log domain, the reference
    /// computation the hardware OP unit is verified against.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` has the wrong dimension.
    pub fn log_density(&self, x: &[f32]) -> LogProb {
        debug_assert_eq!(x.len(), self.dim(), "feature dimension mismatch");
        let mut acc = self.log_norm as f64;
        for ((&xi, &mi), &pi) in x.iter().zip(&self.mean).zip(&self.precision) {
            let d = (xi - mi) as f64;
            acc += d * d * pi as f64;
        }
        LogProb::new(acc as f32)
    }

    /// Returns a copy with every stored parameter quantised by `quantizer`
    /// (mean, variance and the derived precision/constant terms, since the
    /// hardware stores the derived forms).
    pub fn quantized(&self, quantizer: &Quantizer) -> DiagGaussian {
        let mean = quantizer.quantized(&self.mean);
        let variance = quantizer.quantized(&self.variance);
        let mut g = DiagGaussian::new(mean, variance).expect("quantised Gaussian stays valid");
        g.precision = quantizer.quantized(&g.precision);
        g.log_norm = quantizer.quantize(g.log_norm);
        g
    }

    /// Number of stored parameters (mean + variance), as counted by the flash
    /// layout: the derived `δ`/`C` values are what is streamed, but they are
    /// the same count as mean + variance (+1 constant folded into the weight).
    pub fn param_count(&self) -> usize {
        2 * self.dim()
    }
}

/// A weighted mixture of diagonal Gaussians — one senone's output density.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    components: Vec<DiagGaussian>,
    weights: Vec<f32>,
    /// `C_jk` of equation (6): log(weight_k) + log_norm_k, precomputed.
    log_weight_consts: Vec<f32>,
}

impl GaussianMixture {
    /// Creates a mixture from `(weight, gaussian)` pairs.  Weights are
    /// normalised to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] if there are no components,
    /// any weight is non-positive/not finite, or
    /// [`AcousticError::DimensionMismatch`] if components disagree on the
    /// dimension.
    pub fn new(components: Vec<(f32, DiagGaussian)>) -> Result<Self, AcousticError> {
        if components.is_empty() {
            return Err(AcousticError::InvalidParameter(
                "mixture needs at least one component".into(),
            ));
        }
        let dim = components[0].1.dim();
        for (w, g) in &components {
            if g.dim() != dim {
                return Err(AcousticError::DimensionMismatch {
                    expected: dim,
                    got: g.dim(),
                });
            }
            if !w.is_finite() || *w <= 0.0 {
                return Err(AcousticError::InvalidParameter(format!(
                    "mixture weight {w} must be positive and finite"
                )));
            }
        }
        let total: f32 = components.iter().map(|(w, _)| w).sum();
        let weights: Vec<f32> = components.iter().map(|(w, _)| w / total).collect();
        let comps: Vec<DiagGaussian> = components.into_iter().map(|(_, g)| g).collect();
        let log_weight_consts = weights
            .iter()
            .zip(&comps)
            .map(|(&w, g)| (w as f64).ln() as f32 + g.log_norm())
            .collect();
        Ok(GaussianMixture {
            components: comps,
            weights,
            log_weight_consts,
        })
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.components[0].dim()
    }

    /// The mixture components.
    pub fn components(&self) -> &[DiagGaussian] {
        &self.components
    }

    /// Normalised mixture weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The precomputed `C_jk = log(c_k) + log_norm_k` constants of equation (6).
    pub fn log_weight_consts(&self) -> &[f32] {
        &self.log_weight_consts
    }

    /// Log mixture likelihood `log b_j(x) = log Σ_k c_k N(x; µ_k, σ_k)` —
    /// equation (5) of the paper, evaluated with the exact log-add.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` has the wrong dimension.
    pub fn log_likelihood(&self, x: &[f32]) -> LogProb {
        let mut acc = LogProb::zero();
        for (k, g) in self.components.iter().enumerate() {
            let comp = LogProb::new(self.log_weight_consts[k] - g.log_norm()) + g.log_density(x);
            acc = acc.log_add(comp);
        }
        acc
    }

    /// Log likelihood of only the best-scoring component (max approximation,
    /// used by some fast-GMM layers).
    pub fn max_component_log_likelihood(&self, x: &[f32]) -> LogProb {
        self.components
            .iter()
            .enumerate()
            .map(|(k, g)| LogProb::new(self.log_weight_consts[k] - g.log_norm()) + g.log_density(x))
            .fold(LogProb::zero(), |acc, p| acc.max(p))
    }

    /// Returns a copy with all parameters quantised.
    pub fn quantized(&self, quantizer: &Quantizer) -> GaussianMixture {
        let comps: Vec<DiagGaussian> = self
            .components
            .iter()
            .map(|g| g.quantized(quantizer))
            .collect();
        let weights = quantizer.quantized(&self.weights);
        let mut mix = GaussianMixture::new(weights.iter().copied().zip(comps).collect())
            .expect("quantised mixture stays valid");
        mix.log_weight_consts = quantizer.quantized(&mix.log_weight_consts);
        mix
    }

    /// Stored parameter count: per component, mean + variance + weight.
    /// With 8 components and 39 dimensions this is 8·(2·39) + 8 = 632, which
    /// at 6 000 senones and 32-bit storage reproduces the paper's 15.16 MB.
    pub fn param_count(&self) -> usize {
        self.components
            .iter()
            .map(|g| g.param_count())
            .sum::<usize>()
            + self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_float::MantissaWidth;
    use proptest::prelude::*;

    fn unit_gaussian(dim: usize) -> DiagGaussian {
        DiagGaussian::new(vec![0.0; dim], vec![1.0; dim]).unwrap()
    }

    #[test]
    fn gaussian_rejects_bad_input() {
        assert!(DiagGaussian::new(vec![], vec![]).is_err());
        assert!(DiagGaussian::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(DiagGaussian::new(vec![f32::NAN], vec![1.0]).is_err());
        assert!(DiagGaussian::new(vec![0.0], vec![f32::INFINITY]).is_err());
    }

    #[test]
    fn variance_is_floored() {
        let g = DiagGaussian::new(vec![0.0], vec![0.0]).unwrap();
        assert!(g.variance()[0] >= VARIANCE_FLOOR);
        assert!(g.precision()[0].is_finite());
    }

    #[test]
    fn log_density_matches_closed_form_1d() {
        let g = DiagGaussian::new(vec![1.0], vec![4.0]).unwrap();
        // N(x=3; µ=1, σ²=4) = 1/sqrt(2π·4) · exp(-(2)²/(2·4))
        let expected = (1.0 / (2.0 * std::f64::consts::PI * 4.0).sqrt()) * (-0.5f64).exp();
        let got = g.log_density(&[3.0]).to_linear();
        assert!((got - expected).abs() / expected < 1e-5);
        assert_eq!(g.dim(), 1);
        assert_eq!(g.param_count(), 2);
    }

    #[test]
    fn density_is_maximised_at_mean() {
        let g = DiagGaussian::new(vec![1.0, -2.0, 0.5], vec![0.5, 1.0, 2.0]).unwrap();
        let at_mean = g.log_density(&[1.0, -2.0, 0.5]);
        for offset in [[0.5, 0.0, 0.0], [0.0, -1.0, 0.0], [1.0, 1.0, 1.0]] {
            let x: Vec<f32> = g.mean().iter().zip(&offset).map(|(m, o)| m + o).collect();
            assert!(g.log_density(&x).raw() < at_mean.raw());
        }
    }

    #[test]
    fn gaussian_integrates_to_one_1d() {
        // Riemann sum of exp(log_density) over a wide interval ≈ 1.
        let g = DiagGaussian::new(vec![0.3], vec![0.8]).unwrap();
        let step = 0.01f64;
        let total: f64 = (-1000..1000)
            .map(|i| g.log_density(&[(i as f32) * 0.01]).to_linear() * step)
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "integral {total}");
    }

    #[test]
    fn mixture_rejects_bad_input() {
        assert!(GaussianMixture::new(vec![]).is_err());
        assert!(GaussianMixture::new(vec![(0.0, unit_gaussian(2))]).is_err());
        assert!(GaussianMixture::new(vec![(-1.0, unit_gaussian(2))]).is_err());
        assert!(GaussianMixture::new(vec![(f32::NAN, unit_gaussian(2))]).is_err());
        assert!(
            GaussianMixture::new(vec![(0.5, unit_gaussian(2)), (0.5, unit_gaussian(3)),]).is_err()
        );
    }

    #[test]
    fn mixture_weights_are_normalised() {
        let mix =
            GaussianMixture::new(vec![(2.0, unit_gaussian(2)), (6.0, unit_gaussian(2))]).unwrap();
        assert!((mix.weights()[0] - 0.25).abs() < 1e-6);
        assert!((mix.weights()[1] - 0.75).abs() < 1e-6);
        assert_eq!(mix.num_components(), 2);
        assert_eq!(mix.dim(), 2);
        assert_eq!(mix.log_weight_consts().len(), 2);
        assert_eq!(mix.components().len(), 2);
    }

    #[test]
    fn single_component_mixture_equals_gaussian() {
        let g = DiagGaussian::new(vec![0.5, -1.0], vec![1.0, 2.0]).unwrap();
        let mix = GaussianMixture::new(vec![(1.0, g.clone())]).unwrap();
        let x = [0.2f32, 0.3];
        assert!((mix.log_likelihood(&x).raw() - g.log_density(&x).raw()).abs() < 1e-4);
    }

    #[test]
    fn mixture_likelihood_between_min_and_max_component() {
        let g1 = DiagGaussian::new(vec![0.0], vec![1.0]).unwrap();
        let g2 = DiagGaussian::new(vec![4.0], vec![1.0]).unwrap();
        let mix = GaussianMixture::new(vec![(0.5, g1.clone()), (0.5, g2.clone())]).unwrap();
        let x = [1.0f32];
        let full = mix.log_likelihood(&x);
        let max_only = mix.max_component_log_likelihood(&x);
        // max approximation is a lower bound on the full mixture.
        assert!(max_only.raw() <= full.raw() + 1e-5);
        assert!(full.raw() <= max_only.raw() + core::f32::consts::LN_2 + 1e-5);
    }

    #[test]
    fn param_count_matches_paper_geometry() {
        // 8 components × 39 dims → 8·78 + 8 = 632 parameters per senone.
        let comps: Vec<(f32, DiagGaussian)> = (0..8).map(|_| (1.0f32, unit_gaussian(39))).collect();
        let mix = GaussianMixture::new(comps).unwrap();
        assert_eq!(mix.param_count(), 632);
    }

    #[test]
    fn quantisation_changes_little_at_12_bits() {
        let g = DiagGaussian::new(vec![0.123456, -4.56789], vec![0.9876, 2.3456]).unwrap();
        let mix = GaussianMixture::new(vec![(0.3, g.clone()), (0.7, g)]).unwrap();
        let q = Quantizer::new(MantissaWidth::BITS_12);
        let qmix = mix.quantized(&q);
        let x = [0.5f32, -3.0];
        let a = mix.log_likelihood(&x).raw();
        let b = qmix.log_likelihood(&x).raw();
        assert!(
            (a - b).abs() < 0.05,
            "quantised mixture differs too much: {a} vs {b}"
        );
        assert_eq!(qmix.param_count(), mix.param_count());
    }

    proptest! {
        #[test]
        fn prop_density_finite(
            mean in proptest::collection::vec(-5.0f32..5.0, 4),
            var in proptest::collection::vec(0.1f32..5.0, 4),
            x in proptest::collection::vec(-10.0f32..10.0, 4),
        ) {
            let g = DiagGaussian::new(mean, var).unwrap();
            prop_assert!(g.log_density(&x).raw().is_finite());
        }

        #[test]
        fn prop_mixture_dominated_by_components(
            x in proptest::collection::vec(-5.0f32..5.0, 3),
            m1 in proptest::collection::vec(-3.0f32..3.0, 3),
            m2 in proptest::collection::vec(-3.0f32..3.0, 3),
            w in 0.05f32..0.95,
        ) {
            let g1 = DiagGaussian::new(m1, vec![1.0; 3]).unwrap();
            let g2 = DiagGaussian::new(m2, vec![1.0; 3]).unwrap();
            let mix = GaussianMixture::new(vec![(w, g1.clone()), (1.0 - w, g2.clone())]).unwrap();
            let lik = mix.log_likelihood(&x).to_linear();
            let manual = w as f64 * g1.log_density(&x).to_linear()
                + (1.0 - w) as f64 * g2.log_density(&x).to_linear();
            prop_assert!((lik - manual).abs() <= 1e-6 + 1e-3 * manual.abs());
        }

        #[test]
        fn prop_quantised_likelihood_close(
            x in proptest::collection::vec(-3.0f32..3.0, 4),
            mean in proptest::collection::vec(-3.0f32..3.0, 4),
        ) {
            let g = DiagGaussian::new(mean, vec![1.0; 4]).unwrap();
            let mix = GaussianMixture::new(vec![(1.0, g)]).unwrap();
            let q = Quantizer::new(MantissaWidth::BITS_12);
            let diff = (mix.log_likelihood(&x).raw()
                - mix.quantized(&q).log_likelihood(&x).raw()).abs();
            prop_assert!(diff < 0.1);
        }
    }
}
