//! Flash storage layout and size/bandwidth accounting.
//!
//! The paper stores the acoustic model (and dictionary / language model) in
//! flash memory and streams it into the OP unit every frame.  Its results
//! table reports, for 6 000 senones:
//!
//! | mantissa | memory (MB) | worst-case bandwidth (GB/s) |
//! |---------:|------------:|----------------------------:|
//! | 23 bits  | 15.16       | 1.516                        |
//! | 15 bits  | 11.37       | 1.137                        |
//! | 12 bits  |  9.95       | 0.995                        |
//!
//! assuming every senone is evaluated in every 10 ms frame.
//! [`StorageLayout`] reproduces that accounting from first principles
//! (parameter count × per-value width), and [`FlashImage`] actually packs a
//! model's parameters into a byte image at a chosen width so the numbers are
//! backed by a real serialiser rather than a formula alone.

use crate::model::{AcousticModel, AcousticModelConfig};
use crate::AcousticError;
use asr_float::{MantissaWidth, Quantizer};

/// Analytic storage/bandwidth accounting for an acoustic model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageLayout {
    /// Number of stored Gaussian parameters.
    pub gaussian_params: usize,
    /// Storage width of each parameter.
    pub width: MantissaWidth,
    /// Frame period in seconds over which the whole model may be re-read
    /// (10 ms in the paper).
    pub frame_period_s: f64,
}

impl StorageLayout {
    /// Layout for a model configuration at a given parameter width.
    pub fn for_config(config: &AcousticModelConfig, width: MantissaWidth) -> Self {
        StorageLayout {
            gaussian_params: config.total_gaussian_params(),
            width,
            frame_period_s: 0.010,
        }
    }

    /// Layout for an instantiated model.
    pub fn for_model(model: &AcousticModel, width: MantissaWidth) -> Self {
        StorageLayout {
            gaussian_params: model.gaussian_param_count(),
            width,
            frame_period_s: 0.010,
        }
    }

    /// Acoustic-model size in bytes (packed at `width` bits per value).
    pub fn model_bytes(&self) -> f64 {
        Quantizer::new(self.width).storage_bytes(self.gaussian_params)
    }

    /// Acoustic-model size in megabytes (10⁶ bytes, as the paper reports).
    pub fn model_megabytes(&self) -> f64 {
        self.model_bytes() / 1.0e6
    }

    /// Worst-case bandwidth in bytes/second: the whole model streamed once per
    /// frame ("assuming all 6000 senones are evaluated in a frame of 10ms").
    pub fn worst_case_bandwidth_bytes_per_s(&self) -> f64 {
        self.model_bytes() / self.frame_period_s
    }

    /// Worst-case bandwidth in GB/s (10⁹ bytes, as the paper reports).
    pub fn worst_case_bandwidth_gb_per_s(&self) -> f64 {
        self.worst_case_bandwidth_bytes_per_s() / 1.0e9
    }

    /// Bandwidth when only `active` of `total` senones are evaluated in a
    /// frame — the saving the word-decode feedback provides.
    pub fn active_bandwidth_gb_per_s(&self, active: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        self.worst_case_bandwidth_gb_per_s() * active as f64 / total as f64
    }
}

/// Magic number identifying a packed acoustic-model flash image.
const FLASH_MAGIC: u32 = 0x4C56_4353; // "LVCS"

/// A packed byte image of an acoustic model's Gaussian parameters, as it
/// would be laid out in the flash device.
///
/// Values are bit-packed at `1 + 8 + mantissa` bits each, so the image size
/// matches the analytic [`StorageLayout`] accounting (up to the final byte of
/// padding and a small fixed header).
#[derive(Debug, Clone, PartialEq)]
pub struct FlashImage {
    width: MantissaWidth,
    param_count: usize,
    bytes: Vec<u8>,
}

impl FlashImage {
    /// Packs every Gaussian parameter of `model` (means, variances, weights)
    /// into a flash image at the given width.
    pub fn pack(model: &AcousticModel, width: MantissaWidth) -> Self {
        let mut values: Vec<f32> = Vec::with_capacity(model.gaussian_param_count());
        for senone in model.senones().iter() {
            let mix = senone.mixture();
            for g in mix.components() {
                values.extend_from_slice(g.mean());
                values.extend_from_slice(g.variance());
            }
            values.extend_from_slice(mix.weights());
        }
        Self::pack_values(&values, width)
    }

    /// Packs an arbitrary list of values (exposed so the lexicon/LM storage
    /// accounting can reuse the same packer).
    pub fn pack_values(values: &[f32], width: MantissaWidth) -> Self {
        let bits_per_value = width.storage_bits();
        let quantizer = Quantizer::new(width);
        let total_bits = values.len() as u64 * bits_per_value as u64;
        let mut bytes = vec![0u8; total_bits.div_ceil(8) as usize + 8];
        // 8-byte header: magic + value count.
        bytes[..4].copy_from_slice(&FLASH_MAGIC.to_le_bytes());
        bytes[4..8].copy_from_slice(&(values.len() as u32).to_le_bytes());
        let mut bit_pos: u64 = 64;
        for &v in values {
            let q = quantizer.quantize(v);
            // Keep sign(1) + exponent(8) + top mantissa bits.
            let raw = q.to_bits() >> (32 - bits_per_value);
            for b in 0..bits_per_value {
                let bit = (raw >> (bits_per_value - 1 - b)) & 1;
                if bit != 0 {
                    let idx = (bit_pos / 8) as usize;
                    bytes[idx] |= 1 << (7 - (bit_pos % 8));
                }
                bit_pos += 1;
            }
        }
        FlashImage {
            width,
            param_count: values.len(),
            bytes,
        }
    }

    /// Unpacks the stored values (each reconstructed at full `f32`, with the
    /// dropped mantissa bits read back as zero).
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::CorruptImage`] if the header is malformed or
    /// the image is truncated.
    pub fn unpack_values(&self) -> Result<Vec<f32>, AcousticError> {
        if self.bytes.len() < 8 {
            return Err(AcousticError::CorruptImage(
                "image shorter than header".into(),
            ));
        }
        let magic = u32::from_le_bytes(self.bytes[..4].try_into().expect("4 bytes"));
        if magic != FLASH_MAGIC {
            return Err(AcousticError::CorruptImage(format!(
                "bad magic 0x{magic:08x}"
            )));
        }
        let count = u32::from_le_bytes(self.bytes[4..8].try_into().expect("4 bytes")) as usize;
        let bits_per_value = self.width.storage_bits();
        let needed_bits = 64 + count as u64 * bits_per_value as u64;
        if (self.bytes.len() as u64) * 8 < needed_bits {
            return Err(AcousticError::CorruptImage("image truncated".into()));
        }
        let mut out = Vec::with_capacity(count);
        let mut bit_pos: u64 = 64;
        for _ in 0..count {
            let mut raw: u32 = 0;
            for _ in 0..bits_per_value {
                let idx = (bit_pos / 8) as usize;
                let bit = (self.bytes[idx] >> (7 - (bit_pos % 8))) & 1;
                raw = (raw << 1) | bit as u32;
                bit_pos += 1;
            }
            out.push(f32::from_bits(raw << (32 - bits_per_value)));
        }
        Ok(out)
    }

    /// Width the image was packed at.
    pub fn width(&self) -> MantissaWidth {
        self.width
    }

    /// Number of packed values.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The raw flash bytes (header + packed payload).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Payload size in bytes, excluding the fixed header.
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len() - 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AcousticModelConfig;

    #[test]
    fn paper_memory_and_bandwidth_table() {
        // E1: the headline reproduction of the paper's results table.
        let cfg = AcousticModelConfig::paper_default();
        let expect = [
            (MantissaWidth::FULL, 15.16, 1.516),
            (MantissaWidth::BITS_15, 11.37, 1.137),
            (MantissaWidth::BITS_12, 9.95, 0.995),
        ];
        for (width, mb, gbps) in expect {
            let layout = StorageLayout::for_config(&cfg, width);
            assert!(
                (layout.model_megabytes() - mb).abs() < 0.02,
                "{width}: {} MB vs paper {mb} MB",
                layout.model_megabytes()
            );
            assert!(
                (layout.worst_case_bandwidth_gb_per_s() - gbps).abs() < 0.002,
                "{width}: {} GB/s vs paper {gbps} GB/s",
                layout.worst_case_bandwidth_gb_per_s()
            );
        }
    }

    #[test]
    fn active_fraction_scales_bandwidth() {
        let cfg = AcousticModelConfig::paper_default();
        let layout = StorageLayout::for_config(&cfg, MantissaWidth::FULL);
        let half = layout.active_bandwidth_gb_per_s(3000, 6000);
        assert!((half - layout.worst_case_bandwidth_gb_per_s() / 2.0).abs() < 1e-9);
        assert_eq!(layout.active_bandwidth_gb_per_s(10, 0), 0.0);
    }

    #[test]
    fn layout_for_model_matches_config() {
        let cfg = AcousticModelConfig::tiny();
        let model = AcousticModel::untrained(cfg.clone()).unwrap();
        let a = StorageLayout::for_model(&model, MantissaWidth::FULL);
        let b = StorageLayout::for_config(&cfg, MantissaWidth::FULL);
        assert_eq!(a.gaussian_params, b.gaussian_params);
        assert_eq!(a.model_bytes(), b.model_bytes());
    }

    #[test]
    fn flash_image_roundtrip_full_precision() {
        let values = vec![1.5f32, -2.25, 0.0, 1000.125, -0.000123];
        let img = FlashImage::pack_values(&values, MantissaWidth::FULL);
        let back = img.unpack_values().unwrap();
        assert_eq!(values, back);
        assert_eq!(img.param_count(), 5);
        assert_eq!(img.width(), MantissaWidth::FULL);
    }

    #[test]
    fn flash_image_roundtrip_reduced_precision() {
        let values = vec![
            std::f32::consts::PI,
            -std::f32::consts::E,
            123.456,
            -0.001234,
        ];
        for width in [MantissaWidth::BITS_15, MantissaWidth::BITS_12] {
            let img = FlashImage::pack_values(&values, width);
            let back = img.unpack_values().unwrap();
            let bound = 2.0 * width.max_relative_error();
            for (orig, rec) in values.iter().zip(&back) {
                let rel = ((orig - rec).abs() / orig.abs()) as f64;
                assert!(rel <= bound, "{width}: {orig} -> {rec} rel {rel}");
            }
        }
    }

    #[test]
    fn flash_image_size_matches_layout() {
        let cfg = AcousticModelConfig::tiny();
        let model = AcousticModel::untrained(cfg).unwrap();
        for width in MantissaWidth::PAPER_SWEEP {
            let img = FlashImage::pack(&model, width);
            let layout = StorageLayout::for_model(&model, width);
            let analytic = layout.model_bytes();
            let actual = img.payload_bytes() as f64;
            assert!(
                (actual - analytic).abs() <= 1.0,
                "{width}: packed {actual} B vs analytic {analytic} B"
            );
            assert_eq!(img.param_count(), model.gaussian_param_count());
        }
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let values = vec![1.0f32, 2.0];
        let img = FlashImage::pack_values(&values, MantissaWidth::FULL);
        // Bad magic.
        let mut bad = img.clone();
        bad.bytes[0] ^= 0xff;
        assert!(bad.unpack_values().is_err());
        // Truncated.
        let mut short = img.clone();
        short.bytes.truncate(9);
        assert!(short.unpack_values().is_err());
        let mut tiny = img;
        tiny.bytes.truncate(3);
        assert!(tiny.unpack_values().is_err());
    }

    #[test]
    fn model_pack_and_unpack_preserves_values() {
        let model = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
        let img = FlashImage::pack(&model, MantissaWidth::FULL);
        let values = img.unpack_values().unwrap();
        // First packed values are the first senone's first component mean.
        let first_mean = model
            .senones()
            .iter()
            .next()
            .unwrap()
            .mixture()
            .components()[0]
            .mean();
        assert_eq!(&values[..first_mean.len()], first_mean);
    }
}
