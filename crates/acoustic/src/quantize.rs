//! Whole-model mantissa quantisation.
//!
//! "The length of mantissa can be reduced by couple of bits without
//! compromising the accuracy of speech recognition." (paper, Section IV-B)
//! This module produces a copy of an acoustic model whose every Gaussian
//! parameter has been truncated to a chosen [`MantissaWidth`], which the WER
//! experiment (E3) decodes with to confirm that claim.

use crate::model::AcousticModel;
use crate::AcousticError;
use asr_float::{MantissaWidth, Quantizer};

/// Returns a copy of `model` with every Gaussian parameter quantised to
/// `width`.  The triphone inventory and transition matrix are shared
/// unchanged (transitions are tiny and not part of the paper's sweep).
///
/// # Errors
///
/// Propagates [`AcousticError`] if the quantised parts fail re-validation
/// (which cannot happen for a valid input model).
pub fn quantize_model(
    model: &AcousticModel,
    width: MantissaWidth,
) -> Result<AcousticModel, AcousticError> {
    if width == MantissaWidth::FULL {
        return Ok(model.clone());
    }
    let quantizer = Quantizer::new(width);
    let pool = model.senones().quantized(&quantizer);
    AcousticModel::new(
        model.config().clone(),
        pool,
        model.triphones().clone(),
        model.transitions().clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AcousticModelConfig;
    use crate::senone::SenoneId;

    #[test]
    fn full_width_is_identical() {
        let m = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
        let q = quantize_model(&m, MantissaWidth::FULL).unwrap();
        let x = vec![0.25f32; m.feature_dim()];
        for (a, b) in m.score_all_senones(&x).iter().zip(q.score_all_senones(&x)) {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn reduced_widths_score_close_but_not_identical() {
        let m = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
        let x: Vec<f32> = (0..m.feature_dim())
            .map(|d| 0.37 * d as f32 + 0.11)
            .collect();
        for width in [MantissaWidth::BITS_15, MantissaWidth::BITS_12] {
            let q = quantize_model(&m, width).unwrap();
            let a = m.score_senone(SenoneId(0), &x).unwrap();
            let b = q.score_senone(SenoneId(0), &x).unwrap();
            assert!((a.raw() - b.raw()).abs() < 0.1, "{width}");
            assert_eq!(q.senones().len(), m.senones().len());
            assert_eq!(q.gaussian_param_count(), m.gaussian_param_count());
        }
    }

    #[test]
    fn ranking_is_preserved_at_12_bits() {
        // Quantisation must not reorder which senone scores best for a vector
        // that clearly belongs to one senone — this is the mechanism behind
        // the paper's "WER unchanged at 12 bits" claim.
        let m = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
        let q = quantize_model(&m, MantissaWidth::BITS_12).unwrap();
        let target = m.senones().get(SenoneId(7)).unwrap();
        let x: Vec<f32> = target.mixture().components()[0].mean().to_vec();
        let best_full = m
            .score_all_senones(&x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let best_quant = q
            .score_all_senones(&x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best_full, best_quant);
        assert_eq!(best_full, 7);
    }
}
