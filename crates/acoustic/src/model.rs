//! The complete acoustic model: senone pool + HMM topology + triphone
//! inventory + transition matrices.

use crate::gmm::GaussianMixture;
use crate::hmm::{HmmTopology, TransitionMatrix};
use crate::senone::{SenoneId, SenonePool};
use crate::triphone::{Triphone, TriphoneId, TriphoneInventory};
use crate::AcousticError;
use asr_float::LogProb;

/// Dimensions of an acoustic model; the defaults are the paper's system
/// (6 000 senones, 8 Gaussians each, 39-dimensional features, 3-state HMMs,
/// 51 base phones).
#[derive(Debug, Clone, PartialEq)]
pub struct AcousticModelConfig {
    /// Number of tied states (senones).
    pub num_senones: usize,
    /// Gaussian components per senone mixture.
    pub num_components: usize,
    /// Feature-vector dimension.
    pub feature_dim: usize,
    /// HMM topology used by every triphone.
    pub topology: HmmTopology,
    /// Number of base phones ("there are 51 phones in English language").
    pub num_phones: usize,
    /// Self-loop probability used for default Bakis transition matrices.
    pub self_loop_prob: f64,
}

impl AcousticModelConfig {
    /// The configuration the paper's results assume: 6 000 senones,
    /// 8 components, 39 dimensions, 3-state HMMs, 51 phones.
    pub fn paper_default() -> Self {
        AcousticModelConfig {
            num_senones: 6_000,
            num_components: 8,
            feature_dim: 39,
            topology: HmmTopology::Three,
            num_phones: 51,
            self_loop_prob: 0.6,
        }
    }

    /// A tiny configuration for unit tests and examples that need to run in
    /// milliseconds.
    pub fn tiny() -> Self {
        AcousticModelConfig {
            num_senones: 24,
            num_components: 2,
            feature_dim: 6,
            topology: HmmTopology::Three,
            num_phones: 8,
            self_loop_prob: 0.5,
        }
    }

    /// Gaussian parameters stored per senone: `2·dim` per component plus one
    /// weight per component.
    pub fn params_per_senone(&self) -> usize {
        self.num_components * (2 * self.feature_dim) + self.num_components
    }

    /// Total Gaussian parameters in the senone pool.
    pub fn total_gaussian_params(&self) -> usize {
        self.num_senones * self.params_per_senone()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] if any dimension is zero or
    /// the self-loop probability is not in `(0, 1)`.
    pub fn validate(&self) -> Result<(), AcousticError> {
        if self.num_senones == 0
            || self.num_components == 0
            || self.feature_dim == 0
            || self.num_phones == 0
        {
            return Err(AcousticError::InvalidParameter(
                "model dimensions must be positive".into(),
            ));
        }
        if !(self.self_loop_prob > 0.0 && self.self_loop_prob < 1.0) {
            return Err(AcousticError::InvalidParameter(
                "self_loop_prob must be in (0, 1)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for AcousticModelConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A complete acoustic model.
#[derive(Debug, Clone)]
pub struct AcousticModel {
    config: AcousticModelConfig,
    senones: SenonePool,
    triphones: TriphoneInventory,
    transitions: TransitionMatrix,
}

impl AcousticModel {
    /// Assembles an acoustic model from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] or
    /// [`AcousticError::DimensionMismatch`] if the parts are inconsistent with
    /// the configuration (senone count, feature dimension or topology).
    pub fn new(
        config: AcousticModelConfig,
        senones: SenonePool,
        triphones: TriphoneInventory,
        transitions: TransitionMatrix,
    ) -> Result<Self, AcousticError> {
        config.validate()?;
        if senones.len() != config.num_senones {
            return Err(AcousticError::InvalidParameter(format!(
                "senone pool has {} senones, config says {}",
                senones.len(),
                config.num_senones
            )));
        }
        if senones.dim() != config.feature_dim {
            return Err(AcousticError::DimensionMismatch {
                expected: config.feature_dim,
                got: senones.dim(),
            });
        }
        if triphones.topology() != config.topology || transitions.topology() != config.topology {
            return Err(AcousticError::InvalidParameter(
                "triphone inventory / transition topology disagrees with config".into(),
            ));
        }
        Ok(AcousticModel {
            config,
            senones,
            triphones,
            transitions,
        })
    }

    /// Builds a structurally valid model whose senones all share a single
    /// flat (untrained) distribution — used for sizing/bandwidth experiments
    /// where the parameter *values* do not matter, only their count.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn untrained(config: AcousticModelConfig) -> Result<Self, AcousticError> {
        config.validate()?;
        let mixtures: Vec<GaussianMixture> = (0..config.num_senones)
            .map(|s| {
                let comps: Vec<(f32, crate::gmm::DiagGaussian)> = (0..config.num_components)
                    .map(|c| {
                        let offset = (s * config.num_components + c) as f32 * 1.0e-3;
                        let mean: Vec<f32> =
                            (0..config.feature_dim).map(|d| offset + d as f32).collect();
                        (
                            1.0,
                            crate::gmm::DiagGaussian::new(mean, vec![1.0; config.feature_dim])
                                .expect("valid gaussian"),
                        )
                    })
                    .collect();
                GaussianMixture::new(comps).expect("valid mixture")
            })
            .collect();
        let senones = SenonePool::new(mixtures)?;
        let mut triphones = TriphoneInventory::new(config.topology);
        let states = config.topology.num_states();
        for p in 0..config.num_phones {
            let first = (p * states) % config.num_senones;
            let ids: Vec<SenoneId> = (0..states)
                .map(|k| SenoneId(((first + k) % config.num_senones) as u32))
                .collect();
            triphones.add(
                Triphone::context_independent(crate::triphone::PhoneId(p as u16)),
                ids,
            )?;
        }
        let transitions = TransitionMatrix::bakis(config.topology, config.self_loop_prob)?;
        AcousticModel::new(config, senones, triphones, transitions)
    }

    /// The model configuration.
    pub fn config(&self) -> &AcousticModelConfig {
        &self.config
    }

    /// The senone pool.
    pub fn senones(&self) -> &SenonePool {
        &self.senones
    }

    /// The triphone inventory.
    pub fn triphones(&self) -> &TriphoneInventory {
        &self.triphones
    }

    /// The shared transition matrix.
    pub fn transitions(&self) -> &TransitionMatrix {
        &self.transitions
    }

    /// Feature dimension expected by [`AcousticModel::score_senone`].
    pub fn feature_dim(&self) -> usize {
        self.config.feature_dim
    }

    /// Scores one senone against a feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::UnknownId`] for an out-of-range id.
    pub fn score_senone(&self, id: SenoneId, x: &[f32]) -> Result<LogProb, AcousticError> {
        self.senones.score(id, x)
    }

    /// Scores every senone (the worst-case full-frame evaluation).
    pub fn score_all_senones(&self, x: &[f32]) -> Vec<LogProb> {
        self.senones.score_all(x)
    }

    /// Scores a subset of senones (the active set from word-decode feedback).
    pub fn score_active_senones(&self, ids: &[SenoneId], x: &[f32]) -> Vec<(SenoneId, LogProb)> {
        self.senones.score_subset(ids, x)
    }

    /// The senone sequence of a triphone.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::UnknownId`] for an unknown triphone.
    pub fn triphone_senones(&self, id: TriphoneId) -> Result<&[SenoneId], AcousticError> {
        self.triphones.senones(id)
    }

    /// Total stored Gaussian parameters (the quantity that drives the paper's
    /// memory/bandwidth table).
    pub fn gaussian_param_count(&self) -> usize {
        self.senones.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::DiagGaussian;

    #[test]
    fn paper_config_reproduces_param_count() {
        let cfg = AcousticModelConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.params_per_senone(), 632);
        assert_eq!(cfg.total_gaussian_params(), 3_792_000);
        assert_eq!(AcousticModelConfig::default(), cfg);
    }

    #[test]
    fn config_validation() {
        let mut c = AcousticModelConfig::tiny();
        c.num_senones = 0;
        assert!(c.validate().is_err());
        let mut c = AcousticModelConfig::tiny();
        c.self_loop_prob = 1.0;
        assert!(c.validate().is_err());
        let mut c = AcousticModelConfig::tiny();
        c.feature_dim = 0;
        assert!(c.validate().is_err());
        assert!(AcousticModelConfig::tiny().validate().is_ok());
    }

    #[test]
    fn untrained_model_is_consistent() {
        let cfg = AcousticModelConfig::tiny();
        let m = AcousticModel::untrained(cfg.clone()).unwrap();
        assert_eq!(m.senones().len(), cfg.num_senones);
        assert_eq!(m.feature_dim(), cfg.feature_dim);
        assert_eq!(m.triphones().len(), cfg.num_phones);
        assert_eq!(m.config(), &cfg);
        assert_eq!(m.gaussian_param_count(), cfg.total_gaussian_params());
        assert_eq!(m.transitions().topology(), cfg.topology);
        // Every registered triphone's senones are valid.
        for (id, _, senones) in m.triphones().iter() {
            assert_eq!(m.triphone_senones(id).unwrap(), senones);
            for &s in senones {
                assert!(m.senones().get(s).is_some());
            }
        }
    }

    #[test]
    fn scoring_paths_agree() {
        let m = AcousticModel::untrained(AcousticModelConfig::tiny()).unwrap();
        let x = vec![0.5f32; m.feature_dim()];
        let all = m.score_all_senones(&x);
        assert_eq!(all.len(), m.senones().len());
        let some: Vec<SenoneId> = (0..5).map(SenoneId).collect();
        for (id, score) in m.score_active_senones(&some, &x) {
            assert_eq!(score.raw(), all[id.index()].raw());
            assert_eq!(m.score_senone(id, &x).unwrap().raw(), score.raw());
        }
        assert!(m.score_senone(SenoneId(9999), &x).is_err());
    }

    #[test]
    fn new_rejects_inconsistent_parts() {
        let cfg = AcousticModelConfig::tiny();
        let good = AcousticModel::untrained(cfg.clone()).unwrap();

        // Senone count mismatch.
        let small_pool = SenonePool::new(vec![GaussianMixture::new(vec![(
            1.0,
            DiagGaussian::new(vec![0.0; cfg.feature_dim], vec![1.0; cfg.feature_dim]).unwrap(),
        )])
        .unwrap()])
        .unwrap();
        assert!(AcousticModel::new(
            cfg.clone(),
            small_pool,
            good.triphones().clone(),
            good.transitions().clone()
        )
        .is_err());

        // Topology mismatch.
        let bad_transitions = TransitionMatrix::bakis(HmmTopology::Five, 0.5).unwrap();
        assert!(AcousticModel::new(
            cfg.clone(),
            good.senones().clone(),
            good.triphones().clone(),
            bad_transitions
        )
        .is_err());

        // Feature-dim mismatch.
        let mut cfg2 = cfg.clone();
        cfg2.feature_dim = 4;
        assert!(AcousticModel::new(
            cfg2,
            good.senones().clone(),
            good.triphones().clone(),
            good.transitions().clone()
        )
        .is_err());
    }
}
