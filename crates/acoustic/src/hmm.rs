//! HMM topologies and transition matrices.
//!
//! The paper's Viterbi decoder hardware "is able to handle multiple state
//! (3, 5, 7) HMMs and therefore can handle different acoustic models".  This
//! module provides the left-to-right Bakis topologies used for triphones and
//! the transition matrices (in the log domain) consumed by both the software
//! search and the hardware Viterbi-unit model.

use crate::AcousticError;
use asr_float::LogProb;

/// Supported numbers of *emitting* states per triphone HMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum HmmTopology {
    /// 3-state left-to-right HMM (the standard Sphinx topology).
    #[default]
    Three,
    /// 5-state left-to-right HMM.
    Five,
    /// 7-state left-to-right HMM.
    Seven,
}

impl HmmTopology {
    /// All topologies the hardware supports.
    pub const ALL: [HmmTopology; 3] = [HmmTopology::Three, HmmTopology::Five, HmmTopology::Seven];

    /// Number of emitting states.
    #[inline]
    pub fn num_states(self) -> usize {
        match self {
            HmmTopology::Three => 3,
            HmmTopology::Five => 5,
            HmmTopology::Seven => 7,
        }
    }

    /// Creates a topology from a state count.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] for counts other than
    /// 3, 5 or 7 (the hardware only handles those).
    pub fn from_states(n: usize) -> Result<Self, AcousticError> {
        match n {
            3 => Ok(HmmTopology::Three),
            5 => Ok(HmmTopology::Five),
            7 => Ok(HmmTopology::Seven),
            other => Err(AcousticError::InvalidParameter(format!(
                "unsupported HMM state count {other}; hardware handles 3, 5 or 7"
            ))),
        }
    }
}

impl core::fmt::Display for HmmTopology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}-state HMM", self.num_states())
    }
}

/// A log-domain transition matrix for a left-to-right HMM.
///
/// `a[i][j]` is the log probability of moving from emitting state `i` to
/// emitting state `j`; an extra virtual column holds the exit transition from
/// each state out of the HMM (into the next triphone), matching the paper's
/// composite-HMM construction where "the exit state of one triphone is merged
/// with the entry state of another".
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    topology: HmmTopology,
    /// Row-major `(n) × (n + 1)` matrix: columns `0..n` are emitting states,
    /// column `n` is the exit.
    log_probs: Vec<LogProb>,
}

impl TransitionMatrix {
    /// Builds a transition matrix from linear-domain probabilities.
    ///
    /// `rows[i]` must contain `num_states + 1` probabilities (transitions to
    /// each emitting state plus the exit), each row summing to approximately 1.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] if the shape is wrong, a
    /// probability is negative/not finite, a row sums to zero, or a backward
    /// (right-to-left) transition is non-zero.
    pub fn new(topology: HmmTopology, rows: &[Vec<f64>]) -> Result<Self, AcousticError> {
        let n = topology.num_states();
        if rows.len() != n {
            return Err(AcousticError::InvalidParameter(format!(
                "expected {n} transition rows, got {}",
                rows.len()
            )));
        }
        let mut log_probs = Vec::with_capacity(n * (n + 1));
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n + 1 {
                return Err(AcousticError::InvalidParameter(format!(
                    "row {i} must have {} entries (states + exit), got {}",
                    n + 1,
                    row.len()
                )));
            }
            if row.iter().any(|&p| !p.is_finite() || p < 0.0) {
                return Err(AcousticError::InvalidParameter(format!(
                    "row {i} contains a negative or non-finite probability"
                )));
            }
            let sum: f64 = row.iter().sum();
            if sum <= 0.0 {
                return Err(AcousticError::InvalidParameter(format!(
                    "row {i} sums to zero"
                )));
            }
            for (j, &p) in row.iter().enumerate() {
                if j < n && j < i && p > 0.0 {
                    return Err(AcousticError::InvalidParameter(format!(
                        "backward transition {i}->{j} not allowed in left-to-right HMM"
                    )));
                }
                log_probs.push(LogProb::from_linear(p / sum));
            }
        }
        Ok(TransitionMatrix {
            topology,
            log_probs,
        })
    }

    /// The canonical Bakis topology used when no trained transitions are
    /// available: each state has a self-loop probability `self_loop`, moves to
    /// the next state with `1 − self_loop`, and the last state exits with
    /// `1 − self_loop`.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] unless `0 < self_loop < 1`.
    pub fn bakis(topology: HmmTopology, self_loop: f64) -> Result<Self, AcousticError> {
        if !(0.0..1.0).contains(&self_loop) || self_loop == 0.0 {
            return Err(AcousticError::InvalidParameter(format!(
                "self-loop probability {self_loop} must be in (0, 1)"
            )));
        }
        let n = topology.num_states();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row = vec![0.0f64; n + 1];
                row[i] = self_loop;
                if i + 1 < n {
                    row[i + 1] = 1.0 - self_loop;
                } else {
                    row[n] = 1.0 - self_loop;
                }
                row
            })
            .collect();
        Self::new(topology, &rows)
    }

    /// The topology of this matrix.
    pub fn topology(&self) -> HmmTopology {
        self.topology
    }

    /// Number of emitting states.
    pub fn num_states(&self) -> usize {
        self.topology.num_states()
    }

    /// Log transition probability from state `i` to state `j`
    /// (both emitting states).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn log_prob(&self, i: usize, j: usize) -> LogProb {
        let n = self.num_states();
        assert!(i < n && j < n, "state index out of range");
        self.log_probs[i * (n + 1) + j]
    }

    /// Log probability of exiting the HMM from state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn log_exit_prob(&self, i: usize) -> LogProb {
        let n = self.num_states();
        assert!(i < n, "state index out of range");
        self.log_probs[i * (n + 1) + n]
    }

    /// The incoming transitions of state `j`: every `(i, log a_ij)` with a
    /// non-zero probability.  This is the "matrix column" the hardware Viterbi
    /// unit streams per destination state.
    pub fn column(&self, j: usize) -> Vec<(usize, LogProb)> {
        (0..self.num_states())
            .map(|i| (i, self.log_prob(i, j)))
            .filter(|(_, p)| !p.is_zero())
            .collect()
    }

    /// Expected number of frames spent in this HMM (sum over states of
    /// `1 / (1 − self_loop_i)`), used by the corpus synthesiser to pick
    /// realistic durations.
    pub fn expected_duration_frames(&self) -> f64 {
        (0..self.num_states())
            .map(|i| {
                let stay = self.log_prob(i, i).to_linear();
                1.0 / (1.0 - stay).max(1.0e-6)
            })
            .sum()
    }

    /// Number of stored transition parameters (`n × (n+1)`).
    pub fn param_count(&self) -> usize {
        self.num_states() * (self.num_states() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn topology_state_counts() {
        assert_eq!(HmmTopology::Three.num_states(), 3);
        assert_eq!(HmmTopology::Five.num_states(), 5);
        assert_eq!(HmmTopology::Seven.num_states(), 7);
        assert_eq!(HmmTopology::default(), HmmTopology::Three);
        assert_eq!(HmmTopology::from_states(5).unwrap(), HmmTopology::Five);
        assert!(HmmTopology::from_states(4).is_err());
        assert_eq!(HmmTopology::ALL.len(), 3);
        assert_eq!(format!("{}", HmmTopology::Seven), "7-state HMM");
    }

    #[test]
    fn bakis_structure() {
        let t = TransitionMatrix::bakis(HmmTopology::Three, 0.6).unwrap();
        assert_eq!(t.num_states(), 3);
        assert_eq!(t.topology(), HmmTopology::Three);
        // Self-loops.
        for i in 0..3 {
            assert!((t.log_prob(i, i).to_linear() - 0.6).abs() < 1e-6);
        }
        // Forward transitions.
        assert!((t.log_prob(0, 1).to_linear() - 0.4).abs() < 1e-6);
        assert!((t.log_prob(1, 2).to_linear() - 0.4).abs() < 1e-6);
        // No skips or backward transitions.
        assert!(t.log_prob(0, 2).is_zero());
        assert!(t.log_prob(2, 0).is_zero());
        assert!(t.log_prob(1, 0).is_zero());
        // Exit only from the last state.
        assert!(t.log_exit_prob(0).is_zero());
        assert!(t.log_exit_prob(1).is_zero());
        assert!((t.log_exit_prob(2).to_linear() - 0.4).abs() < 1e-6);
        assert_eq!(t.param_count(), 12);
    }

    #[test]
    fn bakis_rejects_bad_self_loop() {
        assert!(TransitionMatrix::bakis(HmmTopology::Three, 0.0).is_err());
        assert!(TransitionMatrix::bakis(HmmTopology::Three, 1.0).is_err());
        assert!(TransitionMatrix::bakis(HmmTopology::Three, -0.1).is_err());
        assert!(TransitionMatrix::bakis(HmmTopology::Three, 1.5).is_err());
    }

    #[test]
    fn custom_matrix_validation() {
        // Wrong row count.
        assert!(TransitionMatrix::new(HmmTopology::Three, &[vec![1.0; 4]]).is_err());
        // Wrong row width.
        assert!(TransitionMatrix::new(
            HmmTopology::Three,
            &[vec![1.0; 3], vec![1.0; 4], vec![1.0; 4]]
        )
        .is_err());
        // Negative probability.
        assert!(TransitionMatrix::new(
            HmmTopology::Three,
            &[
                vec![-0.5, 0.5, 0.0, 0.0],
                vec![0.0, 0.5, 0.5, 0.0],
                vec![0.0, 0.0, 0.5, 0.5]
            ]
        )
        .is_err());
        // Backward transition.
        assert!(TransitionMatrix::new(
            HmmTopology::Three,
            &[
                vec![0.5, 0.5, 0.0, 0.0],
                vec![0.2, 0.3, 0.5, 0.0],
                vec![0.0, 0.0, 0.5, 0.5]
            ]
        )
        .is_err());
        // Zero row.
        assert!(TransitionMatrix::new(
            HmmTopology::Three,
            &[
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.5, 0.5, 0.0],
                vec![0.0, 0.0, 0.5, 0.5]
            ]
        )
        .is_err());
    }

    #[test]
    fn rows_are_normalised() {
        let t = TransitionMatrix::new(
            HmmTopology::Three,
            &[
                vec![2.0, 2.0, 0.0, 0.0],
                vec![0.0, 1.0, 3.0, 0.0],
                vec![0.0, 0.0, 1.0, 1.0],
            ],
        )
        .unwrap();
        assert!((t.log_prob(0, 0).to_linear() - 0.5).abs() < 1e-6);
        assert!((t.log_prob(1, 2).to_linear() - 0.75).abs() < 1e-6);
        assert!((t.log_exit_prob(2).to_linear() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn columns_list_incoming_transitions() {
        let t = TransitionMatrix::bakis(HmmTopology::Five, 0.5).unwrap();
        let col0 = t.column(0);
        assert_eq!(col0, vec![(0, t.log_prob(0, 0))]);
        let col2 = t.column(2);
        assert_eq!(col2.len(), 2); // from state 1 (forward) and 2 (self)
        assert!(col2.iter().any(|&(i, _)| i == 1));
        assert!(col2.iter().any(|&(i, _)| i == 2));
    }

    #[test]
    fn expected_duration_grows_with_self_loop() {
        let short = TransitionMatrix::bakis(HmmTopology::Three, 0.3).unwrap();
        let long = TransitionMatrix::bakis(HmmTopology::Three, 0.8).unwrap();
        assert!(long.expected_duration_frames() > short.expected_duration_frames());
        // 3 states with self-loop 0.5 → ~2 frames each → 6 frames.
        let mid = TransitionMatrix::bakis(HmmTopology::Three, 0.5).unwrap();
        assert!((mid.expected_duration_frames() - 6.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_state_panics() {
        let t = TransitionMatrix::bakis(HmmTopology::Three, 0.5).unwrap();
        let _ = t.log_prob(3, 0);
    }

    proptest! {
        #[test]
        fn prop_bakis_rows_sum_to_one(self_loop in 0.05f64..0.95) {
            for topo in HmmTopology::ALL {
                let t = TransitionMatrix::bakis(topo, self_loop).unwrap();
                for i in 0..t.num_states() {
                    let mut sum = 0.0;
                    for j in 0..t.num_states() {
                        sum += t.log_prob(i, j).to_linear();
                    }
                    sum += t.log_exit_prob(i).to_linear();
                    prop_assert!((sum - 1.0).abs() < 1e-6);
                }
            }
        }
    }
}
