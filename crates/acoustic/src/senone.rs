//! Senones — tied HMM states shared across triphones.
//!
//! "In absence of enough training data, the states of different triphones are
//! represented by the same distribution, these are called senones. Therefore,
//! combination of senones forms triphones, which put together form words and
//! words put together form a sentence or utterance." (paper, Section II)

use crate::gmm::GaussianMixture;
use crate::AcousticError;
use asr_float::{LogProb, Quantizer};

/// Identifier of a senone within a [`SenonePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SenoneId(pub u32);

impl SenoneId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for SenoneId {
    fn from(v: u32) -> Self {
        SenoneId(v)
    }
}

impl core::fmt::Display for SenoneId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "senone#{}", self.0)
    }
}

/// A senone: an identifier plus its output distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Senone {
    id: SenoneId,
    mixture: GaussianMixture,
}

impl Senone {
    /// Creates a senone.
    pub fn new(id: SenoneId, mixture: GaussianMixture) -> Self {
        Senone { id, mixture }
    }

    /// The senone identifier.
    pub fn id(&self) -> SenoneId {
        self.id
    }

    /// The output distribution.
    pub fn mixture(&self) -> &GaussianMixture {
        &self.mixture
    }

    /// The senone score of the paper: `log b_j(O_t)` for feature vector `x`.
    pub fn score(&self, x: &[f32]) -> LogProb {
        self.mixture.log_likelihood(x)
    }

    /// Stored parameter count of this senone.
    pub fn param_count(&self) -> usize {
        self.mixture.param_count()
    }
}

/// The pool of all senones in an acoustic model.
///
/// Evaluating *all* senones every frame is the worst case the paper's
/// bandwidth figure assumes ("assuming all 6000 senones are evaluated in a
/// frame of 10 ms"); the decoder normally evaluates only the *active* subset
/// supplied by the word-decode feedback.
#[derive(Debug, Clone, PartialEq)]
pub struct SenonePool {
    senones: Vec<Senone>,
    dim: usize,
}

impl SenonePool {
    /// Builds a pool from senone output distributions (ids are assigned in
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] if the pool is empty and
    /// [`AcousticError::DimensionMismatch`] if mixtures disagree on dimension.
    pub fn new(mixtures: Vec<GaussianMixture>) -> Result<Self, AcousticError> {
        if mixtures.is_empty() {
            return Err(AcousticError::InvalidParameter(
                "senone pool cannot be empty".into(),
            ));
        }
        let dim = mixtures[0].dim();
        for m in &mixtures {
            if m.dim() != dim {
                return Err(AcousticError::DimensionMismatch {
                    expected: dim,
                    got: m.dim(),
                });
            }
        }
        let senones = mixtures
            .into_iter()
            .enumerate()
            .map(|(i, m)| Senone::new(SenoneId(i as u32), m))
            .collect();
        Ok(SenonePool { senones, dim })
    }

    /// Number of senones in the pool.
    pub fn len(&self) -> usize {
        self.senones.len()
    }

    /// Returns `true` if the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.senones.is_empty()
    }

    /// Feature dimension of every senone.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a senone.
    pub fn get(&self, id: SenoneId) -> Option<&Senone> {
        self.senones.get(id.index())
    }

    /// Iterates over all senones.
    pub fn iter(&self) -> impl Iterator<Item = &Senone> {
        self.senones.iter()
    }

    /// Scores a single senone against a feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::UnknownId`] for an out-of-range senone id.
    pub fn score(&self, id: SenoneId, x: &[f32]) -> Result<LogProb, AcousticError> {
        self.get(id)
            .map(|s| s.score(x))
            .ok_or_else(|| AcousticError::UnknownId(format!("{id}")))
    }

    /// Scores every senone in the pool (the worst-case full evaluation).
    pub fn score_all(&self, x: &[f32]) -> Vec<LogProb> {
        self.senones.iter().map(|s| s.score(x)).collect()
    }

    /// Scores only the given subset of senones, returning `(id, score)` pairs —
    /// this is what the phone-decode stage asks for after the word-decode
    /// feedback restricts the active set.
    pub fn score_subset(&self, ids: &[SenoneId], x: &[f32]) -> Vec<(SenoneId, LogProb)> {
        ids.iter()
            .filter_map(|&id| self.get(id).map(|s| (id, s.score(x))))
            .collect()
    }

    /// Total stored parameter count over all senones.
    pub fn param_count(&self) -> usize {
        self.senones.iter().map(|s| s.param_count()).sum()
    }

    /// Returns a pool with every senone's parameters quantised.
    pub fn quantized(&self, quantizer: &Quantizer) -> SenonePool {
        SenonePool {
            senones: self
                .senones
                .iter()
                .map(|s| Senone::new(s.id, s.mixture.quantized(quantizer)))
                .collect(),
            dim: self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::DiagGaussian;
    use asr_float::MantissaWidth;

    fn pool(n: usize, dim: usize) -> SenonePool {
        let mixtures: Vec<GaussianMixture> = (0..n)
            .map(|i| {
                let mean: Vec<f32> = (0..dim).map(|d| (i + d) as f32 * 0.1).collect();
                let g = DiagGaussian::new(mean, vec![1.0; dim]).unwrap();
                GaussianMixture::new(vec![(1.0, g)]).unwrap()
            })
            .collect();
        SenonePool::new(mixtures).unwrap()
    }

    #[test]
    fn pool_basics() {
        let p = pool(10, 4);
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
        assert_eq!(p.dim(), 4);
        assert_eq!(p.iter().count(), 10);
        assert!(p.get(SenoneId(3)).is_some());
        assert!(p.get(SenoneId(10)).is_none());
        assert_eq!(p.get(SenoneId(3)).unwrap().id(), SenoneId(3));
        assert_eq!(SenoneId::from(7u32), SenoneId(7));
        assert_eq!(SenoneId(5).index(), 5);
        assert_eq!(format!("{}", SenoneId(2)), "senone#2");
    }

    #[test]
    fn empty_pool_rejected() {
        assert!(SenonePool::new(vec![]).is_err());
    }

    #[test]
    fn mismatched_dims_rejected() {
        let g2 = GaussianMixture::new(vec![(
            1.0,
            DiagGaussian::new(vec![0.0; 2], vec![1.0; 2]).unwrap(),
        )])
        .unwrap();
        let g3 = GaussianMixture::new(vec![(
            1.0,
            DiagGaussian::new(vec![0.0; 3], vec![1.0; 3]).unwrap(),
        )])
        .unwrap();
        assert!(SenonePool::new(vec![g2, g3]).is_err());
    }

    #[test]
    fn scoring_all_and_subsets() {
        let p = pool(20, 4);
        let x = [0.3f32, 0.2, 0.1, 0.0];
        let all = p.score_all(&x);
        assert_eq!(all.len(), 20);
        let subset_ids: Vec<SenoneId> = [2u32, 5, 19].iter().map(|&i| SenoneId(i)).collect();
        let subset = p.score_subset(&subset_ids, &x);
        assert_eq!(subset.len(), 3);
        for (id, score) in subset {
            assert_eq!(score.raw(), all[id.index()].raw());
        }
        // Out-of-range ids are skipped in subsets and error in single scoring.
        assert_eq!(p.score_subset(&[SenoneId(99)], &x).len(), 0);
        assert!(p.score(SenoneId(99), &x).is_err());
        assert!(p.score(SenoneId(0), &x).is_ok());
    }

    #[test]
    fn closest_senone_scores_best() {
        let p = pool(10, 4);
        // Senone i has mean ≈ (i*0.1, …); a vector near senone 9's mean should
        // score best there.
        let x: Vec<f32> = (0..4).map(|d| (9 + d) as f32 * 0.1).collect();
        let all = p.score_all(&x);
        let best = all
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 9);
    }

    #[test]
    fn param_count_scales_with_pool() {
        let p = pool(10, 4);
        assert_eq!(p.param_count(), 10 * (2 * 4 + 1));
    }

    #[test]
    fn quantized_pool_scores_close() {
        let p = pool(5, 4);
        let q = p.quantized(&Quantizer::new(MantissaWidth::BITS_12));
        let x = [0.1f32, 0.3, -0.2, 0.4];
        for (a, b) in p.score_all(&x).iter().zip(q.score_all(&x)) {
            assert!((a.raw() - b.raw()).abs() < 0.05);
        }
        assert_eq!(q.len(), p.len());
    }
}
