//! # asr-acoustic — senones, Gaussian mixtures and triphone HMMs
//!
//! The acoustic-model substrate of the SOCC 2006 low-power LVCSR architecture.
//! In the paper the acoustic model lives in flash memory and is streamed into
//! the Observation Probability unit every frame; it consists of
//!
//! * **senones** — tied HMM states, each modelled by a mixture of diagonal-
//!   covariance Gaussians over the 39-dimensional feature vector
//!   (the paper's system uses 6 000 senones with 8 mixture components),
//! * **triphones** — context-dependent phones whose 3/5/7 emitting states map
//!   onto senones,
//! * **HMM topologies** — left-to-right transition structures with self loops,
//!   solved by the hardware Viterbi unit.
//!
//! The crate also provides the flash storage layout (so the memory /
//! bandwidth table of the paper can be regenerated), mantissa quantisation of
//! model parameters, and a small k-means + EM trainer used by the synthetic
//! corpus generator.
//!
//! # Example
//!
//! ```
//! use asr_acoustic::{AcousticModelConfig, DiagGaussian, GaussianMixture};
//!
//! let g = DiagGaussian::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
//! let mix = GaussianMixture::new(vec![(1.0, g)]).unwrap();
//! let at_mean = mix.log_likelihood(&[0.0, 0.0]);
//! let far = mix.log_likelihood(&[5.0, 5.0]);
//! assert!(at_mean.raw() > far.raw());
//!
//! let cfg = AcousticModelConfig::paper_default();
//! assert_eq!(cfg.num_senones, 6000);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod gmm;
pub mod hmm;
pub mod model;
pub mod quantize;
pub mod senone;
pub mod storage;
pub mod trainer;
pub mod triphone;

pub use gmm::{DiagGaussian, GaussianMixture};
pub use hmm::{HmmTopology, TransitionMatrix};
pub use model::{AcousticModel, AcousticModelConfig};
pub use quantize::quantize_model;
pub use senone::{Senone, SenoneId, SenonePool};
pub use storage::{FlashImage, StorageLayout};
pub use trainer::{GmmTrainer, TrainerConfig};
pub use triphone::{PhoneId, Triphone, TriphoneId, TriphoneInventory};

/// Errors produced by acoustic-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum AcousticError {
    /// A Gaussian was constructed with inconsistent or empty dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension that was supplied.
        got: usize,
    },
    /// A variance or mixture weight was non-positive or otherwise invalid.
    InvalidParameter(String),
    /// A senone, triphone or phone identifier was out of range.
    UnknownId(String),
    /// A flash image could not be decoded.
    CorruptImage(String),
}

impl core::fmt::Display for AcousticError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AcousticError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            AcousticError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AcousticError::UnknownId(msg) => write!(f, "unknown identifier: {msg}"),
            AcousticError::CorruptImage(msg) => write!(f, "corrupt flash image: {msg}"),
        }
    }
}

impl std::error::Error for AcousticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(AcousticError::DimensionMismatch {
            expected: 39,
            got: 13
        }
        .to_string()
        .contains("39"));
        assert!(AcousticError::InvalidParameter("bad".into())
            .to_string()
            .contains("bad"));
        assert!(AcousticError::UnknownId("senone 9".into())
            .to_string()
            .contains("senone"));
        assert!(AcousticError::CorruptImage("magic".into())
            .to_string()
            .contains("magic"));
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AcousticModel>();
        assert_send_sync::<SenonePool>();
        assert_send_sync::<TriphoneInventory>();
        assert_send_sync::<AcousticError>();
    }
}
