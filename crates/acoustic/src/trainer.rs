//! A small k-means + EM trainer for diagonal Gaussian mixtures.
//!
//! The paper uses acoustic models trained by CMU Sphinx on WSJ data.  Since
//! those models and recordings are not available here, the synthetic corpus
//! generator (`asr-corpus`) creates well-separated senone distributions
//! directly — but to keep the substrate honest this trainer can also re-fit
//! mixtures from sampled feature data (used in the corpus crate's round-trip
//! tests and in the `train_from_samples` example).

use crate::gmm::{DiagGaussian, GaussianMixture, VARIANCE_FLOOR};
use crate::AcousticError;

/// Configuration of the GMM trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of mixture components to fit.
    pub num_components: usize,
    /// Number of k-means iterations used for initialisation.
    pub kmeans_iterations: usize,
    /// Number of EM iterations after k-means.
    pub em_iterations: usize,
    /// Variance floor applied after every M step.
    pub variance_floor: f32,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            num_components: 8,
            kmeans_iterations: 10,
            em_iterations: 5,
            variance_floor: VARIANCE_FLOOR,
        }
    }
}

/// Fits diagonal Gaussian mixtures to feature data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmTrainer {
    config: TrainerConfig,
}

impl GmmTrainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        GmmTrainer { config }
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Fits a mixture to the given data points (each of the same dimension).
    ///
    /// Initialisation is deterministic: centroids start on evenly spaced data
    /// points, so results are reproducible without a random source.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] if there are no data
    /// points, the points disagree on dimension, or fewer points than
    /// components were supplied.
    pub fn fit(&self, data: &[Vec<f32>]) -> Result<GaussianMixture, AcousticError> {
        if data.is_empty() {
            return Err(AcousticError::InvalidParameter(
                "cannot train on empty data".into(),
            ));
        }
        let dim = data[0].len();
        if dim == 0 || data.iter().any(|x| x.len() != dim) {
            return Err(AcousticError::InvalidParameter(
                "training vectors must share a positive dimension".into(),
            ));
        }
        let k = self.config.num_components.max(1);
        if data.len() < k {
            return Err(AcousticError::InvalidParameter(format!(
                "need at least {k} points to fit {k} components, got {}",
                data.len()
            )));
        }

        // --- k-means initialisation (deterministic spread seeding) ---
        let mut centroids: Vec<Vec<f32>> = (0..k)
            .map(|i| data[i * (data.len() - 1) / k.max(1)].clone())
            .collect();
        let mut assignment = vec![0usize; data.len()];
        for _ in 0..self.config.kmeans_iterations {
            // Assign.
            for (n, x) in data.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d: f32 = x.iter().zip(centroid).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assignment[n] = best;
            }
            // Update.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&Vec<f32>> = data
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == c)
                    .map(|(x, _)| x)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                for d in 0..dim {
                    centroid[d] = members.iter().map(|x| x[d]).sum::<f32>() / members.len() as f32;
                }
            }
        }

        // --- initial mixture from the k-means clusters ---
        let mut weights = vec![0.0f64; k];
        let mut means = centroids;
        let mut vars = vec![vec![1.0f32; dim]; k];
        for c in 0..k {
            let members: Vec<&Vec<f32>> = data
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(x, _)| x)
                .collect();
            weights[c] = (members.len() as f64 / data.len() as f64).max(1.0e-6);
            if members.len() > 1 {
                for d in 0..dim {
                    let var = members
                        .iter()
                        .map(|x| (x[d] - means[c][d]).powi(2))
                        .sum::<f32>()
                        / members.len() as f32;
                    vars[c][d] = var.max(self.config.variance_floor);
                }
            }
        }

        // --- EM refinement ---
        for _ in 0..self.config.em_iterations {
            let mixture = Self::assemble(&weights, &means, &vars)?;
            // E step: responsibilities.
            let mut resp = vec![vec![0.0f64; k]; data.len()];
            for (n, x) in data.iter().enumerate() {
                let mut comp_ll = vec![0.0f64; k];
                let mut max_ll = f64::NEG_INFINITY;
                for c in 0..k {
                    let ll =
                        (weights[c]).ln() + mixture.components()[c].log_density(x).raw() as f64;
                    comp_ll[c] = ll;
                    if ll > max_ll {
                        max_ll = ll;
                    }
                }
                let denom: f64 = comp_ll.iter().map(|&l| (l - max_ll).exp()).sum();
                for c in 0..k {
                    resp[n][c] = (comp_ll[c] - max_ll).exp() / denom;
                }
            }
            // M step.
            for c in 0..k {
                let total: f64 = resp.iter().map(|r| r[c]).sum();
                if total < 1.0e-8 {
                    continue;
                }
                weights[c] = total / data.len() as f64;
                for d in 0..dim {
                    let mean = data
                        .iter()
                        .zip(&resp)
                        .map(|(x, r)| r[c] * x[d] as f64)
                        .sum::<f64>()
                        / total;
                    means[c][d] = mean as f32;
                }
                for d in 0..dim {
                    let var = data
                        .iter()
                        .zip(&resp)
                        .map(|(x, r)| r[c] * (x[d] as f64 - means[c][d] as f64).powi(2))
                        .sum::<f64>()
                        / total;
                    vars[c][d] = (var as f32).max(self.config.variance_floor);
                }
            }
        }
        Self::assemble(&weights, &means, &vars)
    }

    fn assemble(
        weights: &[f64],
        means: &[Vec<f32>],
        vars: &[Vec<f32>],
    ) -> Result<GaussianMixture, AcousticError> {
        let comps: Result<Vec<(f32, DiagGaussian)>, AcousticError> = weights
            .iter()
            .zip(means.iter().zip(vars))
            .map(|(&w, (m, v))| {
                DiagGaussian::new(m.clone(), v.clone()).map(|g| (w.max(1.0e-6) as f32, g))
            })
            .collect();
        GaussianMixture::new(comps?)
    }

    /// Average per-frame log likelihood of `data` under `mixture` — the
    /// quantity EM is meant to increase; exposed for tests and examples.
    pub fn mean_log_likelihood(mixture: &GaussianMixture, data: &[Vec<f32>]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|x| mixture.log_likelihood(x).raw() as f64)
            .sum::<f64>()
            / data.len() as f64
    }
}

impl Default for GmmTrainer {
    fn default() -> Self {
        GmmTrainer::new(TrainerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random generator for test data (LCG) so the
    /// trainer tests need no external crates.
    fn lcg(seed: &mut u64) -> f32 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f32 / (1u64 << 30) as f32) - 1.0
    }

    fn two_cluster_data(n: usize) -> Vec<Vec<f32>> {
        let mut seed = 42u64;
        (0..n)
            .map(|i| {
                let centre = if i % 2 == 0 { -5.0 } else { 5.0 };
                vec![
                    centre + lcg(&mut seed) * 0.5,
                    -centre + lcg(&mut seed) * 0.5,
                ]
            })
            .collect()
    }

    #[test]
    fn rejects_bad_input() {
        let t = GmmTrainer::default();
        assert!(t.fit(&[]).is_err());
        assert!(t.fit(&[vec![]]).is_err());
        assert!(t.fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        // Fewer points than components.
        let t2 = GmmTrainer::new(TrainerConfig {
            num_components: 8,
            ..TrainerConfig::default()
        });
        assert!(t2.fit(&vec![vec![1.0, 2.0]; 3]).is_err());
        assert_eq!(t.config().num_components, 8);
    }

    #[test]
    fn recovers_two_well_separated_clusters() {
        let data = two_cluster_data(400);
        let trainer = GmmTrainer::new(TrainerConfig {
            num_components: 2,
            kmeans_iterations: 10,
            em_iterations: 5,
            variance_floor: 1e-4,
        });
        let mix = trainer.fit(&data).unwrap();
        assert_eq!(mix.num_components(), 2);
        // The two component means should land near (-5, 5) and (5, -5).
        let mut m0 = mix.components()[0].mean().to_vec();
        let mut m1 = mix.components()[1].mean().to_vec();
        if m0[0] > m1[0] {
            std::mem::swap(&mut m0, &mut m1);
        }
        assert!((m0[0] + 5.0).abs() < 0.5, "{m0:?}");
        assert!((m1[0] - 5.0).abs() < 0.5, "{m1:?}");
        // Weights should be roughly balanced.
        assert!((mix.weights()[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn em_does_not_decrease_likelihood() {
        let data = two_cluster_data(200);
        let no_em = GmmTrainer::new(TrainerConfig {
            num_components: 2,
            kmeans_iterations: 8,
            em_iterations: 0,
            variance_floor: 1e-4,
        })
        .fit(&data)
        .unwrap();
        let with_em = GmmTrainer::new(TrainerConfig {
            num_components: 2,
            kmeans_iterations: 8,
            em_iterations: 6,
            variance_floor: 1e-4,
        })
        .fit(&data)
        .unwrap();
        let ll_no = GmmTrainer::mean_log_likelihood(&no_em, &data);
        let ll_em = GmmTrainer::mean_log_likelihood(&with_em, &data);
        assert!(
            ll_em >= ll_no - 1e-6,
            "EM decreased likelihood: {ll_no} -> {ll_em}"
        );
    }

    #[test]
    fn single_component_fits_mean_and_variance() {
        let mut seed = 7u64;
        let data: Vec<Vec<f32>> = (0..500)
            .map(|_| vec![3.0 + lcg(&mut seed), -1.0 + 0.5 * lcg(&mut seed)])
            .collect();
        let mix = GmmTrainer::new(TrainerConfig {
            num_components: 1,
            kmeans_iterations: 1,
            em_iterations: 3,
            variance_floor: 1e-4,
        })
        .fit(&data)
        .unwrap();
        let mean = mix.components()[0].mean();
        assert!((mean[0] - 3.0).abs() < 0.1);
        assert!((mean[1] + 1.0).abs() < 0.1);
        assert!(mix.components()[0].variance()[0] > 0.0);
        assert_eq!(GmmTrainer::mean_log_likelihood(&mix, &[]), 0.0);
    }
}
