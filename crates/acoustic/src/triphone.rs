//! Phones, triphones and the triphone → senone mapping.
//!
//! "Each of the phones along with its neighboring phones (left and right) are
//! called triphones. For each phone and triphone, there is a corresponding
//! statistical model called hidden Markov model." (paper, Section II)

use crate::hmm::HmmTopology;
use crate::senone::SenoneId;
use crate::AcousticError;
use std::collections::HashMap;

/// Identifier of a base phone (one of the ~51 phones of English).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhoneId(pub u16);

impl PhoneId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for PhoneId {
    fn from(v: u16) -> Self {
        PhoneId(v)
    }
}

impl core::fmt::Display for PhoneId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "phone#{}", self.0)
    }
}

/// Identifier of a triphone inside a [`TriphoneInventory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriphoneId(pub u32);

impl TriphoneId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for TriphoneId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "triphone#{}", self.0)
    }
}

/// A context-dependent phone: base phone with left and right context.
///
/// `None` context means "any" (used for word-boundary / context-independent
/// fallback models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triphone {
    /// The central (base) phone.
    pub base: PhoneId,
    /// Left-context phone, if modelled.
    pub left: Option<PhoneId>,
    /// Right-context phone, if modelled.
    pub right: Option<PhoneId>,
}

impl Triphone {
    /// A context-independent phone model.
    pub fn context_independent(base: PhoneId) -> Self {
        Triphone {
            base,
            left: None,
            right: None,
        }
    }

    /// A fully context-dependent triphone.
    pub fn new(base: PhoneId, left: PhoneId, right: PhoneId) -> Self {
        Triphone {
            base,
            left: Some(left),
            right: Some(right),
        }
    }

    /// Returns `true` if this model has no context (a monophone).
    pub fn is_context_independent(&self) -> bool {
        self.left.is_none() && self.right.is_none()
    }
}

impl core::fmt::Display for Triphone {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match (self.left, self.right) {
            (Some(l), Some(r)) => write!(f, "{}-{}+{}", l.0, self.base.0, r.0),
            _ => write!(f, "{}", self.base.0),
        }
    }
}

/// The inventory of all triphones in an acoustic model: each triphone maps to
/// a sequence of senones (one per emitting HMM state).
///
/// Lookup falls back to the context-independent model of the base phone when
/// an unseen context is requested, the standard back-off used by HMM systems.
#[derive(Debug, Clone)]
pub struct TriphoneInventory {
    topology: HmmTopology,
    triphones: Vec<(Triphone, Vec<SenoneId>)>,
    index: HashMap<Triphone, TriphoneId>,
    ci_index: HashMap<PhoneId, TriphoneId>,
}

impl TriphoneInventory {
    /// Creates an empty inventory with the given HMM topology.
    pub fn new(topology: HmmTopology) -> Self {
        TriphoneInventory {
            topology,
            triphones: Vec::new(),
            index: HashMap::new(),
            ci_index: HashMap::new(),
        }
    }

    /// The HMM topology shared by every triphone.
    pub fn topology(&self) -> HmmTopology {
        self.topology
    }

    /// Number of registered triphones (including context-independent models).
    pub fn len(&self) -> usize {
        self.triphones.len()
    }

    /// Returns `true` if no triphone has been registered.
    pub fn is_empty(&self) -> bool {
        self.triphones.is_empty()
    }

    /// Registers a triphone with its per-state senones.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::InvalidParameter`] if the senone sequence does
    /// not have exactly one senone per emitting state, or the triphone is
    /// already registered.
    pub fn add(
        &mut self,
        triphone: Triphone,
        senones: Vec<SenoneId>,
    ) -> Result<TriphoneId, AcousticError> {
        if senones.len() != self.topology.num_states() {
            return Err(AcousticError::InvalidParameter(format!(
                "triphone needs {} senones (one per state), got {}",
                self.topology.num_states(),
                senones.len()
            )));
        }
        if self.index.contains_key(&triphone) {
            return Err(AcousticError::InvalidParameter(format!(
                "triphone {triphone} already registered"
            )));
        }
        let id = TriphoneId(self.triphones.len() as u32);
        if triphone.is_context_independent() {
            self.ci_index.insert(triphone.base, id);
        }
        self.index.insert(triphone, id);
        self.triphones.push((triphone, senones));
        Ok(id)
    }

    /// Looks up a triphone id by exact context.
    pub fn id_of(&self, triphone: &Triphone) -> Option<TriphoneId> {
        self.index.get(triphone).copied()
    }

    /// Looks up a triphone, falling back to the context-independent model of
    /// the base phone when the exact context is not modelled.
    pub fn resolve(&self, triphone: &Triphone) -> Option<TriphoneId> {
        self.id_of(triphone)
            .or_else(|| self.ci_index.get(&triphone.base).copied())
    }

    /// The triphone definition and its senone sequence.
    pub fn get(&self, id: TriphoneId) -> Option<(&Triphone, &[SenoneId])> {
        self.triphones
            .get(id.index())
            .map(|(t, s)| (t, s.as_slice()))
    }

    /// The senone sequence of a triphone.
    ///
    /// # Errors
    ///
    /// Returns [`AcousticError::UnknownId`] for an unknown id.
    pub fn senones(&self, id: TriphoneId) -> Result<&[SenoneId], AcousticError> {
        self.get(id)
            .map(|(_, s)| s)
            .ok_or_else(|| AcousticError::UnknownId(format!("{id}")))
    }

    /// Iterates over `(id, triphone, senones)`.
    pub fn iter(&self) -> impl Iterator<Item = (TriphoneId, &Triphone, &[SenoneId])> {
        self.triphones
            .iter()
            .enumerate()
            .map(|(i, (t, s))| (TriphoneId(i as u32), t, s.as_slice()))
    }

    /// The set of distinct senones used by a list of triphones — this is the
    /// "phones for evaluation" feedback the word-decode stage sends to the
    /// phone-decode stage.
    pub fn active_senones(&self, triphones: &[TriphoneId]) -> Vec<SenoneId> {
        let mut set: Vec<SenoneId> = triphones
            .iter()
            .filter_map(|&id| self.get(id))
            .flat_map(|(_, s)| s.iter().copied())
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn senones(ids: &[u32]) -> Vec<SenoneId> {
        ids.iter().map(|&i| SenoneId(i)).collect()
    }

    #[test]
    fn phone_and_triphone_display() {
        assert_eq!(format!("{}", PhoneId(3)), "phone#3");
        assert_eq!(format!("{}", TriphoneId(9)), "triphone#9");
        let t = Triphone::new(PhoneId(1), PhoneId(0), PhoneId(2));
        assert_eq!(format!("{t}"), "0-1+2");
        let ci = Triphone::context_independent(PhoneId(5));
        assert_eq!(format!("{ci}"), "5");
        assert!(ci.is_context_independent());
        assert!(!t.is_context_independent());
        assert_eq!(PhoneId::from(4u16).index(), 4);
        assert_eq!(TriphoneId(7).index(), 7);
    }

    #[test]
    fn add_and_lookup() {
        let mut inv = TriphoneInventory::new(HmmTopology::Three);
        assert!(inv.is_empty());
        let ci = Triphone::context_independent(PhoneId(1));
        let tri = Triphone::new(PhoneId(1), PhoneId(0), PhoneId(2));
        let id_ci = inv.add(ci, senones(&[0, 1, 2])).unwrap();
        let id_tri = inv.add(tri, senones(&[3, 4, 5])).unwrap();
        assert_eq!(inv.len(), 2);
        assert_eq!(inv.id_of(&tri), Some(id_tri));
        assert_eq!(inv.id_of(&ci), Some(id_ci));
        assert_eq!(inv.senones(id_tri).unwrap(), senones(&[3, 4, 5]).as_slice());
        assert_eq!(inv.get(id_ci).unwrap().0, &ci);
        assert_eq!(inv.iter().count(), 2);
        assert_eq!(inv.topology(), HmmTopology::Three);
    }

    #[test]
    fn resolve_falls_back_to_ci() {
        let mut inv = TriphoneInventory::new(HmmTopology::Three);
        let ci = Triphone::context_independent(PhoneId(1));
        let id_ci = inv.add(ci, senones(&[0, 1, 2])).unwrap();
        // Unseen context falls back to the CI model.
        let unseen = Triphone::new(PhoneId(1), PhoneId(7), PhoneId(9));
        assert_eq!(inv.resolve(&unseen), Some(id_ci));
        // Completely unknown base phone resolves to nothing.
        let unknown = Triphone::new(PhoneId(40), PhoneId(7), PhoneId(9));
        assert_eq!(inv.resolve(&unknown), None);
    }

    #[test]
    fn add_validation() {
        let mut inv = TriphoneInventory::new(HmmTopology::Three);
        let t = Triphone::context_independent(PhoneId(0));
        // Wrong senone count.
        assert!(inv.add(t, senones(&[1, 2])).is_err());
        inv.add(t, senones(&[1, 2, 3])).unwrap();
        // Duplicate registration.
        assert!(inv.add(t, senones(&[1, 2, 3])).is_err());
        // Unknown id errors.
        assert!(inv.senones(TriphoneId(99)).is_err());
    }

    #[test]
    fn five_state_topology_needs_five_senones() {
        let mut inv = TriphoneInventory::new(HmmTopology::Five);
        let t = Triphone::context_independent(PhoneId(0));
        assert!(inv.add(t, senones(&[1, 2, 3])).is_err());
        assert!(inv.add(t, senones(&[1, 2, 3, 4, 5])).is_ok());
    }

    #[test]
    fn active_senones_dedups() {
        let mut inv = TriphoneInventory::new(HmmTopology::Three);
        let a = inv
            .add(
                Triphone::context_independent(PhoneId(0)),
                senones(&[0, 1, 2]),
            )
            .unwrap();
        let b = inv
            .add(
                Triphone::context_independent(PhoneId(1)),
                senones(&[2, 3, 4]),
            )
            .unwrap();
        let active = inv.active_senones(&[a, b, a]);
        assert_eq!(active, senones(&[0, 1, 2, 3, 4]));
        assert!(inv.active_senones(&[]).is_empty());
    }
}
