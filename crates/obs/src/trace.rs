//! Request tracing: trace ids minted at admission, typed span events emitted
//! at every seam of the serve→stream→shard pipeline, recorded as `span`
//! facts through an [`ObsSink`].
//!
//! A **trace** is one admitted unit of work — a whole-utterance decode
//! request, a stream session, or a rejected admission attempt.  Its span
//! events form a flat tree ordered by a per-telemetry sequence number:
//! [`SpanEvent::Admitted`] first, then interior events, then exactly one
//! terminal ([`SpanEvent::Finished`] or [`SpanEvent::Rejected`]).  The
//! workspace's `tests/obs_trace.rs` property-checks this balance across all
//! backends and worker counts.
//!
//! [`Telemetry`] is the handle instrumented code holds.  It is off by
//! default ([`Telemetry::disabled`]) and then every call is a branch on a
//! `None` — the hot path pays near zero, which the `obs_overhead` bench
//! gate enforces.  Layers that cannot be handed a handle explicitly (the
//! shard pool, deep under the decode call) read the process-global
//! telemetry ([`set_global`]/[`global`]) and the thread-ambient trace id
//! ([`with_trace`]/[`current_trace`]) that the serve worker pins around a
//! decode.

use crate::sink::{Fact, ObsSink};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Identifier of one trace (one admitted request / session).  Ids are minted
/// by [`Telemetry::begin_trace`], start at 1, and never repeat within a
/// telemetry instance; [`TraceId::NONE`] (0) marks untraced work and
/// process-scope events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(u64);

impl TraceId {
    /// The null trace: untraced work, or an event scoped to a worker or the
    /// process rather than a request.
    pub const NONE: TraceId = TraceId(0);

    /// Rebuilds a trace id from its raw value (fact-file readers).
    pub fn from_raw(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw id value (0 for [`TraceId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the null trace.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// How a finished trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The request decoded successfully.
    Completed,
    /// The decode failed; the error went to the caller.
    Failed,
    /// The client abandoned the work (dropped handle / barge-in cancel).
    Cancelled,
}

impl Outcome {
    /// Stable lowercase name used in fact records.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Failed => "failed",
            Outcome::Cancelled => "cancelled",
        }
    }
}

/// What kind of work a trace covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A whole-utterance decode request.
    Decode,
    /// An incremental stream session.
    Stream,
}

impl RequestKind {
    /// Stable lowercase name used in fact records.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Decode => "decode",
            RequestKind::Stream => "stream",
        }
    }
}

/// One typed span event.  Every variant maps to one `span` fact whose
/// `event` field is [`SpanEvent::name`]; variant payloads become additional
/// fact fields.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanEvent {
    /// The request passed admission routing: a trace exists.  Always the
    /// first event of a trace.
    Admitted {
        /// Decode request or stream session.
        kind: RequestKind,
        /// The model name it was admitted under, when routed by a registry.
        model: Option<String>,
        /// The tenant it was charged to, when tenant quotas apply.
        tenant: Option<String>,
    },
    /// The command entered the bounded queue.
    Enqueued {
        /// Queue depth after the insert (this command included).
        depth: usize,
    },
    /// A micro-batch was flushed to a decoder.  Worker-scope when emitted
    /// with [`TraceId::NONE`] (the batch as a whole), per-trace otherwise.
    BatchFormed {
        /// Which worker flushed it.
        worker: usize,
        /// Whole-utterance decodes coalesced into the flush.
        batch: usize,
    },
    /// A worker began decoding this request.
    DecodeStarted {
        /// Which worker picked it up.
        worker: usize,
    },
    /// The sharded scorer pool dispatched work for the current trace —
    /// emitted when a pool spins up its persistent workers.
    ShardDispatch {
        /// Number of shards in the scorer.
        shards: usize,
        /// Worker threads the pool just spawned.
        threads: usize,
    },
    /// The stream endpointer opened an utterance (speech detected).
    VadSpeechStart {
        /// Stream position (feature frames consumed so far).
        frame: usize,
    },
    /// The endpointer closed an utterance naturally (trailing silence).
    VadSpeechEnd {
        /// Feature frames the closed utterance decoded.
        frames: usize,
    },
    /// The session forced an endpoint at the utterance length cap.
    ForcedEndpoint {
        /// Feature frames the force-closed utterance decoded.
        frames: usize,
    },
    /// A partial hypothesis was published to the client.
    PartialEmitted {
        /// Words in the partial.
        words: usize,
        /// Wall-clock cost of the chunk that produced it, in microseconds.
        latency_us: u64,
    },
    /// The client cancelled mid-stream (barge-in); the session continues.
    BargeIn {
        /// Feature frames of the utterance that was discarded.
        frames: usize,
    },
    /// Terminal: the trace's work finished (successfully or not).
    Finished {
        /// How it ended.
        outcome: Outcome,
        /// Feature frames processed over the trace's lifetime.
        frames: usize,
    },
    /// Terminal: admission refused the request (queue/model/tenant quota).
    Rejected {
        /// The quota scope that rejected it (`"queue"`, `"model"`,
        /// `"tenant"`).
        scope: String,
    },
}

impl SpanEvent {
    /// Stable lowercase event name used in fact records.
    pub fn name(&self) -> &'static str {
        match self {
            SpanEvent::Admitted { .. } => "admitted",
            SpanEvent::Enqueued { .. } => "enqueued",
            SpanEvent::BatchFormed { .. } => "batch_formed",
            SpanEvent::DecodeStarted { .. } => "decode_started",
            SpanEvent::ShardDispatch { .. } => "shard_dispatch",
            SpanEvent::VadSpeechStart { .. } => "vad_speech_start",
            SpanEvent::VadSpeechEnd { .. } => "vad_speech_end",
            SpanEvent::ForcedEndpoint { .. } => "forced_endpoint",
            SpanEvent::PartialEmitted { .. } => "partial_emitted",
            SpanEvent::BargeIn { .. } => "barge_in",
            SpanEvent::Finished { .. } => "finished",
            SpanEvent::Rejected { .. } => "rejected",
        }
    }

    /// Whether this event closes its trace (each trace must end with
    /// exactly one terminal event).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SpanEvent::Finished { .. } | SpanEvent::Rejected { .. }
        )
    }

    fn append_fields(&self, fact: Fact) -> Fact {
        match self {
            SpanEvent::Admitted {
                kind,
                model,
                tenant,
            } => {
                let mut fact = fact.with("req", kind.name());
                if let Some(model) = model {
                    fact = fact.with("model", model.as_str());
                }
                if let Some(tenant) = tenant {
                    fact = fact.with("tenant", tenant.as_str());
                }
                fact
            }
            SpanEvent::Enqueued { depth } => fact.with("depth", *depth),
            SpanEvent::BatchFormed { worker, batch } => {
                fact.with("worker", *worker).with("batch", *batch)
            }
            SpanEvent::DecodeStarted { worker } => fact.with("worker", *worker),
            SpanEvent::ShardDispatch { shards, threads } => {
                fact.with("shards", *shards).with("threads", *threads)
            }
            SpanEvent::VadSpeechStart { frame } => fact.with("frame", *frame),
            SpanEvent::VadSpeechEnd { frames } | SpanEvent::ForcedEndpoint { frames } => {
                fact.with("frames", *frames)
            }
            SpanEvent::PartialEmitted { words, latency_us } => {
                fact.with("words", *words).with("latency_us", *latency_us)
            }
            SpanEvent::BargeIn { frames } => fact.with("frames", *frames),
            SpanEvent::Finished { outcome, frames } => {
                fact.with("outcome", outcome.name()).with("frames", *frames)
            }
            SpanEvent::Rejected { scope } => fact.with("scope", scope.as_str()),
        }
    }
}

#[derive(Debug)]
struct TelemetryInner {
    sink: Arc<dyn ObsSink>,
    next_trace: AtomicU64,
    seq: AtomicU64,
}

/// The tracing handle instrumented code holds.  Cheap to clone (an
/// `Option<Arc>`); [`Telemetry::disabled`] is the default everywhere, and
/// then [`Telemetry::emit`] is a single branch — the off state costs
/// near zero on the hot path (bench-gated by `obs_overhead`).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op handle: mints no trace ids, records nothing.
    pub const fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled handle recording every span fact into `sink`.
    pub fn to_sink(sink: Arc<dyn ObsSink>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                sink,
                next_trace: AtomicU64::new(1),
                seq: AtomicU64::new(1),
            })),
        }
    }

    /// Shorthand: an enabled handle over a fresh [`crate::MemorySink`],
    /// returning both (tests).
    pub fn to_memory() -> (Telemetry, Arc<crate::MemorySink>) {
        let sink = Arc::new(crate::MemorySink::new());
        (Telemetry::to_sink(sink.clone() as Arc<dyn ObsSink>), sink)
    }

    /// Whether events will be recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Mints a fresh trace id, or [`TraceId::NONE`] when disabled.
    pub fn begin_trace(&self) -> TraceId {
        match &self.inner {
            Some(inner) => TraceId(inner.next_trace.fetch_add(1, Ordering::Relaxed)),
            None => TraceId::NONE,
        }
    }

    /// Records `event` under `trace` as one `span` fact.  No-op when
    /// disabled.  `trace` may be [`TraceId::NONE`] for worker- or
    /// process-scope events (recorded with `trace` 0).
    pub fn emit(&self, trace: TraceId, event: &SpanEvent) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let fact = Fact::new("span")
            .with("trace", trace.raw())
            .with("seq", seq)
            .with("event", event.name());
        inner.sink.record(&event.append_fields(fact));
    }

    /// Flushes the underlying sink (no-op when disabled).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    /// The sink behind this handle, when enabled (snapshot export paths).
    pub fn sink(&self) -> Option<Arc<dyn ObsSink>> {
        self.inner.as_ref().map(|inner| inner.sink.clone())
    }
}

/// Fast "is the global telemetry enabled?" flag, readable without the lock.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Telemetry> = RwLock::new(Telemetry::disabled());

/// Installs `telemetry` as the process-global handle read by layers that
/// cannot be handed one explicitly (the shard pool under a decode call).
/// Installing a disabled handle turns global emission back off.
pub fn set_global(telemetry: Telemetry) {
    GLOBAL_ENABLED.store(telemetry.is_enabled(), Ordering::Release);
    *GLOBAL.write().expect("global telemetry poisoned") = telemetry;
}

/// The current process-global telemetry (disabled unless [`set_global`] was
/// called).  A clone: cheap, and stable even if another thread swaps the
/// global afterwards.
pub fn global() -> Telemetry {
    if !global_enabled() {
        return Telemetry::disabled();
    }
    GLOBAL.read().expect("global telemetry poisoned").clone()
}

/// Whether the process-global telemetry is enabled — one relaxed atomic
/// load, safe to call on any hot path.
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Acquire)
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` with `trace` as this thread's ambient trace id, restoring the
/// previous one after (nesting-safe).  The serve worker wraps each decode in
/// this so the shard pool, layers below, can attribute its
/// [`SpanEvent::ShardDispatch`] to the right trace via [`current_trace`].
pub fn with_trace<R>(trace: TraceId, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_TRACE.with(|cell| cell.set(self.0));
        }
    }
    let previous = CURRENT_TRACE.with(|cell| cell.replace(trace.raw()));
    let _restore = Restore(previous);
    f()
}

/// This thread's ambient trace id ([`TraceId::NONE`] outside
/// [`with_trace`]).
pub fn current_trace() -> TraceId {
    TraceId(CURRENT_TRACE.with(Cell::get))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.begin_trace(), TraceId::NONE);
        t.emit(TraceId::NONE, &SpanEvent::DecodeStarted { worker: 0 }); // must not panic
        t.flush();
        assert!(t.sink().is_none());
    }

    #[test]
    fn emit_records_span_facts_with_monotone_seq() {
        let (t, sink) = Telemetry::to_memory();
        let a = t.begin_trace();
        let b = t.begin_trace();
        assert_ne!(a, b);
        assert!(!a.is_none());
        t.emit(
            a,
            &SpanEvent::Admitted {
                kind: RequestKind::Decode,
                model: Some("default".into()),
                tenant: None,
            },
        );
        t.emit(a, &SpanEvent::Enqueued { depth: 1 });
        t.emit(
            b,
            &SpanEvent::Rejected {
                scope: "queue".into(),
            },
        );
        let facts = sink.facts();
        assert_eq!(facts.len(), 3);
        let seqs: Vec<u64> = facts
            .iter()
            .map(|f| f.field("seq").and_then(|v| v.as_u64()).unwrap())
            .collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs {seqs:?}");
        assert_eq!(
            facts[0].field("event").and_then(|v| v.as_str()),
            Some("admitted")
        );
        assert_eq!(
            facts[0].field("trace").and_then(|v| v.as_u64()),
            Some(a.raw())
        );
        assert_eq!(
            facts[2].field("scope").and_then(|v| v.as_str()),
            Some("queue")
        );
        // Round-trip through the JSONL encoding.
        let line = facts[0].to_json();
        assert_eq!(Fact::parse_json(&line).unwrap(), facts[0]);
    }

    #[test]
    fn terminal_classification() {
        assert!(SpanEvent::Finished {
            outcome: Outcome::Completed,
            frames: 1
        }
        .is_terminal());
        assert!(SpanEvent::Rejected {
            scope: "model".into()
        }
        .is_terminal());
        assert!(!SpanEvent::Enqueued { depth: 0 }.is_terminal());
        assert!(!SpanEvent::BargeIn { frames: 3 }.is_terminal());
    }

    /// The only test in this crate touching the process-global handle — no
    /// parallel-test interference.
    #[test]
    fn global_telemetry_installs_and_uninstalls() {
        assert!(!global_enabled());
        let (t, sink) = Telemetry::to_memory();
        set_global(t);
        assert!(global_enabled());
        global().emit(
            TraceId::from_raw(3),
            &SpanEvent::ShardDispatch {
                shards: 2,
                threads: 1,
            },
        );
        assert_eq!(sink.len(), 1);
        set_global(Telemetry::disabled());
        assert!(!global_enabled());
        assert!(!global().is_enabled());
    }

    #[test]
    fn ambient_trace_nests_and_restores() {
        assert_eq!(current_trace(), TraceId::NONE);
        let outer = TraceId::from_raw(7);
        let inner = TraceId::from_raw(9);
        with_trace(outer, || {
            assert_eq!(current_trace(), outer);
            with_trace(inner, || assert_eq!(current_trace(), inner));
            assert_eq!(current_trace(), outer);
        });
        assert_eq!(current_trace(), TraceId::NONE);
    }
}
