//! The unified metrics registry: named counters, gauges, and latency
//! histograms behind lock-cheap handles.
//!
//! Registration takes a lock once; the returned handle is an `Arc` around
//! plain atomics, so the hot path (`inc`, `record`) is a relaxed atomic op —
//! no name lookup, no lock, no allocation.  [`MetricsRegistry::snapshot`]
//! reads every metric at a point in time for printing or export as
//! [`Fact`]s.

use crate::hist::{percentile_of, LatencyHistogram, LATENCY_BUCKETS};
use crate::sink::Fact;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter handle (cheaply cloneable; clones
/// share the underlying value).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle, with a high-water-mark update for
/// "largest so far" metrics.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (which may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is above the current value
    /// (monotone high-water mark; concurrent raises keep the max).
    pub fn set_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency-histogram handle; see [`LatencyHistogram`] for bucket geometry.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<LatencyHistogram>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        self.0.record(elapsed);
    }

    /// Records one observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.0.record_micros(micros);
    }

    /// Accumulates bucket counts into `into` (cross-histogram aggregation).
    pub fn add_counts(&self, into: &mut [u64; LATENCY_BUCKETS]) {
        self.0.add_counts(into);
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.0.total()
    }

    /// The `p`-quantile upper bound; `None` while empty.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        self.0.percentile(p)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics.  Cloning shares the registry (handles and
/// snapshots see the same values); [`MetricsRegistry::global`] is the
/// process-wide instance that process-scoped counters (like the shard
/// pool's spawn count) register in.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or registers the gauge `name`; panics on kind mismatch like
    /// [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or registers the histogram `name`; panics on kind mismatch like
    /// [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// A point-in-time read of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let counts = h.0.counts();
                        MetricValue::Histogram {
                            total: counts.iter().sum(),
                            p50: percentile_of(&counts, 0.50),
                            p99: percentile_of(&counts, 0.99),
                        }
                    }
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram summary: observation count and p50/p99 bucket upper
    /// bounds (`None` while empty).
    Histogram {
        /// Total observations recorded.
        total: u64,
        /// Median upper bound.
        p50: Option<Duration>,
        /// 99th-percentile upper bound.
        p99: Option<Duration>,
    },
}

/// A point-in-time view of a registry, ordered by metric name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Looks one metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders every metric as a `metric` fact (one per registered name),
    /// ready for an [`crate::ObsSink`].
    pub fn to_facts(&self) -> Vec<Fact> {
        self.iter()
            .map(|(name, value)| {
                let fact = Fact::new("metric").with("name", name);
                match value {
                    MetricValue::Counter(v) => fact.with("type", "counter").with("value", *v),
                    MetricValue::Gauge(v) => fact.with("type", "gauge").with("value", *v),
                    MetricValue::Histogram { total, p50, p99 } => {
                        let micros =
                            |d: &Option<Duration>| d.map_or(0u64, |d| d.as_micros() as u64);
                        fact.with("type", "histogram")
                            .with("total", *total)
                            .with("p50_us", micros(p50))
                            .with("p99_us", micros(p99))
                    }
                }
            })
            .collect()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            match value {
                MetricValue::Counter(v) => writeln!(f, "{name} = {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "{name} = {v}")?,
                MetricValue::Histogram { total, p50, p99 } => {
                    writeln!(f, "{name} = {{n={total}, p50≤{p50:?}, p99≤{p99:?}}}")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_values_with_the_registry() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("requests");
        c.inc();
        c.add(4);
        // A second lookup of the same name sees the same underlying value.
        assert_eq!(registry.counter("requests").get(), 5);

        let g = registry.gauge("depth");
        g.set(3);
        g.add(-1);
        g.set_max(10);
        g.set_max(7); // below the high-water mark: no effect
        assert_eq!(registry.gauge("depth").get(), 10);

        let h = registry.histogram("wait");
        h.record(Duration::from_micros(100));
        assert_eq!(registry.histogram("wait").total(), 1);
    }

    #[test]
    fn snapshot_reads_everything_in_name_order() {
        let registry = MetricsRegistry::new();
        registry.counter("b.count").add(2);
        registry.gauge("a.gauge").set(-7);
        registry
            .histogram("c.wait")
            .record(Duration::from_micros(3));
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.gauge", "b.count", "c.wait"]);
        assert_eq!(snapshot.get("b.count"), Some(&MetricValue::Counter(2)));
        assert_eq!(snapshot.get("a.gauge"), Some(&MetricValue::Gauge(-7)));
        match snapshot.get("c.wait") {
            Some(MetricValue::Histogram { total: 1, p50, .. }) => {
                assert_eq!(*p50, Some(Duration::from_micros(4)));
            }
            other => panic!("bad histogram value: {other:?}"),
        }
        let facts = snapshot.to_facts();
        assert_eq!(facts.len(), 3);
        assert!(facts.iter().all(|f| f.kind == "metric"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }
}
