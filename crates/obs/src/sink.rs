//! Fact records and sinks: one self-describing JSONL record per event or
//! snapshot, written to memory (tests) or an append-only run directory
//! (experiments), modeled on append-only per-run fact logs.
//!
//! A [`Fact`] is a flat record — a `kind`, a monotone process timestamp, and
//! typed named fields — that encodes to exactly one JSON object per line.
//! The encoding is hand-rolled (no serde in this workspace) and covered by a
//! parse/print round-trip, so `bench_gate`-adjacent tools can read the same
//! files they were written from.

use std::fmt;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One typed field value of a [`Fact`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, ids, microseconds).
    U64(u64),
    /// A signed integer (gauges).
    I64(i64),
    /// A float (ratios, RTF).
    F64(f64),
    /// A string (names, outcomes).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl FieldValue {
    /// The value as `u64` when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One self-describing observability record: a record `kind`, the monotone
/// process timestamp it was produced at, and its typed fields.  Encodes to
/// one JSON object per line — `{"kind":…,"ts_us":…,<fields>}` — with field
/// order preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Record type: `"host"`, `"span"`, `"metric"`, `"utterance"`, ….
    pub kind: String,
    /// Microseconds since the process observability epoch (first telemetry
    /// use); monotone across all facts of one process.
    pub ts_us: u64,
    /// Named typed fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Fact {
    /// Starts a fact of `kind` stamped with the current monotone timestamp.
    pub fn new(kind: &str) -> Self {
        Fact {
            kind: kind.to_string(),
            ts_us: now_micros(),
            fields: Vec::new(),
        }
    }

    /// Builder: appends one named field.
    #[must_use]
    pub fn with(mut self, name: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((name.to_string(), value.into()));
        self
    }

    /// Looks a field up by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Encodes the fact as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"kind\":");
        push_json_string(&mut out, &self.kind);
        out.push_str(",\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        for (name, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, name);
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => {
                    // `{:?}` keeps a decimal point or exponent, so the value
                    // parses back as F64 rather than an integer.
                    if v.is_finite() {
                        out.push_str(&format!("{v:?}"));
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(v) => push_json_string(&mut out, v),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`Fact::to_json`] back into a fact.
    ///
    /// This is a reader for the *flat* schema this module writes (string,
    /// integer, float, and boolean values only — no nesting), not a general
    /// JSON parser; the `obs_validate` tool and tests use it to check emitted
    /// run directories.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed construct.
    pub fn parse_json(line: &str) -> Result<Fact, String> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut kind: Option<String> = None;
        let mut ts_us: Option<u64> = None;
        let mut fields = Vec::new();
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            if !fields.is_empty() || kind.is_some() || ts_us.is_some() {
                p.expect(b',')?;
                p.skip_ws();
            }
            let name = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            match (name.as_str(), &value) {
                ("kind", FieldValue::Str(s)) => kind = Some(s.clone()),
                ("kind", _) => return Err("\"kind\" must be a string".into()),
                ("ts_us", FieldValue::U64(v)) => ts_us = Some(*v),
                ("ts_us", _) => return Err("\"ts_us\" must be an unsigned integer".into()),
                _ => fields.push((name, value)),
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(Fact {
            kind: kind.ok_or("missing \"kind\" field")?,
            ts_us: ts_us.ok_or("missing \"ts_us\" field")?,
            fields,
        })
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal cursor over one flat JSON object line.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err("unknown escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<FieldValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(FieldValue::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(FieldValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(FieldValue::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                let mut float = false;
                while let Some(&b) = self.bytes.get(self.pos) {
                    match b {
                        b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                        b'.' | b'e' | b'E' => {
                            float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number")?;
                if float {
                    text.parse::<f64>()
                        .map(FieldValue::F64)
                        .map_err(|_| format!("invalid float {text:?}"))
                } else if let Ok(v) = text.parse::<u64>() {
                    Ok(FieldValue::U64(v))
                } else {
                    text.parse::<i64>()
                        .map(FieldValue::I64)
                        .map_err(|_| format!("invalid integer {text:?}"))
                }
            }
            _ => Err(format!("unexpected value at offset {}", self.pos)),
        }
    }
}

/// Microseconds since the process observability epoch — a shared [`Instant`]
/// pinned at first use, so every fact's `ts_us` is monotone within the
/// process and comparable across threads.
pub fn now_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now()
        .saturating_duration_since(epoch)
        .as_micros()
        .min(u64::MAX as u128) as u64
}

/// A host-metadata fact — the first record of every run directory, so a
/// fact file is self-describing about where it was recorded (matching the
/// `host/cpus` record `bench_gate` keys its ratio checks on).
pub fn host_fact() -> Fact {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Fact::new("host")
        .with(
            "cpus",
            std::thread::available_parallelism().map_or(0usize, |n| n.get()),
        )
        .with("os", std::env::consts::OS)
        .with("arch", std::env::consts::ARCH)
        .with("unix_s", unix_s)
}

/// Where facts go.  Implementations must tolerate concurrent `record` calls;
/// a sink failure must never panic the instrumented thread (writers count
/// drops instead).
pub trait ObsSink: Send + Sync + fmt::Debug {
    /// Records one fact.
    fn record(&self, fact: &Fact);

    /// Flushes buffered records to durable storage (no-op for memory sinks).
    fn flush(&self) {}
}

/// An in-memory sink for tests: records every fact, hands back a snapshot.
#[derive(Debug, Default)]
pub struct MemorySink {
    facts: Mutex<Vec<Fact>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every fact recorded so far, in record order.
    pub fn facts(&self) -> Vec<Fact> {
        self.facts.lock().expect("memory sink poisoned").clone()
    }

    /// Number of facts recorded so far.
    pub fn len(&self) -> usize {
        self.facts.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ObsSink for MemorySink {
    fn record(&self, fact: &Fact) {
        self.facts
            .lock()
            .expect("memory sink poisoned")
            .push(fact.clone());
    }
}

/// An append-only run-directory sink: creates `<dir>/facts.jsonl`, writes a
/// [`host_fact`] first, then one JSON line per recorded fact.  Lines are
/// buffered; [`ObsSink::flush`] (called by `Telemetry::flush`) makes them
/// durable.  I/O errors never panic the recording thread — failed writes are
/// counted in [`RunDirSink::dropped`].
#[derive(Debug)]
pub struct RunDirSink {
    dir: PathBuf,
    writer: Mutex<BufWriter<fs::File>>,
    dropped: AtomicU64,
}

impl RunDirSink {
    /// Creates (or reuses) the run directory and opens `facts.jsonl` for
    /// appending, stamping the host-metadata record.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory or opening the file.
    pub fn create(dir: impl AsRef<Path>) -> std::io::Result<RunDirSink> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("facts.jsonl"))?;
        let sink = RunDirSink {
            dir,
            writer: Mutex::new(BufWriter::new(file)),
            dropped: AtomicU64::new(0),
        };
        sink.record(&host_fact());
        Ok(sink)
    }

    /// The run directory this sink writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the fact file (`<dir>/facts.jsonl`).
    pub fn facts_path(&self) -> PathBuf {
        self.dir.join("facts.jsonl")
    }

    /// Number of facts lost to I/O errors (0 in healthy runs).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl ObsSink for RunDirSink {
    fn record(&self, fact: &Fact) {
        let mut writer = self.writer.lock().expect("run dir sink poisoned");
        let line = fact.to_json();
        if writeln!(writer, "{line}").is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("run dir sink poisoned");
        if writer.flush().is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for RunDirSink {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.get_mut() {
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_json_round_trips() {
        let fact = Fact::new("span")
            .with("trace", 7u64)
            .with("event", "finished")
            .with("ok", true)
            .with("delta", -3i64)
            .with("rtf", 0.25f64)
            .with("note", "quote \" slash \\ newline \n tab \t");
        let line = fact.to_json();
        let back = Fact::parse_json(&line).expect("parse");
        assert_eq!(back, fact);
        // And the re-encoding is stable.
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"kind\":\"x\"}",
            "{\"kind\":3,\"ts_us\":1}",
            "{\"kind\":\"x\",\"ts_us\":-1}",
            "{\"kind\":\"x\",\"ts_us\":1} trailing",
            "{\"kind\":\"x\",\"ts_us\":1,\"v\":}",
        ] {
            assert!(Fact::parse_json(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
        let f1 = Fact::new("a");
        let f2 = Fact::new("b");
        assert!(f2.ts_us >= f1.ts_us);
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&Fact::new("one"));
        sink.record(&Fact::new("two"));
        let facts = sink.facts();
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].kind, "one");
        assert_eq!(facts[1].kind, "two");
    }

    #[test]
    fn run_dir_sink_writes_host_record_first() {
        let dir = std::env::temp_dir().join(format!(
            "asr-obs-test-{}-{}",
            std::process::id(),
            now_micros()
        ));
        let sink = RunDirSink::create(&dir).expect("create");
        sink.record(&Fact::new("span").with("trace", 1u64));
        sink.flush();
        let text = fs::read_to_string(sink.facts_path()).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let host = Fact::parse_json(lines[0]).expect("host line");
        assert_eq!(host.kind, "host");
        assert!(host.field("cpus").and_then(FieldValue::as_u64).is_some());
        let span = Fact::parse_json(lines[1]).expect("span line");
        assert_eq!(span.kind, "span");
        assert_eq!(sink.dropped(), 0);
        drop(sink);
        fs::remove_dir_all(&dir).ok();
    }
}
