//! The fixed-bucket latency histogram, promoted out of the serving crate so
//! every layer (and the metrics registry) shares one bucket geometry and one
//! percentile walk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds observations of
/// at most `2^i` microseconds, so 26 buckets span 1 µs to ~33 s (the last
/// bucket absorbs anything slower).
pub const LATENCY_BUCKETS: usize = 26;

/// A small fixed-bucket latency histogram: power-of-two microsecond buckets,
/// lock-free to record, summarised as p50/p99 upper bounds.  One heap-free
/// array per metric is all runtime stats need — per-request timing without a
/// timeseries dependency or an unbounded reservoir.  Per-source histograms
/// sum bucket-wise ([`LatencyHistogram::add_counts`]) before the percentile
/// walk, so aggregate percentiles are exact over the merged observations,
/// not an average of per-source percentiles.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.record_micros(micros);
    }

    /// Records one observation given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        // Bucket index = ceil(log2(µs)), so each bucket's upper bound is a
        // power of two; sub-microsecond observations land in bucket 0.
        let index = micros
            .saturating_sub(1)
            .checked_ilog2()
            .map_or(0, |bits| bits as usize + 1)
            .min(LATENCY_BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates this histogram's bucket counts into `into` (the
    /// cross-source aggregation primitive).
    pub fn add_counts(&self, into: &mut [u64; LATENCY_BUCKETS]) {
        for (acc, bucket) in into.iter_mut().zip(&self.buckets) {
            *acc += bucket.load(Ordering::Relaxed);
        }
    }

    /// A copy of the current bucket counts.
    pub fn counts(&self) -> [u64; LATENCY_BUCKETS] {
        let mut counts = [0u64; LATENCY_BUCKETS];
        self.add_counts(&mut counts);
        counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// The `p`-quantile of this histogram alone; see [`percentile_of`].
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        percentile_of(&self.counts(), p)
    }
}

/// The upper bound of the bucket holding the `p`-quantile observation
/// (e.g. 0.50, 0.99) of summed histogram counts; `None` until something was
/// recorded.
pub fn percentile_of(counts: &[u64; LATENCY_BUCKETS], p: f64) -> Option<Duration> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let target = ((p * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, count) in counts.iter().enumerate() {
        seen += count;
        if seen >= target {
            return Some(Duration::from_micros(1u64 << i));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bucket boundaries: each bucket's upper bound is a power of two, the
    /// boundary observation lands *in* that bucket (closed upper bound), and
    /// one past it lands in the next.
    #[test]
    fn bucket_boundaries_are_closed_powers_of_two() {
        // (observation µs, expected bucket index)
        let cases = [
            (0u64, 0usize), // sub-microsecond
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (1024, 10),
            (1025, 11),
        ];
        for (micros, bucket) in cases {
            let h = LatencyHistogram::new();
            h.record(Duration::from_micros(micros));
            let counts = h.counts();
            assert_eq!(
                counts[bucket], 1,
                "{micros} µs must land in bucket {bucket}, got {counts:?}"
            );
            assert_eq!(counts.iter().sum::<u64>(), 1);
        }
    }

    /// `record` and `record_micros` agree, and the percentile reports the
    /// bucket's upper bound.
    #[test]
    fn record_duration_matches_record_micros() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for micros in [0u64, 1, 7, 100, 4096, 1_000_000] {
            a.record(Duration::from_micros(micros));
            b.record_micros(micros);
        }
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.total(), 6);
    }

    /// `add_counts` merging: percentiles over the merged buckets equal the
    /// percentile of one histogram holding both sets of observations.
    #[test]
    fn add_counts_merges_exactly() {
        let left = LatencyHistogram::new();
        let right = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for micros in [3u64, 17, 90, 1500] {
            left.record_micros(micros);
            all.record_micros(micros);
        }
        for micros in [5u64, 40_000, 900_000] {
            right.record_micros(micros);
            all.record_micros(micros);
        }
        let mut merged = [0u64; LATENCY_BUCKETS];
        left.add_counts(&mut merged);
        right.add_counts(&mut merged);
        assert_eq!(merged, all.counts());
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(percentile_of(&merged, p), all.percentile(p), "p={p}");
        }
        assert_eq!(merged.iter().sum::<u64>(), 7);
    }

    /// Quantile edge case: an empty histogram has no percentiles.
    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.99), None);
        assert_eq!(h.total(), 0);
        assert_eq!(percentile_of(&[0; LATENCY_BUCKETS], 0.5), None);
    }

    /// Quantile edge case: with a single sample every percentile (including
    /// p=0, which still must select *an* observation) reports that sample's
    /// bucket upper bound.
    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(300)); // bucket 9, upper bound 512 µs
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(Duration::from_micros(512)), "p={p}");
        }
    }

    /// Quantile edge case: observations beyond the last bucket's range
    /// saturate into the top bucket, and percentiles report its upper bound
    /// rather than overflowing.
    #[test]
    fn saturated_top_bucket_caps_percentiles() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(3600)); // way past 2^25 µs ≈ 33.6 s
        h.record(Duration::from_secs(7200));
        let counts = h.counts();
        assert_eq!(counts[LATENCY_BUCKETS - 1], 2);
        assert_eq!(
            h.percentile(0.99),
            Some(Duration::from_micros(1u64 << (LATENCY_BUCKETS - 1)))
        );
    }

    /// p50/p99 split across buckets: with 99 fast and 1 slow observation,
    /// p50 reports the fast bucket and p99 still the fast bucket (the 99th
    /// of 100 is the last fast one); p995 tips into the slow bucket.
    #[test]
    fn percentile_walk_selects_correct_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 4 (≤ 16 µs)
        }
        h.record(Duration::from_millis(100)); // bucket 17 (≤ 131 ms)
        assert_eq!(h.percentile(0.50), Some(Duration::from_micros(16)));
        assert_eq!(h.percentile(0.99), Some(Duration::from_micros(16)));
        assert_eq!(h.percentile(0.995), Some(Duration::from_micros(1 << 17)));
    }
}
