//! # asr-obs — the observability layer
//!
//! The paper's low-power argument is an accounting argument: it only holds
//! if every cycle, frame, and joule is attributable.  This crate is the
//! runtime side of that accounting — one coherent layer the whole
//! serve→stream→shard pipeline reports into, instead of per-crate counters
//! that fold differently per layer:
//!
//! ```text
//!  asr-serve ──┐  Admitted/Enqueued/BatchFormed/DecodeStarted/Finished…
//!  asr-stream ─┤► Telemetry ──► span Facts ──► ObsSink ──► facts.jsonl
//!  shard pool ─┘  (TraceId per admitted request / stream session)
//!
//!  Counters / Gauges / Histograms ──► MetricsRegistry ──► MetricsSnapshot
//!  (lock-cheap handles: relaxed atomics on the hot path)      │
//!                                            metric Facts ◄───┘
//! ```
//!
//! Three pieces:
//!
//! * **Request tracing** ([`trace`]): every admitted decode request or
//!   stream session gets a [`TraceId`]; typed [`SpanEvent`]s are emitted at
//!   each seam and recorded as `span` facts.  Off by default
//!   ([`Telemetry::disabled`]) — the disabled hot path is one branch,
//!   enforced by the `obs_overhead` bench gate.
//! * **Metrics registry** ([`metrics`]): named counters, gauges, and
//!   latency histograms.  Handles are `Arc`s over plain atomics, so
//!   recording never takes a lock; [`LatencyHistogram`] (promoted out of
//!   the serving crate) keeps percentile math exact under merging.
//! * **Fact sink** ([`sink`]): one self-describing JSONL record per event
//!   or snapshot, written to memory (tests) or an append-only run directory
//!   with host metadata — the format the experiment harness and
//!   `obs_validate` read back.
//!
//! # Example
//!
//! ```
//! use asr_obs::{MetricsRegistry, SpanEvent, Telemetry, RequestKind, Outcome};
//!
//! // Metrics: registry once, handles on the hot path.
//! let registry = MetricsRegistry::new();
//! let served = registry.counter("serve.completed");
//! served.inc();
//! assert_eq!(registry.snapshot().len(), 1);
//!
//! // Tracing: a trace per request, events at each seam, one terminal.
//! let (telemetry, sink) = Telemetry::to_memory();
//! let trace = telemetry.begin_trace();
//! telemetry.emit(trace, &SpanEvent::Admitted {
//!     kind: RequestKind::Decode, model: None, tenant: None,
//! });
//! telemetry.emit(trace, &SpanEvent::Finished {
//!     outcome: Outcome::Completed, frames: 42,
//! });
//! assert_eq!(sink.facts().len(), 2);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod hist;
pub mod metrics;
pub mod sink;
pub mod trace;

pub use hist::{percentile_of, LatencyHistogram, LATENCY_BUCKETS};
pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use sink::{host_fact, now_micros, Fact, FieldValue, MemorySink, ObsSink, RunDirSink};
pub use trace::{
    current_trace, global, global_enabled, set_global, with_trace, Outcome, RequestKind, SpanEvent,
    Telemetry, TraceId,
};
