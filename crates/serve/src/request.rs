//! The typed request API: what a caller hands to
//! [`AsrServer::submit`](crate::AsrServer::submit) and
//! [`AsrServer::open_stream_with`](crate::AsrServer::open_stream_with).
//!
//! A bare `Vec<Vec<f32>>` carries no routing information; a
//! [`DecodeRequest`] carries the feature frames plus *where they go*: which
//! registered model decodes them and which tenant's admission quota they
//! count against.  Both are optional — `From<Vec<Vec<f32>>>` keeps
//! single-model callers at `server.submit(features)`.

/// One whole-utterance decode request: feature frames plus routing.
///
/// ```
/// use asr_serve::DecodeRequest;
///
/// let features = vec![vec![0.0f32; 39]; 20];
/// // Route to a named model, count against a tenant's quota:
/// let request = DecodeRequest::new(features.clone())
///     .model("dictation")
///     .tenant("acme");
/// assert_eq!(request.model_name(), Some("dictation"));
/// assert_eq!(request.tenant_name(), Some("acme"));
///
/// // Zero-arg default: plain features route to the default model.
/// let request = DecodeRequest::from(features);
/// assert_eq!(request.model_name(), None);
/// ```
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    features: Vec<Vec<f32>>,
    model: Option<String>,
    tenant: Option<String>,
}

impl DecodeRequest {
    /// A request for `features`, routed to the registry's default model and
    /// no tenant until the builders say otherwise.
    pub fn new(features: Vec<Vec<f32>>) -> Self {
        DecodeRequest {
            features,
            model: None,
            tenant: None,
        }
    }

    /// Routes the request to the named registered model.
    #[must_use]
    pub fn model(mut self, name: impl Into<String>) -> Self {
        self.model = Some(name.into());
        self
    }

    /// Attributes the request to a tenant for per-tenant admission control
    /// ([`ServeConfig::tenant_quota`](crate::ServeConfig::tenant_quota)).
    #[must_use]
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// The feature frames to decode.
    pub fn features(&self) -> &[Vec<f32>] {
        &self.features
    }

    /// The requested model name, if any (`None` routes to the default).
    pub fn model_name(&self) -> Option<&str> {
        self.model.as_deref()
    }

    /// The tenant the request counts against, if any.
    pub fn tenant_name(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    pub(crate) fn into_parts(self) -> (Vec<Vec<f32>>, Option<String>, Option<String>) {
        (self.features, self.model, self.tenant)
    }
}

impl From<Vec<Vec<f32>>> for DecodeRequest {
    /// Plain features are a complete request: default model, no tenant.
    fn from(features: Vec<Vec<f32>>) -> Self {
        DecodeRequest::new(features)
    }
}

/// Routing options for a stream session
/// ([`AsrServer::open_stream_with`](crate::AsrServer::open_stream_with)).
///
/// The default (`StreamOptions::default()`, what
/// [`AsrServer::open_stream`](crate::AsrServer::open_stream) uses) routes to
/// the registry's default model with no tenant.  The model is resolved — and
/// its version pinned — when the stream *opens*; every chunk of the session
/// decodes on that version even across a hot-swap.
///
/// ```
/// use asr_serve::StreamOptions;
///
/// let options = StreamOptions::new().model("dictation").tenant("acme");
/// assert_eq!(options.model_name(), Some("dictation"));
/// assert_eq!(options.tenant_name(), Some("acme"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    model: Option<String>,
    tenant: Option<String>,
}

impl StreamOptions {
    /// Default routing: the registry's default model, no tenant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes the session to the named registered model.
    #[must_use]
    pub fn model(mut self, name: impl Into<String>) -> Self {
        self.model = Some(name.into());
        self
    }

    /// Attributes the session's chunks to a tenant for per-tenant admission
    /// control.
    #[must_use]
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// The requested model name, if any (`None` routes to the default).
    pub fn model_name(&self) -> Option<&str> {
        self.model.as_deref()
    }

    /// The tenant the session counts against, if any.
    pub fn tenant_name(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    pub(crate) fn into_parts(self) -> (Option<String>, Option<String>) {
        (self.model, self.tenant)
    }
}
