//! The server: a bounded request queue fanned out to M micro-batching
//! decoder workers, each owning one long-lived phone decoder, plus
//! incremental stream sessions multiplexed over the same queue (pinned to
//! one worker each so their chunks stay ordered).

use crate::future::{DecodeFuture, Slot};
use crate::{ServeConfig, ServeError};
use asr_core::{DecodeSession, PartialHypothesis, PhoneDecoder, Recognizer};
use asr_hw::UtteranceReport;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One accepted command: a whole-utterance decode, or one step in the life
/// of an incremental stream session.
///
/// The drop guard is the no-dangling-future invariant: however a
/// slot-carrying command leaves the queue (served, drained at shutdown, or
/// dropped because the worker died), its future resolves — unserved requests
/// fail with the typed [`ServeError::Closed`] instead of hanging their
/// caller.  Dropped stream pushes need no guard: their session's finish
/// command resolves (or fails `Closed`) on its own.
#[derive(Debug)]
enum Command {
    /// Decode one complete utterance and fulfil the slot.
    Decode {
        features: Vec<Vec<f32>>,
        slot: Arc<Slot>,
    },
    /// Create an incremental session for stream `id`.
    StreamOpen { id: u64, state: Arc<StreamState> },
    /// Feed a feature chunk to stream `id`.
    StreamPush { id: u64, chunk: Vec<Vec<f32>> },
    /// Close stream `id` and fulfil the slot with its final result.
    StreamFinish { id: u64, slot: Arc<Slot> },
    /// Discard stream `id`'s session without producing a result (the
    /// client's handle was dropped unfinished).
    StreamCancel { id: u64 },
}

impl Command {
    /// Stream commands are latency-sensitive: the micro-batcher skips its
    /// coalescing wait while one is queued.
    fn is_stream(&self) -> bool {
        !matches!(self, Command::Decode { .. })
    }

    /// Whether worker `worker` (of `workers`) may take this command.
    /// Whole-utterance decodes go to whichever worker is free; stream
    /// commands are pinned to `id % workers`, so one worker sees a session's
    /// open/push/finish in queue order and its partials stay ordered even
    /// while other sessions decode on other workers.
    fn belongs_to(&self, worker: usize, workers: usize) -> bool {
        match self {
            Command::Decode { .. } => true,
            Command::StreamOpen { id, .. }
            | Command::StreamPush { id, .. }
            | Command::StreamFinish { id, .. }
            | Command::StreamCancel { id } => id % workers as u64 == worker as u64,
        }
    }
}

#[derive(Debug)]
struct Request {
    command: Command,
    /// When the command entered the queue; the micro-batcher flushes when
    /// the *oldest* pending command has waited `max_batch_delay`.
    enqueued: Instant,
}

impl Drop for Request {
    fn drop(&mut self) {
        // No-op when the batcher already fulfilled the slot.
        match &self.command {
            Command::Decode { slot, .. } | Command::StreamFinish { slot, .. } => {
                slot.fulfil(Err(ServeError::Closed));
            }
            Command::StreamOpen { .. }
            | Command::StreamPush { .. }
            | Command::StreamCancel { .. } => {}
        }
    }
}

/// Shared per-stream state: the latest partial hypothesis, readable by the
/// client between pushes.
#[derive(Debug, Default)]
struct StreamState {
    partial: Mutex<PartialHypothesis>,
}

impl StreamState {
    fn snapshot(&self) -> PartialHypothesis {
        self.partial
            .lock()
            .expect("stream partial lock poisoned")
            .clone()
    }

    fn store(&self, partial: PartialHypothesis) {
        *self.partial.lock().expect("stream partial lock poisoned") = partial;
    }
}

#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<Request>,
    closed: bool,
}

/// Number of power-of-two latency buckets: bucket `i` holds observations of
/// at most `2^i` microseconds, so 26 buckets span 1 µs to ~33 s (the last
/// bucket absorbs anything slower).
const LATENCY_BUCKETS: usize = 26;

/// A small fixed-bucket latency histogram: power-of-two microsecond buckets,
/// lock-free to record, summarised as p50/p99 upper bounds.  One heap-free
/// array per metric is all the serving stats need — per-request timing
/// without a timeseries dependency or an unbounded reservoir.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        // Bucket index = ceil(log2(µs)), so each bucket's upper bound is a
        // power of two; sub-microsecond observations land in bucket 0.
        let index = micros
            .saturating_sub(1)
            .checked_ilog2()
            .map_or(0, |bits| bits as usize + 1)
            .min(LATENCY_BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
    }

    /// The upper bound of the bucket holding the `p`-quantile observation
    /// (e.g. 0.50, 0.99); `None` until something was recorded.
    fn percentile(&self, p: f64) -> Option<Duration> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(Duration::from_micros(1u64 << i));
            }
        }
        None
    }
}

/// Monotonic counters shared between callers and the workers.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
    stream_sessions: AtomicU64,
    stream_chunks: AtomicU64,
    /// Stream-session ids (monotonic; never reused within a server).  Also
    /// the pinning key: session `id` lives on worker `id % workers`.
    next_stream_id: AtomicU64,
    /// Enqueue-to-dequeue wait of result-producing requests (decodes and
    /// stream finishes — the same units `submitted` counts).
    queue_wait: LatencyHistogram,
    /// Decode/finish execution time of those same requests.
    service: LatencyHistogram,
}

#[derive(Debug)]
struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    counters: Counters,
    /// Per-worker hardware accumulators, indexed by worker.  Within a worker
    /// the served utterances fold *sequentially* with
    /// [`UtteranceReport::merge`] (one scorer, one request stream — sharded
    /// backends have already parallel-merged their shards underneath);
    /// across workers the accumulators fold with
    /// [`UtteranceReport::merge_parallel`] at read time, because the workers
    /// decode concurrently — summing their frame counts would overstate the
    /// wall-clock audio the server saw, exactly the distinction the two merge
    /// operations exist for.
    hardware: Mutex<Vec<Option<UtteranceReport>>>,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Units of result-producing work accepted into the queue:
    /// whole-utterance decode requests plus stream-session finishes.  Every
    /// `completed`/`failed` tick has a matching `submitted` tick, so
    /// `submitted - completed - failed` is the in-flight depth.
    pub submitted: u64,
    /// Requests refused with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Requests decoded successfully.
    pub completed: u64,
    /// Requests that failed to decode (the error went to the caller).
    pub failed: u64,
    /// Micro-batches flushed to the decoder.
    pub batches: u64,
    /// Largest micro-batch flushed so far.
    pub largest_batch: usize,
    /// Incremental stream sessions opened.
    pub stream_sessions: u64,
    /// Stream feature chunks processed by the workers.
    pub stream_chunks: u64,
    /// Median queue wait (enqueue to dequeue) of result-producing requests,
    /// as the upper bound of its power-of-two-microsecond histogram bucket.
    /// `None` until a request has been dequeued.
    pub queue_wait_p50: Option<Duration>,
    /// 99th-percentile queue wait (same histogram as
    /// [`ServeStats::queue_wait_p50`]).
    pub queue_wait_p99: Option<Duration>,
    /// Median service time (decode/finish execution) of result-producing
    /// requests, bucketed like the queue-wait percentiles.  Stream chunk
    /// decoding is paid during pushes, so a stream's service time covers its
    /// finish step only.
    pub service_p50: Option<Duration>,
    /// 99th-percentile service time.
    pub service_p99: Option<Duration>,
}

impl ServeStats {
    /// Mean utterances per flushed batch — the amortisation the micro-batcher
    /// achieved (1.0 means no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

/// The async batched serving front.
///
/// [`AsrServer::spawn`] moves a [`Recognizer`] behind
/// [`ServeConfig::workers`] decoder worker threads.  Each worker builds its
/// **own** long-lived phone decoder from the configured backend and reuses
/// it for every micro-batch it drains — the serving-scale version of
/// [`Recognizer::decode_batch`]'s one-scorer amortisation, replicated M
/// ways.  Requests enter through [`AsrServer::submit`] (bounded queue, typed
/// backpressure), fan out to whichever worker is idle, and complete through
/// their [`DecodeFuture`]s; stream sessions are pinned to one worker each.
/// With a sharded backend each worker's shard pool survives across
/// utterances, so a warm server decodes indefinitely without spawning a
/// single thread.
///
/// Dropping the server closes the queue, drains the already-accepted
/// requests, and joins every worker; see [`AsrServer::close`] for the
/// explicit form.
///
/// [`Recognizer::decode_batch`]: asr_core::Recognizer::decode_batch
#[derive(Debug)]
pub struct AsrServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl AsrServer {
    /// Validates `config`, builds one backend decoder per worker, and starts
    /// the worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a bad serving configuration
    /// and [`ServeError::Decode`] when the recogniser's backend fails to
    /// build.
    pub fn spawn(recognizer: Recognizer, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        // Build every worker's long-lived decoder up front so a bad backend
        // config fails at spawn, not on the first request.
        let decoders: Vec<PhoneDecoder> = (0..config.workers)
            .map(|_| recognizer.phone_decoder())
            .collect::<Result<_, _>>()?;
        let recognizer = Arc::new(recognizer);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            hardware: Mutex::new(vec![None; config.workers]),
        });
        let workers = decoders
            .into_iter()
            .enumerate()
            .map(|(worker, decoder)| {
                let shared = Arc::clone(&shared);
                let recognizer = Arc::clone(&recognizer);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("asr-serve-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &recognizer, decoder, &shared, &config))
                    .expect("spawning a serve worker thread failed")
            })
            .collect();
        Ok(AsrServer {
            shared,
            workers,
            config,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Enqueues one utterance for decoding and returns its future.
    ///
    /// Never blocks: admission is a queue-bound check under a short lock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when `max_pending` requests are
    /// already waiting (the request is not enqueued — retry or shed), and
    /// [`ServeError::Closed`] after [`AsrServer::close`]/drop began.
    pub fn submit(&self, features: Vec<Vec<f32>>) -> Result<DecodeFuture, ServeError> {
        let slot = Slot::new();
        self.enqueue(
            Command::Decode {
                features,
                slot: Arc::clone(&slot),
            },
            true,
            true,
        )?;
        Ok(DecodeFuture::new(slot))
    }

    /// Checks admission under the queue lock: closed servers refuse
    /// everything, and bounded commands are refused when `max_pending` are
    /// already waiting.  Session open/finish commands are exempt from the
    /// bound — they carry no feature payload, and bouncing a *finish* would
    /// strand a session whose work is already done.
    fn admit(&self, queue: &mut Queue, bounded: bool) -> Result<(), ServeError> {
        if queue.closed {
            return Err(ServeError::Closed);
        }
        if bounded && queue.pending.len() >= self.config.max_pending {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: self.config.max_pending,
            });
        }
        Ok(())
    }

    /// Enqueues one command.  `count_submitted` is set for the commands that
    /// will eventually resolve as `completed`/`failed` (whole-utterance
    /// decodes, stream finishes), so a `stats()` snapshot never sees
    /// `completed + failed > submitted`; the increment happens while the
    /// queue lock is still held, before the batcher can complete the work.
    fn enqueue(
        &self,
        command: Command,
        bounded: bool,
        count_submitted: bool,
    ) -> Result<(), ServeError> {
        let mut queue = self.lock_queue();
        self.admit(&mut queue, bounded)?;
        queue.pending.push_back(Request {
            command,
            enqueued: Instant::now(),
        });
        if count_submitted {
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
        }
        drop(queue);
        self.shared.wakeup.notify_all();
        Ok(())
    }

    /// Opens an incremental stream session: the serving-side counterpart of
    /// [`Recognizer::begin_session`](asr_core::Recognizer::begin_session).
    /// Push feature chunks as they arrive, read partial hypotheses between
    /// pushes, and [`StreamHandle::finish`] for a [`DecodeFuture`] resolving
    /// to the same result an offline decode of the concatenated chunks would
    /// produce.  Sessions share the queue with batch requests but are
    /// **pinned** to worker `id % workers`, so one worker sees a session's
    /// commands in queue order (partials stay prefix-consistent) while
    /// different sessions spread across workers; a worker skips its
    /// coalescing delay while stream commands are queued for it, so
    /// interactive sessions are not taxed with batch latency.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] after shutdown began.
    pub fn open_stream(&self) -> Result<StreamHandle<'_>, ServeError> {
        let id = self
            .shared
            .counters
            .next_stream_id
            .fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(StreamState::default());
        self.enqueue(
            Command::StreamOpen {
                id,
                state: Arc::clone(&state),
            },
            false,
            false,
        )?;
        self.shared
            .counters
            .stream_sessions
            .fetch_add(1, Ordering::Relaxed);
        Ok(StreamHandle {
            server: self,
            id,
            state,
            consumed: false,
        })
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            stream_sessions: c.stream_sessions.load(Ordering::Relaxed),
            stream_chunks: c.stream_chunks.load(Ordering::Relaxed),
            queue_wait_p50: c.queue_wait.percentile(0.50),
            queue_wait_p99: c.queue_wait.percentile(0.99),
            service_p50: c.service.percentile(0.50),
            service_p99: c.service.percentile(0.99),
        }
    }

    /// The hardware report of the whole served stream so far.  Within each
    /// worker the served utterances fold sequentially with
    /// [`UtteranceReport::merge`]; the per-worker accumulators then fold with
    /// [`UtteranceReport::merge_parallel`], since the workers decode
    /// concurrently — work counters (senones, HMM updates, energy) add
    /// across workers while frame/audio figures take the maximum instead of
    /// multiplying the wall-clock stream length by M.  With one worker this
    /// is exactly the single-batcher fold.  `None` until a hardware-backed
    /// utterance completes (software backends keep no report).
    pub fn hardware_report(&self) -> Option<UtteranceReport> {
        let slots = self
            .shared
            .hardware
            .lock()
            .expect("hardware report lock poisoned");
        let mut merged: Option<UtteranceReport> = None;
        for report in slots.iter().flatten() {
            merged = Some(match merged {
                Some(acc) => acc.merge_parallel(report),
                None => report.clone(),
            });
        }
        merged
    }

    /// Number of requests currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock_queue().pending.len()
    }

    /// Closes the queue, waits for the already-accepted requests to finish,
    /// and joins every worker thread.  Equivalent to dropping the server,
    /// but explicit about when the blocking happens.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.shared
            .queue
            .lock()
            .expect("request queue lock poisoned")
    }

    fn shutdown(&mut self) {
        self.lock_queue().closed = true;
        self.shared.wakeup.notify_all();
        for worker in self.workers.drain(..) {
            // A panicked worker is already detached from the queue; the drain
            // below (and each Request's drop guard) fails what it left behind.
            let _ = worker.join();
        }
        // Normally empty (every worker drains its own work before exiting);
        // non-empty only if a worker died mid-stream.
        self.lock_queue().pending.clear();
    }
}

impl Drop for AsrServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client-side handle on one incremental stream session.
///
/// Obtained from [`AsrServer::open_stream`].  Chunks pushed through the
/// handle are processed in order by the server's worker; the latest partial
/// hypothesis is always readable without blocking; [`StreamHandle::finish`]
/// converts the session into a [`DecodeFuture`].  Commands of different
/// sessions (and batch submissions) interleave freely on the queue — each
/// session has its own decoder state on the worker.
///
/// Dropping the handle without finishing cancels the session: the worker
/// discards its decoder state (no result is produced, nothing counts as
/// completed or failed), so abandoned sessions cannot accumulate on a
/// long-running server.
#[derive(Debug)]
pub struct StreamHandle<'s> {
    server: &'s AsrServer,
    id: u64,
    state: Arc<StreamState>,
    /// Whether `finish` consumed the session (suppresses the cancel-on-drop).
    consumed: bool,
}

impl Drop for StreamHandle<'_> {
    fn drop(&mut self) {
        if !self.consumed {
            // Best effort: on a closed server the worker is draining anyway
            // and its session map dies with it.
            let _ = self
                .server
                .enqueue(Command::StreamCancel { id: self.id }, false, false);
        }
    }
}

impl StreamHandle<'_> {
    /// The session's id (unique within its server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Enqueues one feature chunk for this session.
    ///
    /// Never blocks.  The chunk is cloned into the queue, so on backpressure
    /// the caller still owns the data and can retry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when the bounded queue is full (the
    /// chunk was not enqueued) and [`ServeError::Closed`] after shutdown
    /// began.  Decode errors inside the worker surface on
    /// [`StreamHandle::finish`], not here.
    pub fn push_chunk(&self, chunk: &[Vec<f32>]) -> Result<(), ServeError> {
        self.server.enqueue(
            Command::StreamPush {
                id: self.id,
                chunk: chunk.to_vec(),
            },
            true,
            false,
        )
    }

    /// The latest partial hypothesis the worker has published for this
    /// session.  Non-blocking; lags the most recent push until the worker
    /// processes it.
    pub fn partial(&self) -> PartialHypothesis {
        self.state.snapshot()
    }

    /// Closes the session and returns the future of its final result —
    /// identical to an offline decode of every chunk pushed so far (the
    /// typed empty result if none were).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before the
    /// finish could be enqueued.
    pub fn finish(mut self) -> Result<DecodeFuture, ServeError> {
        // Either way the handle is spent: on success the worker will remove
        // the session at the finish command; on Closed the worker is
        // draining and its session map dies with it.  Never cancel-on-drop
        // after this.
        self.consumed = true;
        let slot = Slot::new();
        self.server.enqueue(
            Command::StreamFinish {
                id: self.id,
                slot: Arc::clone(&slot),
            },
            false,
            true,
        )?;
        Ok(DecodeFuture::new(slot))
    }
}

/// Closes the queue and fails every pending request: each dropped `Request`
/// fires its drop guard, so pending futures resolve to
/// [`ServeError::Closed`] instead of hanging.  Recovers the queue lock even
/// when the caller is panicking with it poisoned.
fn fail_pending(shared: &Shared) {
    let mut queue = shared
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    queue.closed = true;
    queue.pending.clear();
    drop(queue);
    shared.wakeup.notify_all();
}

/// Fails the queue when a worker dies by *panic*.  Without this, a panicking
/// worker (e.g. a poisoned lock, a backend bug) would leave `closed ==
/// false`: `submit` would keep accepting requests that nothing will ever
/// dequeue, and their futures would hang until the server itself is dropped.
/// A normal worker exit must NOT trigger it: with M workers, one worker
/// returning from its loop (queue closed, nothing left *for it*) must not
/// clear commands still pending for its siblings.
struct CloseOnExit<'a>(&'a Shared);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            fail_pending(self.0);
        }
    }
}

/// One live stream session on a worker: the incremental decoder plus the
/// shared state its partials publish into.  The whole entry degrades to the
/// first error the session hit; the finish command collects it.
type WorkerStream<'a> = Result<(DecodeSession<'a>, Arc<StreamState>), ServeError>;

/// Folds a decoded utterance's outcome into the stream-level counters and
/// `worker`'s hardware accumulator (sequential [`UtteranceReport::merge`]
/// within a worker; the parallel fold across workers happens at read time in
/// [`AsrServer::hardware_report`]).
fn record_outcome(
    shared: &Shared,
    worker: usize,
    outcome: &Result<asr_core::DecodeResult, ServeError>,
) {
    let c = &shared.counters;
    match outcome {
        Ok(result) => {
            c.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(report) = &result.hardware {
                let mut slots = shared
                    .hardware
                    .lock()
                    .expect("hardware report lock poisoned");
                let slot = &mut slots[worker];
                *slot = Some(match slot.take() {
                    Some(acc) => acc.merge(report),
                    None => report.clone(),
                });
            }
        }
        Err(_) => {
            c.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One decoder worker: wait for commands it may take, coalesce, decode,
/// fulfil — until the queue is closed *and* holds nothing for this worker.
/// Whole-utterance decodes run through the worker's one long-lived
/// `decoder`; each stream session pinned here owns its own incremental
/// decoder state in `sessions` (interleaved sessions cannot share CDS /
/// arena state).  Requests this worker does not take (streams pinned to a
/// sibling) are left in place, in order, for their owner.
fn worker_loop(
    worker: usize,
    recognizer: &Recognizer,
    mut decoder: PhoneDecoder,
    shared: &Shared,
    config: &ServeConfig,
) {
    let workers = config.workers;
    let _close_on_exit = CloseOnExit(shared);
    let mut sessions: HashMap<u64, WorkerStream<'_>> = HashMap::new();
    let mine = |queue: &Queue| {
        queue
            .pending
            .iter()
            .filter(|r| r.command.belongs_to(worker, workers))
            .count()
    };
    let my_stream = |queue: &Queue| {
        queue
            .pending
            .iter()
            .any(|r| r.command.is_stream() && r.command.belongs_to(worker, workers))
    };
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("request queue lock poisoned");
            // Sleep until there is work for this worker (or shutdown with
            // nothing left that it could ever take — a decode belongs to
            // everyone, so no worker exits while decodes remain, and a
            // pinned stream command is only ever left for a live sibling).
            loop {
                if mine(&queue) > 0 {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = shared
                    .wakeup
                    .wait(queue)
                    .expect("request queue lock poisoned");
            }
            // Micro-batching: give later requests until the *oldest* pending
            // request of this worker has waited `max_batch_delay` to join
            // this flush, unless the batch is already full, the server is
            // draining for shutdown (then latency no longer buys anything),
            // or a stream command is queued for this worker (streams are
            // latency-bound: their chunks gain nothing from coalescing with
            // batch traffic).  Anchoring the deadline at enqueue time means
            // a request that already waited out a previous flush's decode is
            // not made to wait a fresh window on top.
            if mine(&queue) < config.max_batch && !queue.closed && !my_stream(&queue) {
                let deadline = queue
                    .pending
                    .iter()
                    .find(|r| r.command.belongs_to(worker, workers))
                    .expect("this worker has pending work here")
                    .enqueued
                    + config.max_batch_delay;
                while mine(&queue) < config.max_batch && !queue.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .wakeup
                        .wait_timeout(queue, deadline - now)
                        .expect("request queue lock poisoned");
                    queue = guard;
                    if my_stream(&queue) {
                        break;
                    }
                }
            }
            // Take up to max_batch of this worker's requests, preserving
            // their relative order; everything else stays queued, in order,
            // for the other workers.
            let mut batch = Vec::new();
            let mut rest = VecDeque::with_capacity(queue.pending.len());
            for request in queue.pending.drain(..) {
                if batch.len() < config.max_batch && request.command.belongs_to(worker, workers) {
                    batch.push(request);
                } else {
                    rest.push_back(request);
                }
            }
            queue.pending = rest;
            batch
        };
        // Taking a batch may have freed queue capacity and left work for
        // siblings in front; wake them in case they slept through the
        // original notify while this worker held the lock.
        shared.wakeup.notify_all();

        // Work outside the lock so submissions stay non-blocking.  Commands
        // run in arrival order: whole-utterance decodes stream through the
        // worker's one long-lived decoder (`decode_batch_with`'s
        // amortisation, unrolled per request so a bad utterance fails alone
        // instead of poisoning its batch neighbours), and stream commands
        // advance their session's own incremental state.
        let c = &shared.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.largest_batch.fetch_max(batch.len(), Ordering::Relaxed);
        for request in batch {
            match &request.command {
                Command::Decode { features, slot } => {
                    c.queue_wait.record(request.enqueued.elapsed());
                    let started = Instant::now();
                    let outcome = recognizer
                        .decode_features_with(features, &mut decoder)
                        .map_err(ServeError::from);
                    c.service.record(started.elapsed());
                    record_outcome(shared, worker, &outcome);
                    slot.fulfil(outcome);
                }
                Command::StreamOpen { id, state } => {
                    let entry = recognizer
                        .begin_session()
                        .map(|session| (session, Arc::clone(state)))
                        .map_err(ServeError::from);
                    sessions.insert(*id, entry);
                }
                Command::StreamPush { id, chunk } => {
                    c.stream_chunks.fetch_add(1, Ordering::Relaxed);
                    if let Some(entry) = sessions.get_mut(id) {
                        if let Ok((session, state)) = entry {
                            match session.push_chunk(chunk) {
                                Ok(()) => state.store(session.partial()),
                                // The session degrades to its first error;
                                // finish() will deliver it.
                                Err(e) => *entry = Err(ServeError::from(e)),
                            }
                        }
                    }
                }
                Command::StreamFinish { id, slot } => {
                    c.queue_wait.record(request.enqueued.elapsed());
                    let started = Instant::now();
                    let outcome = match sessions.remove(id) {
                        Some(Ok((session, _state))) => session.finish().map_err(ServeError::from),
                        Some(Err(e)) => Err(e),
                        // Unreachable through the handle API (open precedes
                        // finish in queue order on the same pinned worker);
                        // fail typed, not by hanging.
                        None => Err(ServeError::Closed),
                    };
                    c.service.record(started.elapsed());
                    record_outcome(shared, worker, &outcome);
                    slot.fulfil(outcome);
                }
                Command::StreamCancel { id } => {
                    // The client dropped its handle: discard the session's
                    // decoder state.  No result, no completed/failed tick.
                    sessions.remove(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;
    use asr_core::{DecodeError, DecoderConfig};
    use asr_corpus::{SyntheticTask, TaskConfig, TaskGenerator};

    fn task() -> SyntheticTask {
        TaskGenerator::new(77)
            .generate(&TaskConfig::tiny())
            .unwrap()
    }

    fn recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn serves_requests_and_matches_direct_decode() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        let utterances: Vec<_> = (0..6)
            .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
            .collect();
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).unwrap())
            .collect();
        let want = direct.decode_batch(&utterances).unwrap();
        for (future, want) in futures.into_iter().zip(&want) {
            let got = future.wait().unwrap();
            assert_eq!(got.hypothesis, want.hypothesis);
            assert_eq!(got.stats.num_frames(), want.stats.num_frames());
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch >= 1);
        assert!(stats.mean_batch_size() >= 1.0);
        // Software backend → no hardware report stream.
        assert!(server.hardware_report().is_none());
        server.close();
    }

    #[test]
    fn hardware_stream_report_accumulates() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 3);
        let frames = features.len();
        let a = server.submit(features.clone()).unwrap();
        let b = server.submit(features).unwrap();
        a.wait().unwrap();
        b.wait().unwrap();
        let report = server.hardware_report().expect("hardware stream report");
        assert_eq!(report.frames, 2 * frames);
    }

    #[test]
    fn queue_full_is_typed_backpressure_not_a_drop() {
        let task = task();
        // A deliberately tiny queue and a long coalescing window so the
        // worker is still waiting while we overfill.
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_pending: 2,
                max_batch: 64,
                max_batch_delay: std::time::Duration::from_millis(250),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 1);
        let mut accepted = Vec::new();
        let mut rejections = 0;
        for _ in 0..20 {
            match server.submit(features.clone()) {
                Ok(future) => accepted.push(future),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejections > 0, "the bound must push back");
        let stats = server.stats();
        assert_eq!(stats.rejected, rejections);
        // Every *accepted* request completes successfully — backpressure
        // refuses at the door, it never drops admitted work.
        let accepted_count = accepted.len() as u64;
        for future in accepted {
            assert!(future.wait().is_ok());
        }
        assert_eq!(server.stats().completed, accepted_count);
    }

    #[test]
    fn close_drains_accepted_requests_then_rejects_new_ones() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_batch_delay: std::time::Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 5);
        let futures: Vec<_> = (0..4)
            .map(|_| server.submit(features.clone()).unwrap())
            .collect();
        server.close();
        for future in futures {
            // Accepted before close → decoded during the drain, not failed.
            assert_eq!(future.wait().unwrap().hypothesis.words, reference);
        }
    }

    #[test]
    fn submissions_after_close_fail_closed() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        // Close via the explicit path, keeping a handle: mimic with drop
        // ordering instead — mark closed through a second scope.
        let (features, _) = task.synthesize_utterance(1, 0.2, 2);
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(server.submit(features), Err(ServeError::Closed)));
    }

    #[test]
    fn a_bad_utterance_fails_alone_without_poisoning_the_batch() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                // Force everything into one coalesced batch.
                max_batch: 8,
                max_batch_delay: std::time::Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 4);
        let bad = vec![vec![0.0f32; dim + 1]];
        let first = server.submit(good.clone()).unwrap();
        let poison = server.submit(bad).unwrap();
        let last = server.submit(good).unwrap();
        assert_eq!(first.wait().unwrap().hypothesis.words, reference);
        assert!(matches!(
            poison.wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(last.wait().unwrap().hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
    }

    fn bare_shared(workers: usize) -> Shared {
        Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            hardware: Mutex::new(vec![None; workers]),
        }
    }

    fn enqueue_decode(shared: &Shared) -> DecodeFuture {
        let slot = Slot::new();
        shared.queue.lock().unwrap().pending.push_back(Request {
            command: Command::Decode {
                features: Vec::new(),
                slot: Arc::clone(&slot),
            },
            enqueued: Instant::now(),
        });
        DecodeFuture::new(slot)
    }

    #[test]
    fn a_dying_worker_closes_the_queue_and_fails_pending_futures() {
        // Drive the failure path directly: whatever takes a worker down, the
        // queue must close and pending futures must resolve instead of
        // hanging.
        let shared = bare_shared(1);
        let future = enqueue_decode(&shared);
        fail_pending(&shared);
        assert!(shared.queue.lock().unwrap().closed);
        assert!(matches!(future.wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn the_exit_guard_fires_on_panic_but_not_on_normal_exit() {
        // Normal exit: a worker returning from its loop must leave the queue
        // open and its siblings' pending work intact.
        let shared = bare_shared(2);
        let future = enqueue_decode(&shared);
        drop(CloseOnExit(&shared));
        assert!(!shared.queue.lock().unwrap().closed);
        assert_eq!(shared.queue.lock().unwrap().pending.len(), 1);

        // Panic: the guard must close the queue and fail what is pending.
        let shared = Arc::new(shared);
        let panicking = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let _guard = CloseOnExit(&panicking);
            panic!("synthetic worker death");
        });
        assert!(handle.join().is_err());
        assert!(shared.queue.lock().unwrap().closed);
        assert!(matches!(future.wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn stream_session_matches_offline_decode() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 21);
        let offline = direct.decode_features(&features).unwrap();

        let handle = server.open_stream().unwrap();
        for chunk in features.chunks(3) {
            handle.push_chunk(chunk).unwrap();
        }
        let result = handle.finish().unwrap().wait().unwrap();
        assert_eq!(result.hypothesis.words, reference);
        assert_eq!(result.hypothesis, offline.hypothesis);
        assert_eq!(result.best_score.raw(), offline.best_score.raw());
        assert_eq!(result.stats.num_frames(), features.len());
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 1);
        assert_eq!(stats.stream_chunks as usize, features.len().div_ceil(3));
        assert_eq!(stats.completed, 1);
        // The finish counted as submitted work: completed never outruns it.
        assert_eq!(stats.submitted, 1);
        server.close();
    }

    #[test]
    fn dropped_stream_handles_cancel_their_worker_sessions() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 81);
        {
            let handle = server.open_stream().unwrap();
            handle.push_chunk(&features).unwrap();
            // Dropped here without finish: the worker discards the session.
        }
        // Subsequent traffic is unaffected, and the abandoned session never
        // produced a result tick.
        let got = server.submit(features.clone()).unwrap().wait().unwrap();
        assert_eq!(got.hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        server.close();
    }

    #[test]
    fn interleaved_streams_and_batch_requests_stay_isolated() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (first, first_ref) = task.synthesize_utterance(1, 0.2, 31);
        let (second, second_ref) = task.synthesize_utterance(2, 0.2, 32);
        let (batch_utt, batch_ref) = task.synthesize_utterance(1, 0.2, 33);
        let want_first = direct.decode_features(&first).unwrap();
        let want_second = direct.decode_features(&second).unwrap();

        // Two sessions interleaved chunk by chunk, with a whole-utterance
        // request racing through the same queue.
        let a = server.open_stream().unwrap();
        let b = server.open_stream().unwrap();
        assert_ne!(a.id(), b.id());
        let batch_future = server.submit(batch_utt).unwrap();
        let mut ai = first.chunks(2);
        let mut bi = second.chunks(2);
        loop {
            match (ai.next(), bi.next()) {
                (None, None) => break,
                (chunk_a, chunk_b) => {
                    if let Some(chunk) = chunk_a {
                        a.push_chunk(chunk).unwrap();
                    }
                    if let Some(chunk) = chunk_b {
                        b.push_chunk(chunk).unwrap();
                    }
                }
            }
        }
        let got_a = a.finish().unwrap().wait().unwrap();
        let got_b = b.finish().unwrap().wait().unwrap();
        assert_eq!(got_a.hypothesis.words, first_ref);
        assert_eq!(got_b.hypothesis.words, second_ref);
        assert_eq!(got_a.hypothesis, want_first.hypothesis);
        assert_eq!(got_b.hypothesis, want_second.hypothesis);
        assert_eq!(batch_future.wait().unwrap().hypothesis.words, batch_ref);
        assert_eq!(server.stats().completed, 3);
    }

    #[test]
    fn stream_partials_are_published_and_prefix_consistent() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(3, 0.2, 41);
        let handle = server.open_stream().unwrap();
        assert_eq!(handle.partial(), PartialHypothesis::default());
        let mut previous = PartialHypothesis::default();
        for chunk in features.chunks(4) {
            handle.push_chunk(chunk).unwrap();
            // The worker publishes asynchronously; wait for it to catch up
            // so the snapshot is deterministic.
            while handle.partial().frames < previous.frames + chunk.len() {
                std::thread::yield_now();
            }
            let partial = handle.partial();
            assert!(partial.words.starts_with(&previous.words));
            previous = partial;
        }
        assert!(!previous.words.is_empty());
        let result = handle.finish().unwrap().wait().unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn empty_stream_session_resolves_to_the_typed_empty_result() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let handle = server.open_stream().unwrap();
        let result = handle.finish().unwrap().wait().unwrap();
        assert!(result.is_empty());
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn a_bad_chunk_fails_the_session_at_finish_not_its_neighbours() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 51);
        let poisoned = server.open_stream().unwrap();
        let healthy = server.open_stream().unwrap();
        poisoned.push_chunk(&[vec![0.0; dim + 2]]).unwrap();
        // Later pushes to the failed session are absorbed, not decoded.
        poisoned.push_chunk(&good).unwrap();
        healthy.push_chunk(&good).unwrap();
        assert!(matches!(
            poisoned.finish().unwrap().wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(
            healthy.finish().unwrap().wait().unwrap().hypothesis.words,
            reference
        );
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn streams_cannot_be_opened_or_pushed_after_close() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 61);
        let handle = server.open_stream().unwrap();
        handle.push_chunk(&features).unwrap();
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(
            handle.push_chunk(&features),
            Err(ServeError::Closed)
        ));
        assert!(matches!(server.open_stream(), Err(ServeError::Closed)));
        assert!(matches!(handle.finish(), Err(ServeError::Closed)));
    }

    #[test]
    fn stream_hardware_reports_fold_into_the_server_report() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 71);
        let frames = features.len();
        let handle = server.open_stream().unwrap();
        handle.push_chunk(&features).unwrap();
        handle.finish().unwrap().wait().unwrap();
        let direct = server.submit(features).unwrap();
        direct.wait().unwrap();
        let report = server.hardware_report().expect("merged stream report");
        assert_eq!(report.frames, 2 * frames);
    }

    #[test]
    fn futures_are_pollable_on_an_executor() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 6);
        let future = server.submit(features).unwrap();
        let result = block_on(future).unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn spawn_rejects_invalid_configs_up_front() {
        let task = task();
        let bad_serve = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
        );
        assert!(matches!(bad_serve, Err(ServeError::InvalidConfig(_))));
        // A recogniser whose backend cannot build fails at spawn, not on the
        // first request.  (An invalid SoC config is rejected by Recognizer::new
        // already, so exercise the path through a valid-at-construction but
        // unbuildable sharded config is impossible — instead check the
        // spawn-time decoder build succeeds for a sharded backend.)
        let sharded = AsrServer::spawn(
            recognizer(&task, DecoderConfig::sharded_hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 9);
        assert_eq!(
            sharded
                .submit(features)
                .unwrap()
                .wait()
                .unwrap()
                .hypothesis
                .words,
            reference
        );
        assert!(sharded.hardware_report().is_some());
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.50), None);
        // 1 µs lands in bucket 0, 3 µs in bucket 2 (upper bound 4 µs).
        h.record(Duration::from_micros(1));
        assert_eq!(h.percentile(0.50), Some(Duration::from_micros(1)));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        assert_eq!(h.percentile(0.50), Some(Duration::from_micros(4)));
        assert_eq!(h.percentile(0.99), Some(Duration::from_micros(4)));
        // An absurd observation saturates into the last bucket instead of
        // indexing out of bounds.
        h.record(Duration::from_secs(3600));
        assert_eq!(
            h.percentile(1.0),
            Some(Duration::from_micros(1u64 << (LATENCY_BUCKETS - 1)))
        );
    }

    #[test]
    fn stats_expose_queue_wait_and_service_percentiles() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        assert_eq!(server.stats().queue_wait_p50, None);
        assert_eq!(server.stats().service_p50, None);
        let (features, _) = task.synthesize_utterance(1, 0.2, 13);
        for _ in 0..3 {
            server.submit(features.clone()).unwrap().wait().unwrap();
        }
        let stats = server.stats();
        let (p50, p99) = (stats.queue_wait_p50.unwrap(), stats.queue_wait_p99.unwrap());
        assert!(p50 <= p99, "p50 {p50:?} must not exceed p99 {p99:?}");
        let (s50, s99) = (stats.service_p50.unwrap(), stats.service_p99.unwrap());
        assert!(s50 <= s99);
        server.close();
    }

    #[test]
    fn multi_worker_server_matches_direct_decode() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default().workers(3),
        )
        .unwrap();
        let utterances: Vec<_> = (0..9)
            .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
            .collect();
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).unwrap())
            .collect();
        let want = direct.decode_batch(&utterances).unwrap();
        for (future, want) in futures.into_iter().zip(&want) {
            assert_eq!(future.wait().unwrap().hypothesis, want.hypothesis);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.failed, 0);
        server.close();
    }

    #[test]
    fn multi_worker_hardware_reports_fold_in_parallel() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default().workers(2),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 3);
        let frames = features.len();
        let futures: Vec<_> = (0..4)
            .map(|_| server.submit(features.clone()).unwrap())
            .collect();
        for future in futures {
            future.wait().unwrap();
        }
        let report = server.hardware_report().expect("merged stream report");
        // Frames fold with max across workers (concurrent lanes do not add
        // wall-clock audio), so the figure is between one utterance's worth
        // (perfectly even split... still >= frames) and the sequential sum.
        assert!(report.frames >= frames);
        assert!(report.frames <= 4 * frames);
        server.close();
    }

    #[test]
    fn streams_stay_pinned_and_ordered_across_workers() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default().workers(4),
        )
        .unwrap();
        let sessions: Vec<_> = (0..6)
            .map(|i| {
                let (features, reference) = task.synthesize_utterance(1, 0.2, 100 + i);
                (server.open_stream().unwrap(), features, reference)
            })
            .collect();
        // Interleave every session's chunks round-robin across the one queue.
        let mut offsets = vec![0usize; sessions.len()];
        loop {
            let mut pushed = false;
            for (i, (handle, features, _)) in sessions.iter().enumerate() {
                if offsets[i] < features.len() {
                    let end = (offsets[i] + 2).min(features.len());
                    handle.push_chunk(&features[offsets[i]..end]).unwrap();
                    offsets[i] = end;
                    pushed = true;
                }
            }
            if !pushed {
                break;
            }
        }
        for (handle, features, reference) in sessions {
            let want = direct.decode_features(&features).unwrap();
            let got = handle.finish().unwrap().wait().unwrap();
            assert_eq!(got.hypothesis.words, reference);
            assert_eq!(got.hypothesis, want.hypothesis);
        }
        assert_eq!(server.stats().completed, 6);
        server.close();
    }
}
