//! The server: a bounded request queue routed across a registry of named
//! models and fanned out to M micro-batching decoder workers.  Each worker
//! keeps one long-lived phone decoder per *(model, version)* it has served
//! and coalesces pending whole-utterance requests into per-model-version
//! micro-batches; incremental stream sessions multiplex over the same queue
//! (pinned to one worker each so their chunks stay ordered) and pin the
//! model version they opened under.

use crate::future::{DecodeFuture, Slot};
use crate::registry::{ModelRegistry, ModelVersion, DEFAULT_MODEL};
use crate::request::{DecodeRequest, StreamOptions};
use crate::{QueueScope, ServeConfig, ServeError};
use asr_core::{PartialHypothesis, PhoneDecoder, Recognizer, SharedDecodeSession};
use asr_hw::UtteranceReport;
use asr_obs::{
    percentile_of, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Outcome,
    RequestKind, SpanEvent, Telemetry, TraceId, LATENCY_BUCKETS,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a request was admitted *under*: the pinned model version that will
/// decode it and the tenant its quota accounting charges.
///
/// The `Arc<ModelVersion>` is the hot-swap invariant: admission clones the
/// registry slot's current `Arc`, so a swap that replaces the slot cannot
/// retarget work already admitted — queued requests and open stream sessions
/// keep decoding the exact version they were admitted under.
#[derive(Debug, Clone)]
struct Admission {
    model: Arc<ModelVersion>,
    tenant: Option<Arc<str>>,
    /// The request's trace id ([`TraceId::NONE`] when telemetry is off).
    /// A decode request mints one per request; a stream session mints one
    /// at open, and every push/finish/cancel of the session reuses it.
    trace: TraceId,
}

/// One accepted command: a whole-utterance decode, or one step in the life
/// of an incremental stream session.
///
/// The drop guard is the no-dangling-future invariant: however a
/// slot-carrying command leaves the queue (served, drained at shutdown, or
/// dropped because the worker died), its future resolves — unserved requests
/// fail with the typed [`ServeError::Closed`] instead of hanging their
/// caller.  Dropped stream pushes need no guard: their session's finish
/// command resolves (or fails `Closed`) on its own.
#[derive(Debug)]
enum Command {
    /// Decode one complete utterance and fulfil the slot.
    Decode {
        features: Vec<Vec<f32>>,
        slot: Arc<Slot>,
        admission: Admission,
    },
    /// Create an incremental session for stream `id`.
    StreamOpen {
        id: u64,
        state: Arc<StreamState>,
        admission: Admission,
    },
    /// Feed a feature chunk to stream `id`.
    StreamPush {
        id: u64,
        chunk: Vec<Vec<f32>>,
        admission: Admission,
    },
    /// Close stream `id` and fulfil the slot with its final result.
    StreamFinish {
        id: u64,
        slot: Arc<Slot>,
        admission: Admission,
    },
    /// Discard stream `id`'s session without producing a result (the
    /// client's handle was dropped unfinished).  Carries the session's
    /// trace id so the worker can terminate the trace — a cancel is the
    /// one command without an [`Admission`].
    StreamCancel { id: u64, trace: TraceId },
}

impl Command {
    /// Stream commands are latency-sensitive: the micro-batcher skips its
    /// coalescing wait while one is queued.
    fn is_stream(&self) -> bool {
        !matches!(self, Command::Decode { .. })
    }

    /// Whether worker `worker` (of `workers`) may take this command.
    /// Whole-utterance decodes go to whichever worker is free; stream
    /// commands are pinned to `id % workers`, so one worker sees a session's
    /// open/push/finish in queue order and its partials stay ordered even
    /// while other sessions decode on other workers.
    fn belongs_to(&self, worker: usize, workers: usize) -> bool {
        match self {
            Command::Decode { .. } => true,
            Command::StreamOpen { id, .. }
            | Command::StreamPush { id, .. }
            | Command::StreamFinish { id, .. }
            | Command::StreamCancel { id, .. } => id % workers as u64 == worker as u64,
        }
    }

    /// The admission this queued command counts against per-model /
    /// per-tenant quotas: only the *bounded*, payload-carrying commands
    /// (decodes and stream pushes).  Open/finish/cancel are exempt from
    /// admission bounds, so they never occupy quota either.
    fn quota_scope(&self) -> Option<&Admission> {
        match self {
            Command::Decode { admission, .. } | Command::StreamPush { admission, .. } => {
                Some(admission)
            }
            Command::StreamOpen { .. }
            | Command::StreamFinish { .. }
            | Command::StreamCancel { .. } => None,
        }
    }

    /// The admission the command was accepted under (every command but a
    /// cancel carries one).
    fn admission(&self) -> Option<&Admission> {
        match self {
            Command::Decode { admission, .. }
            | Command::StreamOpen { admission, .. }
            | Command::StreamPush { admission, .. }
            | Command::StreamFinish { admission, .. } => Some(admission),
            Command::StreamCancel { .. } => None,
        }
    }
}

#[derive(Debug)]
struct Request {
    command: Command,
    /// When the command entered the queue; the micro-batcher flushes when
    /// the *oldest* pending command has waited `max_batch_delay`.
    enqueued: Instant,
}

impl Drop for Request {
    fn drop(&mut self) {
        // No-op when the batcher already fulfilled the slot.
        match &self.command {
            Command::Decode { slot, .. } | Command::StreamFinish { slot, .. } => {
                slot.fulfil(Err(ServeError::Closed));
            }
            Command::StreamOpen { .. }
            | Command::StreamPush { .. }
            | Command::StreamCancel { .. } => {}
        }
    }
}

/// Shared per-stream state: the latest partial hypothesis, readable by the
/// client between pushes.
#[derive(Debug, Default)]
struct StreamState {
    partial: Mutex<PartialHypothesis>,
}

impl StreamState {
    fn snapshot(&self) -> PartialHypothesis {
        self.partial
            .lock()
            .expect("stream partial lock poisoned")
            .clone()
    }

    fn store(&self, partial: PartialHypothesis) {
        *self.partial.lock().expect("stream partial lock poisoned") = partial;
    }
}

#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<Request>,
    closed: bool,
}

/// Monotonic counters, one set **per registered model**; the whole-server
/// snapshot is a fold over every model's set.
///
/// Each field is a registry-backed handle (the [`asr_obs::LatencyHistogram`]
/// this crate's private histogram was promoted into lives behind
/// [`Histogram`]), registered in the server's [`MetricsRegistry`] as
/// `serve.<model>.<name>` — so [`AsrServer::metrics`] exports the same
/// values [`AsrServer::stats`] folds, under stable names.  Handles are
/// relaxed atomics underneath: the hot path pays what the old private
/// `AtomicU64` fields did.
#[derive(Debug)]
struct Counters {
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    failed: Counter,
    batches: Counter,
    largest_batch: Gauge,
    stream_sessions: Counter,
    stream_chunks: Counter,
    /// Enqueue-to-dequeue wait of result-producing requests (decodes and
    /// stream finishes — the same units `submitted` counts).
    queue_wait: Histogram,
    /// Decode/finish execution time of those same requests.
    service: Histogram,
}

impl Counters {
    /// Registers one model's counter set in `metrics` under
    /// `serve.<model>.*`.
    fn register(metrics: &MetricsRegistry, model: &str) -> Counters {
        let name = |field: &str| format!("serve.{model}.{field}");
        Counters {
            submitted: metrics.counter(&name("submitted")),
            rejected: metrics.counter(&name("rejected")),
            completed: metrics.counter(&name("completed")),
            failed: metrics.counter(&name("failed")),
            batches: metrics.counter(&name("batches")),
            largest_batch: metrics.gauge(&name("largest_batch")),
            stream_sessions: metrics.counter(&name("stream_sessions")),
            stream_chunks: metrics.counter(&name("stream_chunks")),
            queue_wait: metrics.histogram(&name("queue_wait_us")),
            service: metrics.histogram(&name("service_us")),
        }
    }
}

/// One registry slot: the hot-swappable current version plus the model's
/// counters (which survive swaps — stats are per *name*, not per version).
#[derive(Debug)]
struct ModelState {
    current: RwLock<Arc<ModelVersion>>,
    counters: Counters,
}

#[derive(Debug)]
struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    /// The registry: model name → hot-swappable state.  The *set* of names
    /// is fixed at spawn (no insertion or removal at runtime), which is what
    /// lets workers read this map without a lock; only each slot's `current`
    /// version swaps.
    models: HashMap<Arc<str>, ModelState>,
    /// The model unnamed requests route to.
    default_model: Arc<str>,
    /// Stream-session ids (monotonic; never reused within a server).  Also
    /// the pinning key: session `id` lives on worker `id % workers`.
    next_stream_id: AtomicU64,
    /// Per-worker, per-model hardware accumulators, indexed by worker.
    /// Within a worker each model's served utterances fold *sequentially*
    /// with [`UtteranceReport::merge`] (one thread, one request stream —
    /// sharded backends have already parallel-merged their shards
    /// underneath); across workers the accumulators fold with
    /// [`UtteranceReport::merge_parallel`] at read time, because the workers
    /// decode concurrently — summing their frame counts would overstate the
    /// wall-clock audio the server saw, exactly the distinction the two merge
    /// operations exist for.
    hardware: Mutex<Vec<HashMap<Arc<str>, UtteranceReport>>>,
    /// The registry every model's [`Counters`] set registers in — one
    /// snapshot ([`AsrServer::metrics`]) reads the whole server.
    metrics: MetricsRegistry,
    /// The tracing handle: disabled unless the server was spawned through
    /// [`AsrServer::spawn_observed`] / [`AsrServer::spawn_registry_observed`],
    /// and then every admitted request's span events record through it.
    telemetry: Telemetry,
}

impl Shared {
    /// The counters of a registered model.  Admission interns every request's
    /// model through the registry, so a name reaching the workers is always
    /// present.
    fn counters(&self, name: &str) -> &Counters {
        &self
            .models
            .get(name)
            .expect("admitted request references a registered model")
            .counters
    }
}

/// A point-in-time snapshot of serving counters — the whole server's
/// ([`AsrServer::stats`]) or one model's ([`AsrServer::model_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Units of result-producing work accepted into the queue:
    /// whole-utterance decode requests plus stream-session finishes.  Every
    /// `completed`/`failed` tick has a matching `submitted` tick, so
    /// `submitted - completed - failed` is the in-flight depth.
    pub submitted: u64,
    /// Requests refused with [`ServeError::QueueFull`] (any scope) at this
    /// model's admission.
    pub rejected: u64,
    /// Requests decoded successfully.
    pub completed: u64,
    /// Requests that failed to decode (the error went to the caller).
    pub failed: u64,
    /// Micro-batches flushed to a decoder (flushes that carried at least one
    /// whole-utterance decode; batches never mix models or versions).
    pub batches: u64,
    /// Largest number of whole-utterance decodes in one micro-batch so far.
    pub largest_batch: usize,
    /// Incremental stream sessions opened.
    pub stream_sessions: u64,
    /// Stream feature chunks processed by the workers.
    pub stream_chunks: u64,
    /// Median queue wait (enqueue to dequeue) of result-producing requests,
    /// as the upper bound of its power-of-two-microsecond histogram bucket.
    /// `None` until a request has been dequeued.
    pub queue_wait_p50: Option<Duration>,
    /// 99th-percentile queue wait (same histogram as
    /// [`ServeStats::queue_wait_p50`]).
    pub queue_wait_p99: Option<Duration>,
    /// Median service time (decode/finish execution) of result-producing
    /// requests, bucketed like the queue-wait percentiles.  Stream chunk
    /// decoding is paid during pushes, so a stream's service time covers its
    /// finish step only.
    pub service_p50: Option<Duration>,
    /// 99th-percentile service time.
    pub service_p99: Option<Duration>,
}

impl ServeStats {
    /// Mean whole-utterance decodes per flushed batch — the amortisation the
    /// micro-batcher achieved (1.0 means no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

/// Folds per-model counter sets into one snapshot: sums everywhere except
/// `largest_batch` (a max) and the percentiles (bucket-summed histograms,
/// then one percentile walk — exact over the merged observations).
fn fold_stats<'c>(counters: impl Iterator<Item = &'c Counters>) -> ServeStats {
    let mut stats = ServeStats::default();
    let mut queue_wait = [0u64; LATENCY_BUCKETS];
    let mut service = [0u64; LATENCY_BUCKETS];
    for c in counters {
        stats.submitted += c.submitted.get();
        stats.rejected += c.rejected.get();
        stats.completed += c.completed.get();
        stats.failed += c.failed.get();
        stats.batches += c.batches.get();
        stats.largest_batch = stats
            .largest_batch
            .max(c.largest_batch.get().max(0) as usize);
        stats.stream_sessions += c.stream_sessions.get();
        stats.stream_chunks += c.stream_chunks.get();
        c.queue_wait.add_counts(&mut queue_wait);
        c.service.add_counts(&mut service);
    }
    stats.queue_wait_p50 = percentile_of(&queue_wait, 0.50);
    stats.queue_wait_p99 = percentile_of(&queue_wait, 0.99);
    stats.service_p50 = percentile_of(&service, 0.50);
    stats.service_p99 = percentile_of(&service, 0.99);
    stats
}

/// The async batched, multi-model serving front.
///
/// [`AsrServer::spawn_registry`] moves a [`ModelRegistry`] of named
/// recognisers behind [`ServeConfig::workers`] decoder worker threads
/// ([`AsrServer::spawn`] is the single-model shorthand).  Requests enter
/// through [`AsrServer::submit`] as [`DecodeRequest`]s — feature frames plus
/// routing — pass layered admission (queue bound, per-model quota,
/// per-tenant quota, each rejecting with a typed scope), and fan out to
/// whichever worker is idle.  Each worker lazily builds and keeps **one
/// long-lived phone decoder per (model, version)** it serves and coalesces
/// pending requests into micro-batches that never mix models or versions —
/// the serving-scale version of [`Recognizer::decode_batch`]'s one-scorer
/// amortisation, replicated M ways and per model.  Stream sessions are
/// pinned to one worker each and pin the model version they opened under.
/// With a sharded backend each worker's shard pools survive across
/// utterances, so a warm server decodes indefinitely without spawning a
/// single thread.
///
/// [`AsrServer::swap_model`] hot-swaps the version a name resolves to:
/// requests admitted before the swap finish on the version that admitted
/// them, new admissions decode on the new one, and the queue never drains.
///
/// Dropping the server closes the queue, drains the already-accepted
/// requests, and joins every worker; see [`AsrServer::close`] for the
/// explicit form.
///
/// [`Recognizer::decode_batch`]: asr_core::Recognizer::decode_batch
#[derive(Debug)]
pub struct AsrServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl AsrServer {
    /// Spawns a single-model server: `recognizer` registered as
    /// [`DEFAULT_MODEL`], every unnamed request routed to it.  Shorthand for
    /// [`AsrServer::spawn_registry`] with a one-entry registry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a bad serving configuration
    /// and [`ServeError::Decode`] when the recogniser's backend fails to
    /// build.
    pub fn spawn(recognizer: Recognizer, config: ServeConfig) -> Result<Self, ServeError> {
        Self::spawn_registry(
            ModelRegistry::new().register(DEFAULT_MODEL, recognizer)?,
            config,
        )
    }

    /// [`AsrServer::spawn`] with request tracing: every admitted request's
    /// span events record through `telemetry` (pass
    /// [`Telemetry::disabled`] for the plain untraced server — that is
    /// exactly what [`AsrServer::spawn`] does).
    ///
    /// # Errors
    ///
    /// As [`AsrServer::spawn`].
    pub fn spawn_observed(
        recognizer: Recognizer,
        config: ServeConfig,
        telemetry: Telemetry,
    ) -> Result<Self, ServeError> {
        Self::spawn_registry_observed(
            ModelRegistry::new().register(DEFAULT_MODEL, recognizer)?,
            config,
            telemetry,
        )
    }

    /// Validates `config` and `registry`, probes every model's backend, and
    /// starts the worker threads serving all registered models side by side.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a bad serving configuration
    /// or an invalid registry, [`ServeError::UnknownModel`] when the
    /// registry's default names an unregistered model, and
    /// [`ServeError::Decode`] when a model's backend fails to build.
    pub fn spawn_registry(
        registry: ModelRegistry,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::spawn_registry_observed(registry, config, Telemetry::disabled())
    }

    /// [`AsrServer::spawn_registry`] with request tracing; see
    /// [`AsrServer::spawn_observed`].
    ///
    /// # Errors
    ///
    /// As [`AsrServer::spawn_registry`].
    pub fn spawn_registry_observed(
        registry: ModelRegistry,
        config: ServeConfig,
        telemetry: Telemetry,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let (models, default) = registry.into_parts()?;
        let metrics = MetricsRegistry::new();
        let mut map = HashMap::with_capacity(models.len());
        let mut default_name: Option<Arc<str>> = None;
        for (name, recognizer) in models {
            // Probe the backend once per model so a bad config fails at
            // spawn, not on the first routed request; the workers build
            // their own long-lived decoders lazily per (model, version).
            drop(recognizer.phone_decoder()?);
            let name: Arc<str> = name.into();
            if *name == *default {
                default_name = Some(Arc::clone(&name));
            }
            let version = Arc::new(ModelVersion {
                name: Arc::clone(&name),
                version: 1,
                recognizer,
            });
            let counters = Counters::register(&metrics, &name);
            map.insert(
                name,
                ModelState {
                    current: RwLock::new(version),
                    counters,
                },
            );
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            models: map,
            default_model: default_name.expect("into_parts validated the default name"),
            next_stream_id: AtomicU64::new(0),
            hardware: Mutex::new(vec![HashMap::new(); config.workers]),
            metrics,
            telemetry,
        });
        let workers = (0..config.workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("asr-serve-worker-{worker}"))
                    .spawn(move || worker_loop(worker, &shared, &config))
                    .expect("spawning a serve worker thread failed")
            })
            .collect();
        Ok(AsrServer {
            shared,
            workers,
            config,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The registered model names, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.models.keys().map(|n| n.to_string()).collect();
        names.sort();
        names
    }

    /// The model unnamed requests route to.
    pub fn default_model(&self) -> &str {
        &self.shared.default_model
    }

    /// The current version of a registered model (1 at spawn, +1 per
    /// [`AsrServer::swap_model`]); `None` for an unregistered name.
    pub fn model_version(&self, name: &str) -> Option<u64> {
        self.shared
            .models
            .get(name)
            .map(|m| m.current.read().expect("model slot lock poisoned").version)
    }

    /// Resolves a request's routing into the admission it decodes under: the
    /// named (or default) model's *current* version, pinned by `Arc` clone.
    fn admission_for(
        &self,
        model: Option<&str>,
        tenant: Option<String>,
    ) -> Result<Admission, ServeError> {
        let name = model.unwrap_or(&self.shared.default_model);
        let state = self
            .shared
            .models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel {
                model: name.to_string(),
            })?;
        let model = Arc::clone(&state.current.read().expect("model slot lock poisoned"));
        Ok(Admission {
            model,
            tenant: tenant.map(Arc::from),
            trace: TraceId::NONE,
        })
    }

    /// Mints the trace for a freshly resolved admission and emits its
    /// [`SpanEvent::Admitted`] — the first event of every trace.  A no-op
    /// (leaving the trace [`TraceId::NONE`]) when telemetry is disabled.
    fn trace_admission(&self, admission: &mut Admission, kind: RequestKind) {
        let telemetry = &self.shared.telemetry;
        if !telemetry.is_enabled() {
            return;
        }
        admission.trace = telemetry.begin_trace();
        telemetry.emit(
            admission.trace,
            &SpanEvent::Admitted {
                kind,
                model: Some(admission.model.name.to_string()),
                tenant: admission.tenant.as_deref().map(str::to_string),
            },
        );
    }

    /// Terminates `trace` after a failed enqueue: admission rejections map
    /// to [`SpanEvent::Rejected`] with their quota scope, a closed server
    /// to scope `"closed"` — either way the trace is balanced.
    fn trace_rejection(&self, trace: TraceId, error: &ServeError) {
        if trace.is_none() {
            return;
        }
        let scope = match error {
            ServeError::QueueFull { scope, .. } => match scope {
                QueueScope::Queue => "queue",
                QueueScope::Model(_) => "model",
                QueueScope::Tenant(_) => "tenant",
            },
            ServeError::Closed => "closed",
            _ => "error",
        };
        self.shared.telemetry.emit(
            trace,
            &SpanEvent::Rejected {
                scope: scope.to_string(),
            },
        );
    }

    /// Enqueues one utterance for decoding and returns its future.  Takes
    /// anything convertible into a [`DecodeRequest`]: plain feature frames
    /// route to the default model, `DecodeRequest::new(features).model(..)`
    /// routes by name.
    ///
    /// Never blocks: admission is a queue-bound and quota check under a
    /// short lock, and the model version is pinned here — a concurrent
    /// [`AsrServer::swap_model`] cannot retarget this request once admitted.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when the request names a model
    /// the registry does not serve, [`ServeError::QueueFull`] when an
    /// admission scope is at capacity (the request is not enqueued — the
    /// [`QueueScope`] says whether the shared queue, the model's quota, or
    /// the tenant's quota pushed back), and [`ServeError::Closed`] after
    /// [`AsrServer::close`]/drop began.
    pub fn submit(&self, request: impl Into<DecodeRequest>) -> Result<DecodeFuture, ServeError> {
        let (features, model, tenant) = request.into().into_parts();
        let mut admission = self.admission_for(model.as_deref(), tenant)?;
        self.trace_admission(&mut admission, RequestKind::Decode);
        let trace = admission.trace;
        let slot = Slot::new();
        if let Err(error) = self.enqueue(
            Command::Decode {
                features,
                slot: Arc::clone(&slot),
                admission,
            },
            true,
            true,
        ) {
            self.trace_rejection(trace, &error);
            return Err(error);
        }
        Ok(DecodeFuture::new(slot))
    }

    /// Checks the layered admission bounds under the queue lock, innermost
    /// scope last: the global queue bound, then the per-model quota, then
    /// the per-tenant quota.  Quotas count the *bounded* queued commands
    /// (decodes and stream pushes) charged to the same model / tenant.
    fn check_quotas(&self, queue: &Queue, admission: &Admission) -> Result<(), ServeError> {
        if queue.pending.len() >= self.config.max_pending {
            return Err(ServeError::QueueFull {
                capacity: self.config.max_pending,
                scope: QueueScope::Queue,
            });
        }
        if let Some(quota) = self.config.model_quota {
            let name = &admission.model.name;
            let queued = queue
                .pending
                .iter()
                .filter_map(|r| r.command.quota_scope())
                .filter(|a| a.model.name == *name)
                .count();
            if queued >= quota {
                return Err(ServeError::QueueFull {
                    capacity: quota,
                    scope: QueueScope::Model(name.to_string()),
                });
            }
        }
        if let (Some(quota), Some(tenant)) = (self.config.tenant_quota, admission.tenant.as_deref())
        {
            let queued = queue
                .pending
                .iter()
                .filter_map(|r| r.command.quota_scope())
                .filter(|a| a.tenant.as_deref() == Some(tenant))
                .count();
            if queued >= quota {
                return Err(ServeError::QueueFull {
                    capacity: quota,
                    scope: QueueScope::Tenant(tenant.to_string()),
                });
            }
        }
        Ok(())
    }

    /// Enqueues one command.  `count_submitted` is set for the commands that
    /// will eventually resolve as `completed`/`failed` (whole-utterance
    /// decodes, stream finishes), so a `stats()` snapshot never sees
    /// `completed + failed > submitted`; the increment happens while the
    /// queue lock is still held, before the batcher can complete the work.
    /// Session open/finish commands are exempt from the bounds — they carry
    /// no feature payload, and bouncing a *finish* would strand a session
    /// whose work is already done.
    fn enqueue(
        &self,
        command: Command,
        bounded: bool,
        count_submitted: bool,
    ) -> Result<(), ServeError> {
        let mut queue = self.lock_queue();
        if queue.closed {
            return Err(ServeError::Closed);
        }
        if bounded {
            let admission = command
                .admission()
                .expect("bounded commands carry an admission");
            if let Err(rejection) = self.check_quotas(&queue, admission) {
                self.shared.counters(&admission.model.name).rejected.inc();
                return Err(rejection);
            }
        }
        if count_submitted {
            let admission = command
                .admission()
                .expect("counted commands carry an admission");
            self.shared.counters(&admission.model.name).submitted.inc();
        }
        queue.pending.push_back(Request {
            command,
            enqueued: Instant::now(),
        });
        // Emit the Enqueued span while the queue lock is still held: the
        // worker cannot dequeue (and emit this trace's next event) until
        // the lock drops, so per-trace event order matches queue order.
        // One branch when telemetry is off.
        if self.shared.telemetry.is_enabled() {
            let depth = queue.pending.len();
            if let Some(admission) = queue
                .pending
                .back()
                .expect("command was just pushed")
                .command
                .admission()
            {
                if !admission.trace.is_none() {
                    self.shared
                        .telemetry
                        .emit(admission.trace, &SpanEvent::Enqueued { depth });
                }
            }
        }
        drop(queue);
        self.shared.wakeup.notify_all();
        Ok(())
    }

    /// Opens an incremental stream session on the default model: the
    /// serving-side counterpart of
    /// [`Recognizer::begin_session`](asr_core::Recognizer::begin_session).
    /// Push feature chunks as they arrive, read partial hypotheses between
    /// pushes, and [`StreamHandle::finish`] for a [`DecodeFuture`] resolving
    /// to the same result an offline decode of the concatenated chunks would
    /// produce.  Sessions share the queue with batch requests but are
    /// **pinned** to worker `id % workers`, so one worker sees a session's
    /// commands in queue order (partials stay prefix-consistent) while
    /// different sessions spread across workers; a worker skips its
    /// coalescing delay while stream commands are queued for it, so
    /// interactive sessions are not taxed with batch latency.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] after shutdown began.
    pub fn open_stream(&self) -> Result<StreamHandle<'_>, ServeError> {
        self.open_stream_with(StreamOptions::default())
    }

    /// Opens an incremental stream session with explicit routing: the model
    /// is resolved — and its version **pinned** — here, so every chunk of
    /// the session decodes on this version even across a hot-swap.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered model name
    /// and [`ServeError::Closed`] after shutdown began.
    pub fn open_stream_with(&self, options: StreamOptions) -> Result<StreamHandle<'_>, ServeError> {
        let (model, tenant) = options.into_parts();
        let mut admission = self.admission_for(model.as_deref(), tenant)?;
        self.trace_admission(&mut admission, RequestKind::Stream);
        let id = self.shared.next_stream_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(StreamState::default());
        if let Err(error) = self.enqueue(
            Command::StreamOpen {
                id,
                state: Arc::clone(&state),
                admission: admission.clone(),
            },
            false,
            false,
        ) {
            self.trace_rejection(admission.trace, &error);
            return Err(error);
        }
        self.shared
            .counters(&admission.model.name)
            .stream_sessions
            .inc();
        Ok(StreamHandle {
            server: self,
            id,
            state,
            admission,
            consumed: false,
        })
    }

    /// Hot-swaps the recogniser a model name resolves to and returns the new
    /// version number.  Lock-free for traffic: requests and stream sessions
    /// admitted before the swap finish on the version that admitted them
    /// (their `Arc` pins it), new admissions decode on the new version, and
    /// the queue never drains — the workers retire the old version's cached
    /// decoders once nothing queued references it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for an unregistered name (swap
    /// replaces versions, it does not add models) and [`ServeError::Decode`]
    /// when the new recogniser's backend fails to build — the old version
    /// keeps serving in that case.
    pub fn swap_model(&self, name: &str, recognizer: Recognizer) -> Result<u64, ServeError> {
        self.swap_model_shared(name, Arc::new(recognizer))
    }

    /// [`AsrServer::swap_model`] for an already-`Arc`-held recogniser — for
    /// models also decoded directly (parity tests swap in the same `Arc`
    /// they verify against).
    ///
    /// # Errors
    ///
    /// As [`AsrServer::swap_model`].
    pub fn swap_model_shared(
        &self,
        name: &str,
        recognizer: Arc<Recognizer>,
    ) -> Result<u64, ServeError> {
        let state = self
            .shared
            .models
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel {
                model: name.to_string(),
            })?;
        // Probe before taking the write lock: a bad backend fails the swap
        // while the old version keeps serving.
        drop(recognizer.phone_decoder()?);
        let mut slot = state.current.write().expect("model slot lock poisoned");
        let version = slot.version + 1;
        *slot = Arc::new(ModelVersion {
            name: Arc::clone(&slot.name),
            version,
            recognizer,
        });
        Ok(version)
    }

    /// A snapshot of the serving counters across every model (per-model
    /// histograms are bucket-summed before the percentile walk, so the
    /// percentiles are exact over the merged observations).
    pub fn stats(&self) -> ServeStats {
        fold_stats(self.shared.models.values().map(|m| &m.counters))
    }

    /// A point-in-time snapshot of the server's metrics registry: every
    /// per-model counter, gauge, and histogram under its stable
    /// `serve.<model>.<name>` key — the same values [`AsrServer::stats`]
    /// folds, exportable as `metric` facts
    /// ([`MetricsSnapshot::to_facts`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The server's metrics registry, so callers can register their own
    /// metrics next to the serving counters (one snapshot reads both).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The telemetry handle this server traces requests through — disabled
    /// unless spawned via [`AsrServer::spawn_observed`] /
    /// [`AsrServer::spawn_registry_observed`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// One model's slice of the serving counters; `None` for an
    /// unregistered name.  Counters survive hot-swaps — they are per name,
    /// not per version.
    pub fn model_stats(&self, name: &str) -> Option<ServeStats> {
        self.shared
            .models
            .get(name)
            .map(|m| fold_stats(std::iter::once(&m.counters)))
    }

    /// The hardware report of the whole served stream so far.  Within each
    /// worker a model's served utterances fold sequentially with
    /// [`UtteranceReport::merge`], and the worker's per-model accumulators
    /// fold sequentially too (one thread decoded them in series, in sorted
    /// name order for determinism); the per-worker reports then fold with
    /// [`UtteranceReport::merge_parallel`], since the workers decode
    /// concurrently — work counters (senones, HMM updates, energy) add
    /// across workers while frame/audio figures take the maximum instead of
    /// multiplying the wall-clock stream length by M.  With one worker and
    /// one model this is exactly the single-batcher fold.  `None` until a
    /// hardware-backed utterance completes (software backends keep no
    /// report).
    pub fn hardware_report(&self) -> Option<UtteranceReport> {
        let slots = self
            .shared
            .hardware
            .lock()
            .expect("hardware report lock poisoned");
        let mut merged: Option<UtteranceReport> = None;
        for worker in slots.iter() {
            let mut names: Vec<&Arc<str>> = worker.keys().collect();
            names.sort();
            let mut folded: Option<UtteranceReport> = None;
            for name in names {
                let report = &worker[name];
                folded = Some(match folded {
                    Some(acc) => acc.merge(report),
                    None => report.clone(),
                });
            }
            if let Some(report) = folded {
                merged = Some(match merged {
                    Some(acc) => acc.merge_parallel(&report),
                    None => report,
                });
            }
        }
        merged
    }

    /// One model's hardware report: its per-worker accumulators folded with
    /// [`UtteranceReport::merge_parallel`] (the workers decode the model
    /// concurrently).  `None` for an unregistered name or before a
    /// hardware-backed utterance of this model completes.
    pub fn model_hardware_report(&self, name: &str) -> Option<UtteranceReport> {
        let slots = self
            .shared
            .hardware
            .lock()
            .expect("hardware report lock poisoned");
        let mut merged: Option<UtteranceReport> = None;
        for worker in slots.iter() {
            if let Some(report) = worker.get(name) {
                merged = Some(match merged {
                    Some(acc) => acc.merge_parallel(report),
                    None => report.clone(),
                });
            }
        }
        merged
    }

    /// Number of requests currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock_queue().pending.len()
    }

    /// Closes the queue, waits for the already-accepted requests to finish,
    /// and joins every worker thread.  Equivalent to dropping the server,
    /// but explicit about when the blocking happens.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.shared
            .queue
            .lock()
            .expect("request queue lock poisoned")
    }

    fn shutdown(&mut self) {
        self.lock_queue().closed = true;
        self.shared.wakeup.notify_all();
        for worker in self.workers.drain(..) {
            // A panicked worker is already detached from the queue; the drain
            // below (and each Request's drop guard) fails what it left behind.
            let _ = worker.join();
        }
        // Normally empty (every worker drains its own work before exiting);
        // non-empty only if a worker died mid-stream.
        self.lock_queue().pending.clear();
    }
}

impl Drop for AsrServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client-side handle on one incremental stream session.
///
/// Obtained from [`AsrServer::open_stream`] /
/// [`AsrServer::open_stream_with`].  Chunks pushed through the handle are
/// processed in order by the server's worker; the latest partial hypothesis
/// is always readable without blocking; [`StreamHandle::finish`] converts
/// the session into a [`DecodeFuture`].  Commands of different sessions (and
/// batch submissions) interleave freely on the queue — each session has its
/// own decoder state on the worker, pinned to the model version resolved at
/// open.
///
/// Dropping the handle without finishing cancels the session: the worker
/// discards its decoder state (no result is produced, nothing counts as
/// completed or failed), so abandoned sessions cannot accumulate on a
/// long-running server.
#[derive(Debug)]
pub struct StreamHandle<'s> {
    server: &'s AsrServer,
    id: u64,
    state: Arc<StreamState>,
    /// The admission resolved at open; every push/finish of the session
    /// re-uses it, which is what pins the model version across hot-swaps.
    admission: Admission,
    /// Whether `finish` consumed the session (suppresses the cancel-on-drop).
    consumed: bool,
}

impl Drop for StreamHandle<'_> {
    fn drop(&mut self) {
        if !self.consumed {
            // Best effort: on a closed server the worker is draining anyway
            // and its session map dies with it.  The worker terminates the
            // trace when it processes the cancel; if the cancel cannot even
            // be enqueued, terminate it here so the trace stays balanced.
            if let Err(_closed) = self.server.enqueue(
                Command::StreamCancel {
                    id: self.id,
                    trace: self.admission.trace,
                },
                false,
                false,
            ) {
                self.server.shared.telemetry.emit(
                    self.admission.trace,
                    &SpanEvent::Finished {
                        outcome: Outcome::Cancelled,
                        frames: 0,
                    },
                );
            }
        }
    }
}

impl StreamHandle<'_> {
    /// The session's id (unique within its server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The model this session decodes on (resolved at open, pinned since).
    pub fn model(&self) -> &str {
        &self.admission.model.name
    }

    /// Enqueues one feature chunk for this session.
    ///
    /// Never blocks.  The chunk is cloned into the queue, so on backpressure
    /// the caller still owns the data and can retry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when an admission scope is at
    /// capacity (the chunk was not enqueued) and [`ServeError::Closed`]
    /// after shutdown began.  Decode errors inside the worker surface on
    /// [`StreamHandle::finish`], not here.
    pub fn push_chunk(&self, chunk: &[Vec<f32>]) -> Result<(), ServeError> {
        self.server.enqueue(
            Command::StreamPush {
                id: self.id,
                chunk: chunk.to_vec(),
                admission: self.admission.clone(),
            },
            true,
            false,
        )
    }

    /// The latest partial hypothesis the worker has published for this
    /// session.  Non-blocking; lags the most recent push until the worker
    /// processes it.
    pub fn partial(&self) -> PartialHypothesis {
        self.state.snapshot()
    }

    /// Closes the session and returns the future of its final result —
    /// identical to an offline decode of every chunk pushed so far (the
    /// typed empty result if none were), on the model version pinned at
    /// open.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before the
    /// finish could be enqueued.
    pub fn finish(mut self) -> Result<DecodeFuture, ServeError> {
        // Either way the handle is spent: on success the worker will remove
        // the session at the finish command; on Closed the worker is
        // draining and its session map dies with it.  Never cancel-on-drop
        // after this.
        self.consumed = true;
        let slot = Slot::new();
        if let Err(error) = self.server.enqueue(
            Command::StreamFinish {
                id: self.id,
                slot: Arc::clone(&slot),
                admission: self.admission.clone(),
            },
            false,
            true,
        ) {
            // The worker will never see this session again: terminate its
            // trace here (the error went to the caller).
            self.server.shared.telemetry.emit(
                self.admission.trace,
                &SpanEvent::Finished {
                    outcome: Outcome::Failed,
                    frames: 0,
                },
            );
            return Err(error);
        }
        Ok(DecodeFuture::new(slot))
    }

    /// Explicitly cancels the session (barge-in): the worker discards its
    /// decoder state without producing a result — nothing counts as
    /// completed or failed.  Equivalent to dropping the handle, but returns
    /// whether the cancel was actually enqueued, so callers can distinguish
    /// a delivered barge-in from a server already shutting down.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down first (the
    /// worker's session map dies with it, so the session is gone either
    /// way).
    pub fn cancel(mut self) -> Result<(), ServeError> {
        self.consumed = true;
        let result = self.server.enqueue(
            Command::StreamCancel {
                id: self.id,
                trace: self.admission.trace,
            },
            false,
            false,
        );
        if result.is_err() {
            // As in drop: the worker will never terminate this trace.
            self.server.shared.telemetry.emit(
                self.admission.trace,
                &SpanEvent::Finished {
                    outcome: Outcome::Cancelled,
                    frames: 0,
                },
            );
        }
        result
    }
}

/// Closes the queue and fails every pending request: each dropped `Request`
/// fires its drop guard, so pending futures resolve to
/// [`ServeError::Closed`] instead of hanging.  Recovers the queue lock even
/// when the caller is panicking with it poisoned.
fn fail_pending(shared: &Shared) {
    let mut queue = shared
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    queue.closed = true;
    queue.pending.clear();
    drop(queue);
    shared.wakeup.notify_all();
}

/// Fails the queue when a worker dies by *panic*.  Without this, a panicking
/// worker (e.g. a poisoned lock, a backend bug) would leave `closed ==
/// false`: `submit` would keep accepting requests that nothing will ever
/// dequeue, and their futures would hang until the server itself is dropped.
/// A normal worker exit must NOT trigger it: with M workers, one worker
/// returning from its loop (queue closed, nothing left *for it*) must not
/// clear commands still pending for its siblings.
struct CloseOnExit<'a>(&'a Shared);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            fail_pending(self.0);
        }
    }
}

/// One live stream session on a worker: the incremental decoder (owning an
/// `Arc` of the model version pinned at open) plus the shared state its
/// partials publish into.  The whole entry degrades to the first error the
/// session hit; the finish command collects it.
type WorkerStream = Result<(SharedDecodeSession, Arc<StreamState>), ServeError>;

/// The worker's long-lived decoder for one model version, built on first
/// use and evicted once a hot-swap retires the version.
fn decoder_for<'d>(
    decoders: &'d mut HashMap<(Arc<str>, u64), PhoneDecoder>,
    model: &ModelVersion,
) -> Result<&'d mut PhoneDecoder, ServeError> {
    use std::collections::hash_map::Entry;
    match decoders.entry((Arc::clone(&model.name), model.version)) {
        Entry::Occupied(entry) => Ok(entry.into_mut()),
        Entry::Vacant(vacant) => Ok(vacant.insert(model.recognizer.phone_decoder()?)),
    }
}

/// Folds a decoded utterance's outcome into its model's counters and
/// `worker`'s per-model hardware accumulator (sequential
/// [`UtteranceReport::merge`] within a worker; the parallel fold across
/// workers happens at read time in [`AsrServer::hardware_report`]).
fn record_outcome(
    shared: &Shared,
    worker: usize,
    model: &Arc<str>,
    outcome: &Result<asr_core::DecodeResult, ServeError>,
) {
    let c = shared.counters(model);
    match outcome {
        Ok(result) => {
            c.completed.inc();
            if let Some(report) = &result.hardware {
                let mut slots = shared
                    .hardware
                    .lock()
                    .expect("hardware report lock poisoned");
                let merged = match slots[worker].remove(model) {
                    Some(acc) => acc.merge(report),
                    None => report.clone(),
                };
                slots[worker].insert(Arc::clone(model), merged);
            }
        }
        Err(_) => {
            c.failed.inc();
        }
    }
}

/// One decoder worker: wait for commands it may take, coalesce, decode,
/// fulfil — until the queue is closed *and* holds nothing for this worker.
/// Whole-utterance decodes run through the worker's long-lived per-(model,
/// version) decoder; each stream session pinned here owns its own
/// incremental decoder state in `sessions` (interleaved sessions cannot
/// share CDS / arena state).  Requests this worker does not take (streams
/// pinned to a sibling, decodes of a model other than the flush's anchor)
/// are left in place, in order.
fn worker_loop(worker: usize, shared: &Shared, config: &ServeConfig) {
    let workers = config.workers;
    let _close_on_exit = CloseOnExit(shared);
    let mut sessions: HashMap<u64, WorkerStream> = HashMap::new();
    let mut decoders: HashMap<(Arc<str>, u64), PhoneDecoder> = HashMap::new();
    let mine = |queue: &Queue| {
        queue
            .pending
            .iter()
            .filter(|r| r.command.belongs_to(worker, workers))
            .count()
    };
    let my_stream = |queue: &Queue| {
        queue
            .pending
            .iter()
            .any(|r| r.command.is_stream() && r.command.belongs_to(worker, workers))
    };
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("request queue lock poisoned");
            // Sleep until there is work for this worker (or shutdown with
            // nothing left that it could ever take — a decode belongs to
            // everyone, so no worker exits while decodes remain, and a
            // pinned stream command is only ever left for a live sibling).
            loop {
                if mine(&queue) > 0 {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = shared
                    .wakeup
                    .wait(queue)
                    .expect("request queue lock poisoned");
            }
            // Micro-batching: give later requests until the *oldest* pending
            // request of this worker has waited `max_batch_delay` to join
            // this flush, unless the batch is already full, the server is
            // draining for shutdown (then latency no longer buys anything),
            // or a stream command is queued for this worker (streams are
            // latency-bound: their chunks gain nothing from coalescing with
            // batch traffic).  Anchoring the deadline at enqueue time means
            // a request that already waited out a previous flush's decode is
            // not made to wait a fresh window on top.
            if mine(&queue) < config.max_batch && !queue.closed && !my_stream(&queue) {
                let deadline = queue
                    .pending
                    .iter()
                    .find(|r| r.command.belongs_to(worker, workers))
                    .expect("this worker has pending work here")
                    .enqueued
                    + config.max_batch_delay;
                while mine(&queue) < config.max_batch && !queue.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .wakeup
                        .wait_timeout(queue, deadline - now)
                        .expect("request queue lock poisoned");
                    queue = guard;
                    if my_stream(&queue) {
                        break;
                    }
                }
            }
            // Take up to max_batch of this worker's requests, preserving
            // their relative order; everything else stays queued, in order,
            // for the other workers (or this worker's next flush).  Decodes
            // coalesce per model *version*: the first decode taken anchors
            // the flush, and a decode admitted under any other version —
            // a different model, or the same name across a hot-swap — stays
            // queued.  Micro-batches never mix models or versions, so one
            // warmed scorer serves the whole flush; stream commands ride
            // along regardless, each session owning its pinned decoder.
            let mut batch = Vec::new();
            let mut anchor: Option<Arc<ModelVersion>> = None;
            let mut rest = VecDeque::with_capacity(queue.pending.len());
            for request in queue.pending.drain(..) {
                let take = batch.len() < config.max_batch
                    && request.command.belongs_to(worker, workers)
                    && match (&request.command, &anchor) {
                        (Command::Decode { admission, .. }, Some(pin)) => {
                            Arc::ptr_eq(pin, &admission.model)
                        }
                        _ => true,
                    };
                if take {
                    if anchor.is_none() {
                        if let Command::Decode { admission, .. } = &request.command {
                            anchor = Some(Arc::clone(&admission.model));
                        }
                    }
                    batch.push(request);
                } else {
                    rest.push_back(request);
                }
            }
            queue.pending = rest;
            batch
        };
        // Taking a batch may have freed queue capacity and left work for
        // siblings (or other models) in front; wake them in case they slept
        // through the original notify while this worker held the lock.
        shared.wakeup.notify_all();

        // Work outside the lock so submissions stay non-blocking.  Commands
        // run in arrival order: whole-utterance decodes stream through the
        // anchor version's long-lived decoder (`decode_batch_with`'s
        // amortisation, unrolled per request so a bad utterance fails alone
        // instead of poisoning its batch neighbours), and stream commands
        // advance their session's own incremental state.
        let decodes = batch
            .iter()
            .filter(|r| matches!(r.command, Command::Decode { .. }))
            .count();
        if decodes > 0 {
            let anchor_name = batch
                .iter()
                .find_map(|r| match &r.command {
                    Command::Decode { admission, .. } => Some(&admission.model.name),
                    _ => None,
                })
                .expect("a flush with decodes has an anchor");
            let c = shared.counters(anchor_name);
            c.batches.inc();
            c.largest_batch.set_max(decodes as i64);
            // Every coalesced decode's trace records the flush it rode in.
            if shared.telemetry.is_enabled() {
                for request in &batch {
                    if let Command::Decode { admission, .. } = &request.command {
                        shared.telemetry.emit(
                            admission.trace,
                            &SpanEvent::BatchFormed {
                                worker,
                                batch: decodes,
                            },
                        );
                    }
                }
            }
        }
        for request in batch {
            match &request.command {
                Command::Decode {
                    features,
                    slot,
                    admission,
                } => {
                    let model = &admission.model;
                    let c = shared.counters(&model.name);
                    c.queue_wait.record(request.enqueued.elapsed());
                    shared
                        .telemetry
                        .emit(admission.trace, &SpanEvent::DecodeStarted { worker });
                    let started = Instant::now();
                    let outcome = match decoder_for(&mut decoders, model) {
                        Ok(decoder) => {
                            let mut decode = || {
                                model
                                    .recognizer
                                    .decode_features_with(features, decoder)
                                    .map_err(ServeError::from)
                            };
                            if admission.trace.is_none() {
                                decode()
                            } else {
                                // Pin the trace as this thread's ambient one
                                // so layers below the decode call (the shard
                                // pool's spawn) can attribute their events.
                                asr_obs::with_trace(admission.trace, decode)
                            }
                        }
                        Err(e) => Err(e),
                    };
                    c.service.record(started.elapsed());
                    record_outcome(shared, worker, &model.name, &outcome);
                    shared.telemetry.emit(
                        admission.trace,
                        &SpanEvent::Finished {
                            outcome: match &outcome {
                                Ok(_) => Outcome::Completed,
                                Err(_) => Outcome::Failed,
                            },
                            frames: features.len(),
                        },
                    );
                    slot.fulfil(outcome);
                }
                Command::StreamOpen {
                    id,
                    state,
                    admission,
                } => {
                    let entry = SharedDecodeSession::begin(Arc::clone(&admission.model.recognizer))
                        .map(|session| (session, Arc::clone(state)))
                        .map_err(ServeError::from);
                    sessions.insert(*id, entry);
                }
                Command::StreamPush {
                    id,
                    chunk,
                    admission,
                } => {
                    shared.counters(&admission.model.name).stream_chunks.inc();
                    if let Some(entry) = sessions.get_mut(id) {
                        if let Ok((session, state)) = entry {
                            // Timestamps only when traced: the disabled
                            // path pays one branch per push.
                            let started = shared.telemetry.is_enabled().then(Instant::now);
                            match session.push_chunk(chunk) {
                                Ok(()) => {
                                    let partial = session.partial();
                                    if let Some(started) = started {
                                        shared.telemetry.emit(
                                            admission.trace,
                                            &SpanEvent::PartialEmitted {
                                                words: partial.words.len(),
                                                latency_us: started
                                                    .elapsed()
                                                    .as_micros()
                                                    .min(u64::MAX as u128)
                                                    as u64,
                                            },
                                        );
                                    }
                                    state.store(partial);
                                }
                                // The session degrades to its first error;
                                // finish() will deliver it.
                                Err(e) => *entry = Err(ServeError::from(e)),
                            }
                        }
                    }
                }
                Command::StreamFinish {
                    id,
                    slot,
                    admission,
                } => {
                    let c = shared.counters(&admission.model.name);
                    c.queue_wait.record(request.enqueued.elapsed());
                    let started = Instant::now();
                    let outcome = match sessions.remove(id) {
                        Some(Ok((session, _state))) => session.finish().map_err(ServeError::from),
                        Some(Err(e)) => Err(e),
                        // Unreachable through the handle API (open precedes
                        // finish in queue order on the same pinned worker);
                        // fail typed, not by hanging.
                        None => Err(ServeError::Closed),
                    };
                    c.service.record(started.elapsed());
                    record_outcome(shared, worker, &admission.model.name, &outcome);
                    shared.telemetry.emit(
                        admission.trace,
                        &SpanEvent::Finished {
                            outcome: match &outcome {
                                Ok(_) => Outcome::Completed,
                                Err(_) => Outcome::Failed,
                            },
                            frames: outcome
                                .as_ref()
                                .map_or(0, |result| result.stats.num_frames()),
                        },
                    );
                    slot.fulfil(outcome);
                }
                Command::StreamCancel { id, trace } => {
                    // The client cancelled (explicitly or by dropping its
                    // handle): abandon the session through the decode-side
                    // cancel seam, which hard-resets the backend's
                    // per-utterance state.  No result, no completed/failed
                    // tick — but the trace terminates as cancelled.
                    if let Some(Ok((session, _state))) = sessions.remove(id) {
                        drop(session.cancel());
                    }
                    shared.telemetry.emit(
                        *trace,
                        &SpanEvent::Finished {
                            outcome: Outcome::Cancelled,
                            frames: 0,
                        },
                    );
                }
            }
        }
        // Retire decoders whose version a hot-swap replaced.  A straggler
        // admitted under the old version can still arrive (its Arc pins the
        // recogniser) — the worker just rebuilds for that flush; what must
        // not happen is a stale scorer (and its shard pool) lingering for
        // the life of the server.
        decoders.retain(|(name, version), _| {
            shared.models.get(name).is_some_and(|m| {
                m.current.read().expect("model slot lock poisoned").version == *version
            })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;
    use asr_core::{DecodeError, DecoderConfig};
    use asr_corpus::{SyntheticTask, TaskConfig, TaskGenerator};

    fn task() -> SyntheticTask {
        TaskGenerator::new(77)
            .generate(&TaskConfig::tiny())
            .unwrap()
    }

    fn recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn serves_requests_and_matches_direct_decode() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        assert_eq!(server.models(), [DEFAULT_MODEL]);
        assert_eq!(server.default_model(), DEFAULT_MODEL);
        assert_eq!(server.model_version(DEFAULT_MODEL), Some(1));
        let utterances: Vec<_> = (0..6)
            .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
            .collect();
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).unwrap())
            .collect();
        let want = direct.decode_batch(&utterances).unwrap();
        for (future, want) in futures.into_iter().zip(&want) {
            let got = future.wait().unwrap();
            assert_eq!(got.hypothesis, want.hypothesis);
            assert_eq!(got.stats.num_frames(), want.stats.num_frames());
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch >= 1);
        assert!(stats.mean_batch_size() >= 1.0);
        // The single model's slice is the whole server's story.
        assert_eq!(server.model_stats(DEFAULT_MODEL).unwrap(), stats);
        assert!(server.model_stats("missing").is_none());
        // Software backend → no hardware report stream.
        assert!(server.hardware_report().is_none());
        server.close();
    }

    #[test]
    fn unknown_models_are_typed_errors_not_default_fallbacks() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 1);
        assert!(matches!(
            server.submit(DecodeRequest::new(features).model("nope")),
            Err(ServeError::UnknownModel { model }) if model == "nope"
        ));
        assert!(matches!(
            server.open_stream_with(StreamOptions::new().model("nope")),
            Err(ServeError::UnknownModel { model }) if model == "nope"
        ));
        assert_eq!(server.model_version("nope"), None);
        // Nothing was admitted, so nothing was counted anywhere.
        assert_eq!(server.stats().submitted, 0);
        assert_eq!(server.stats().rejected, 0);
    }

    #[test]
    fn hardware_stream_report_accumulates() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 3);
        let frames = features.len();
        let a = server.submit(features.clone()).unwrap();
        let b = server.submit(features).unwrap();
        a.wait().unwrap();
        b.wait().unwrap();
        let report = server.hardware_report().expect("hardware stream report");
        assert_eq!(report.frames, 2 * frames);
        // One model: its per-model report is the whole server's.
        let per_model = server
            .model_hardware_report(DEFAULT_MODEL)
            .expect("per-model report");
        assert_eq!(per_model.frames, report.frames);
        assert!(server.model_hardware_report("missing").is_none());
    }

    #[test]
    fn queue_full_is_typed_backpressure_not_a_drop() {
        let task = task();
        // A deliberately tiny queue and a long coalescing window so the
        // worker is still waiting while we overfill.
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default()
                .max_pending(2)
                .max_batch(64)
                .max_batch_delay(std::time::Duration::from_millis(250)),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 1);
        let mut accepted = Vec::new();
        let mut rejections = 0;
        for _ in 0..20 {
            match server.submit(features.clone()) {
                Ok(future) => accepted.push(future),
                Err(ServeError::QueueFull { capacity, scope }) => {
                    assert_eq!(capacity, 2);
                    assert_eq!(scope, QueueScope::Queue);
                    rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejections > 0, "the bound must push back");
        let stats = server.stats();
        assert_eq!(stats.rejected, rejections);
        // Every *accepted* request completes successfully — backpressure
        // refuses at the door, it never drops admitted work.
        let accepted_count = accepted.len() as u64;
        for future in accepted {
            assert!(future.wait().is_ok());
        }
        assert_eq!(server.stats().completed, accepted_count);
    }

    #[test]
    fn model_and_tenant_quotas_reject_with_their_own_scopes() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default()
                .max_batch(64)
                .max_batch_delay(std::time::Duration::from_millis(250))
                .model_quota(1)
                .tenant_quota(1),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 1);
        let mut accepted = Vec::new();
        let mut model_rejections = 0;
        for _ in 0..10 {
            match server.submit(features.clone()) {
                Ok(future) => accepted.push(future),
                Err(ServeError::QueueFull { capacity, scope }) => {
                    assert_eq!(capacity, 1);
                    assert_eq!(scope, QueueScope::Model(DEFAULT_MODEL.into()));
                    model_rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(model_rejections > 0, "the model quota must push back");
        for future in accepted.drain(..) {
            assert!(future.wait().is_ok());
        }

        // Tenant quota: tighter than the model quota cannot be exercised
        // with one model, so re-check scope precedence the other way round —
        // an anonymous request occupying the model quota still rejects a
        // tenant request at the *model* scope (model is checked first), and
        // with the model quota free the tenant scope fires.
        let mut tenant_rejections = 0;
        for _ in 0..10 {
            match server.submit(DecodeRequest::new(features.clone()).tenant("acme")) {
                Ok(future) => accepted.push(future),
                Err(ServeError::QueueFull { scope, .. }) => {
                    assert!(
                        scope == QueueScope::Model(DEFAULT_MODEL.into())
                            || scope == QueueScope::Tenant("acme".into()),
                        "unexpected scope {scope:?}"
                    );
                    tenant_rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(tenant_rejections > 0, "a quota must push back");
        for future in accepted {
            assert!(future.wait().is_ok());
        }
        assert_eq!(
            server.stats().rejected,
            model_rejections + tenant_rejections
        );
    }

    #[test]
    fn close_drains_accepted_requests_then_rejects_new_ones() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default().max_batch_delay(std::time::Duration::from_millis(100)),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 5);
        let futures: Vec<_> = (0..4)
            .map(|_| server.submit(features.clone()).unwrap())
            .collect();
        server.close();
        for future in futures {
            // Accepted before close → decoded during the drain, not failed.
            assert_eq!(future.wait().unwrap().hypothesis.words, reference);
        }
    }

    #[test]
    fn submissions_after_close_fail_closed() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        // Close via the explicit path, keeping a handle: mimic with drop
        // ordering instead — mark closed through a second scope.
        let (features, _) = task.synthesize_utterance(1, 0.2, 2);
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(server.submit(features), Err(ServeError::Closed)));
    }

    #[test]
    fn a_bad_utterance_fails_alone_without_poisoning_the_batch() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            // Force everything into one coalesced batch.
            ServeConfig::default()
                .max_batch(8)
                .max_batch_delay(std::time::Duration::from_millis(100)),
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 4);
        let bad = vec![vec![0.0f32; dim + 1]];
        let first = server.submit(good.clone()).unwrap();
        let poison = server.submit(bad).unwrap();
        let last = server.submit(good).unwrap();
        assert_eq!(first.wait().unwrap().hypothesis.words, reference);
        assert!(matches!(
            poison.wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(last.wait().unwrap().hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
    }

    fn bare_shared(workers: usize) -> Shared {
        let task = task();
        let name: Arc<str> = Arc::from(DEFAULT_MODEL);
        let version = Arc::new(ModelVersion {
            name: Arc::clone(&name),
            version: 1,
            recognizer: Arc::new(recognizer(&task, DecoderConfig::simd())),
        });
        let metrics = MetricsRegistry::new();
        let mut models = HashMap::new();
        models.insert(
            Arc::clone(&name),
            ModelState {
                current: RwLock::new(version),
                counters: Counters::register(&metrics, &name),
            },
        );
        Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            models,
            default_model: name,
            next_stream_id: AtomicU64::new(0),
            hardware: Mutex::new(vec![HashMap::new(); workers]),
            metrics,
            telemetry: Telemetry::disabled(),
        }
    }

    fn enqueue_decode(shared: &Shared) -> DecodeFuture {
        let slot = Slot::new();
        let model = Arc::clone(
            &shared.models[&*shared.default_model]
                .current
                .read()
                .unwrap(),
        );
        shared.queue.lock().unwrap().pending.push_back(Request {
            command: Command::Decode {
                features: Vec::new(),
                slot: Arc::clone(&slot),
                admission: Admission {
                    model,
                    tenant: None,
                    trace: TraceId::NONE,
                },
            },
            enqueued: Instant::now(),
        });
        DecodeFuture::new(slot)
    }

    #[test]
    fn a_dying_worker_closes_the_queue_and_fails_pending_futures() {
        // Drive the failure path directly: whatever takes a worker down, the
        // queue must close and pending futures must resolve instead of
        // hanging.
        let shared = bare_shared(1);
        let future = enqueue_decode(&shared);
        fail_pending(&shared);
        assert!(shared.queue.lock().unwrap().closed);
        assert!(matches!(future.wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn the_exit_guard_fires_on_panic_but_not_on_normal_exit() {
        // Normal exit: a worker returning from its loop must leave the queue
        // open and its siblings' pending work intact.
        let shared = bare_shared(2);
        let future = enqueue_decode(&shared);
        drop(CloseOnExit(&shared));
        assert!(!shared.queue.lock().unwrap().closed);
        assert_eq!(shared.queue.lock().unwrap().pending.len(), 1);

        // Panic: the guard must close the queue and fail what is pending.
        let shared = Arc::new(shared);
        let panicking = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let _guard = CloseOnExit(&panicking);
            panic!("synthetic worker death");
        });
        assert!(handle.join().is_err());
        assert!(shared.queue.lock().unwrap().closed);
        assert!(matches!(future.wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn stream_session_matches_offline_decode() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 21);
        let offline = direct.decode_features(&features).unwrap();

        let handle = server.open_stream().unwrap();
        assert_eq!(handle.model(), DEFAULT_MODEL);
        for chunk in features.chunks(3) {
            handle.push_chunk(chunk).unwrap();
        }
        let result = handle.finish().unwrap().wait().unwrap();
        assert_eq!(result.hypothesis.words, reference);
        assert_eq!(result.hypothesis, offline.hypothesis);
        assert_eq!(result.best_score.raw(), offline.best_score.raw());
        assert_eq!(result.stats.num_frames(), features.len());
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 1);
        assert_eq!(stats.stream_chunks as usize, features.len().div_ceil(3));
        assert_eq!(stats.completed, 1);
        // The finish counted as submitted work: completed never outruns it.
        assert_eq!(stats.submitted, 1);
        server.close();
    }

    #[test]
    fn dropped_stream_handles_cancel_their_worker_sessions() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 81);
        {
            let handle = server.open_stream().unwrap();
            handle.push_chunk(&features).unwrap();
            // Dropped here without finish: the worker discards the session.
        }
        // Subsequent traffic is unaffected, and the abandoned session never
        // produced a result tick.
        let got = server.submit(features.clone()).unwrap().wait().unwrap();
        assert_eq!(got.hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 1);
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        server.close();
    }

    #[test]
    fn explicit_stream_cancel_is_a_delivered_barge_in() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(1)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 83);

        // Cancel one session mid-utterance while a sibling keeps decoding.
        let doomed = server.open_stream().unwrap();
        let survivor = server.open_stream().unwrap();
        doomed.push_chunk(&features[..features.len() / 2]).unwrap();
        survivor.push_chunk(&features).unwrap();
        doomed.cancel().unwrap();

        // The survivor (and fresh traffic) is unaffected; the cancelled
        // session produced no completed/failed tick.
        let got = survivor.finish().unwrap().wait().unwrap();
        assert_eq!(got.hypothesis.words, reference);
        let got = server.submit(features.clone()).unwrap().wait().unwrap();
        assert_eq!(got.hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.stream_sessions, 2);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        server.close();
        // Cancelling after shutdown reports Closed instead of pretending the
        // barge-in was delivered.
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let handle = server.open_stream().unwrap();
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(handle.cancel(), Err(ServeError::Closed)));
    }

    #[test]
    fn interleaved_streams_and_batch_requests_stay_isolated() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (first, first_ref) = task.synthesize_utterance(1, 0.2, 31);
        let (second, second_ref) = task.synthesize_utterance(2, 0.2, 32);
        let (batch_utt, batch_ref) = task.synthesize_utterance(1, 0.2, 33);
        let want_first = direct.decode_features(&first).unwrap();
        let want_second = direct.decode_features(&second).unwrap();

        // Two sessions interleaved chunk by chunk, with a whole-utterance
        // request racing through the same queue.
        let a = server.open_stream().unwrap();
        let b = server.open_stream().unwrap();
        assert_ne!(a.id(), b.id());
        let batch_future = server.submit(batch_utt).unwrap();
        let mut ai = first.chunks(2);
        let mut bi = second.chunks(2);
        loop {
            match (ai.next(), bi.next()) {
                (None, None) => break,
                (chunk_a, chunk_b) => {
                    if let Some(chunk) = chunk_a {
                        a.push_chunk(chunk).unwrap();
                    }
                    if let Some(chunk) = chunk_b {
                        b.push_chunk(chunk).unwrap();
                    }
                }
            }
        }
        let got_a = a.finish().unwrap().wait().unwrap();
        let got_b = b.finish().unwrap().wait().unwrap();
        assert_eq!(got_a.hypothesis.words, first_ref);
        assert_eq!(got_b.hypothesis.words, second_ref);
        assert_eq!(got_a.hypothesis, want_first.hypothesis);
        assert_eq!(got_b.hypothesis, want_second.hypothesis);
        assert_eq!(batch_future.wait().unwrap().hypothesis.words, batch_ref);
        assert_eq!(server.stats().completed, 3);
    }

    #[test]
    fn stream_partials_are_published_and_prefix_consistent() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(3, 0.2, 41);
        let handle = server.open_stream().unwrap();
        assert_eq!(handle.partial(), PartialHypothesis::default());
        let mut previous = PartialHypothesis::default();
        for chunk in features.chunks(4) {
            handle.push_chunk(chunk).unwrap();
            // The worker publishes asynchronously; wait for it to catch up
            // so the snapshot is deterministic.
            while handle.partial().frames < previous.frames + chunk.len() {
                std::thread::yield_now();
            }
            let partial = handle.partial();
            assert!(partial.words.starts_with(&previous.words));
            previous = partial;
        }
        assert!(!previous.words.is_empty());
        let result = handle.finish().unwrap().wait().unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn empty_stream_session_resolves_to_the_typed_empty_result() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let handle = server.open_stream().unwrap();
        let result = handle.finish().unwrap().wait().unwrap();
        assert!(result.is_empty());
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn a_bad_chunk_fails_the_session_at_finish_not_its_neighbours() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 51);
        let poisoned = server.open_stream().unwrap();
        let healthy = server.open_stream().unwrap();
        poisoned.push_chunk(&[vec![0.0; dim + 2]]).unwrap();
        // Later pushes to the failed session are absorbed, not decoded.
        poisoned.push_chunk(&good).unwrap();
        healthy.push_chunk(&good).unwrap();
        assert!(matches!(
            poisoned.finish().unwrap().wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(
            healthy.finish().unwrap().wait().unwrap().hypothesis.words,
            reference
        );
        let stats = server.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn streams_cannot_be_opened_or_pushed_after_close() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 61);
        let handle = server.open_stream().unwrap();
        handle.push_chunk(&features).unwrap();
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(
            handle.push_chunk(&features),
            Err(ServeError::Closed)
        ));
        assert!(matches!(server.open_stream(), Err(ServeError::Closed)));
        assert!(matches!(handle.finish(), Err(ServeError::Closed)));
    }

    #[test]
    fn stream_hardware_reports_fold_into_the_server_report() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 71);
        let frames = features.len();
        let handle = server.open_stream().unwrap();
        handle.push_chunk(&features).unwrap();
        handle.finish().unwrap().wait().unwrap();
        let direct = server.submit(features).unwrap();
        direct.wait().unwrap();
        let report = server.hardware_report().expect("merged stream report");
        assert_eq!(report.frames, 2 * frames);
    }

    #[test]
    fn futures_are_pollable_on_an_executor() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 6);
        let future = server.submit(features).unwrap();
        let result = block_on(future).unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn spawn_rejects_invalid_configs_up_front() {
        let task = task();
        let bad_serve = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default().max_batch(0),
        );
        assert!(matches!(bad_serve, Err(ServeError::InvalidConfig(_))));
        // A recogniser whose backend cannot build fails at spawn, not on the
        // first request.  (An invalid SoC config is rejected by Recognizer::new
        // already, so exercise the path through a valid-at-construction but
        // unbuildable sharded config is impossible — instead check the
        // spawn-time decoder probe succeeds for a sharded backend.)
        let sharded = AsrServer::spawn(
            recognizer(&task, DecoderConfig::sharded_hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 9);
        assert_eq!(
            sharded
                .submit(features)
                .unwrap()
                .wait()
                .unwrap()
                .hypothesis
                .words,
            reference
        );
        assert!(sharded.hardware_report().is_some());
    }

    /// The histogram itself (promoted to `asr-obs`) is unit-tested there;
    /// here: the registry-backed counters surface through both `stats()`
    /// and the named `metrics()` snapshot, and an observed server's traces
    /// are balanced.
    #[test]
    fn metrics_snapshot_mirrors_stats_and_traces_balance() {
        use asr_obs::MetricValue;
        let task = task();
        let (telemetry, sink) = Telemetry::to_memory();
        let server = AsrServer::spawn_observed(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
            telemetry,
        )
        .unwrap();
        assert!(server.telemetry().is_enabled());
        let (features, _) = task.synthesize_utterance(1, 0.2, 21);
        for _ in 0..3 {
            server.submit(features.clone()).unwrap().wait().unwrap();
        }
        let stats = server.stats();
        let snapshot = server.metrics();
        assert_eq!(
            snapshot.get(&format!("serve.{DEFAULT_MODEL}.completed")),
            Some(&MetricValue::Counter(stats.completed))
        );
        assert_eq!(
            snapshot.get(&format!("serve.{DEFAULT_MODEL}.submitted")),
            Some(&MetricValue::Counter(3))
        );
        match snapshot.get(&format!("serve.{DEFAULT_MODEL}.queue_wait_us")) {
            Some(MetricValue::Histogram { total, p50, .. }) => {
                assert_eq!(*total, 3);
                assert_eq!(*p50, stats.queue_wait_p50);
            }
            other => panic!("bad queue_wait metric: {other:?}"),
        }
        // Three decode traces, each Admitted → … → exactly one terminal.
        let spans = sink.facts();
        let mut by_trace: HashMap<u64, Vec<&asr_obs::Fact>> = HashMap::new();
        for fact in &spans {
            assert_eq!(fact.kind, "span");
            let trace = fact.field("trace").and_then(|v| v.as_u64()).unwrap();
            by_trace.entry(trace).or_default().push(fact);
        }
        assert_eq!(by_trace.len(), 3);
        for events in by_trace.values() {
            let names: Vec<&str> = events
                .iter()
                .map(|f| f.field("event").and_then(|v| v.as_str()).unwrap())
                .collect();
            assert_eq!(names.first(), Some(&"admitted"));
            assert_eq!(names.last(), Some(&"finished"));
            assert_eq!(
                names.iter().filter(|n| **n == "finished").count(),
                1,
                "one terminal per trace: {names:?}"
            );
            assert!(names.contains(&"enqueued"));
            assert!(names.contains(&"decode_started"));
        }
        server.close();
    }

    #[test]
    fn stats_expose_queue_wait_and_service_percentiles() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        assert_eq!(server.stats().queue_wait_p50, None);
        assert_eq!(server.stats().service_p50, None);
        let (features, _) = task.synthesize_utterance(1, 0.2, 13);
        for _ in 0..3 {
            server.submit(features.clone()).unwrap().wait().unwrap();
        }
        let stats = server.stats();
        let (p50, p99) = (stats.queue_wait_p50.unwrap(), stats.queue_wait_p99.unwrap());
        assert!(p50 <= p99, "p50 {p50:?} must not exceed p99 {p99:?}");
        let (s50, s99) = (stats.service_p50.unwrap(), stats.service_p99.unwrap());
        assert!(s50 <= s99);
        server.close();
    }

    #[test]
    fn multi_worker_server_matches_direct_decode() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default().workers(3),
        )
        .unwrap();
        let utterances: Vec<_> = (0..9)
            .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
            .collect();
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).unwrap())
            .collect();
        let want = direct.decode_batch(&utterances).unwrap();
        for (future, want) in futures.into_iter().zip(&want) {
            assert_eq!(future.wait().unwrap().hypothesis, want.hypothesis);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.failed, 0);
        server.close();
    }

    #[test]
    fn multi_worker_hardware_reports_fold_in_parallel() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default().workers(2),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 3);
        let frames = features.len();
        let futures: Vec<_> = (0..4)
            .map(|_| server.submit(features.clone()).unwrap())
            .collect();
        for future in futures {
            future.wait().unwrap();
        }
        let report = server.hardware_report().expect("merged stream report");
        // Frames fold with max across workers (concurrent lanes do not add
        // wall-clock audio), so the figure is between one utterance's worth
        // (perfectly even split... still >= frames) and the sequential sum.
        assert!(report.frames >= frames);
        assert!(report.frames <= 4 * frames);
        server.close();
    }

    #[test]
    fn streams_stay_pinned_and_ordered_across_workers() {
        let task = task();
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default().workers(4),
        )
        .unwrap();
        let sessions: Vec<_> = (0..6)
            .map(|i| {
                let (features, reference) = task.synthesize_utterance(1, 0.2, 100 + i);
                (server.open_stream().unwrap(), features, reference)
            })
            .collect();
        // Interleave every session's chunks round-robin across the one queue.
        let mut offsets = vec![0usize; sessions.len()];
        loop {
            let mut pushed = false;
            for (i, (handle, features, _)) in sessions.iter().enumerate() {
                if offsets[i] < features.len() {
                    let end = (offsets[i] + 2).min(features.len());
                    handle.push_chunk(&features[offsets[i]..end]).unwrap();
                    offsets[i] = end;
                    pushed = true;
                }
            }
            if !pushed {
                break;
            }
        }
        for (handle, features, reference) in sessions {
            let want = direct.decode_features(&features).unwrap();
            let got = handle.finish().unwrap().wait().unwrap();
            assert_eq!(got.hypothesis.words, reference);
            assert_eq!(got.hypothesis, want.hypothesis);
        }
        assert_eq!(server.stats().completed, 6);
        server.close();
    }
}
