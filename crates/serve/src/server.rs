//! The server: a bounded request queue in front of a micro-batching worker
//! thread that owns the recogniser and one long-lived phone decoder.

use crate::future::{DecodeFuture, Slot};
use crate::{ServeConfig, ServeError};
use asr_core::{PhoneDecoder, Recognizer};
use asr_hw::UtteranceReport;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// One accepted request: the features to decode and the slot to fulfil.
///
/// The drop guard is the no-dangling-future invariant: however a request
/// leaves the queue (served, drained at shutdown, or dropped because the
/// worker died), its future resolves — unserved requests fail with the typed
/// [`ServeError::Closed`] instead of hanging their caller.
#[derive(Debug)]
struct Request {
    features: Vec<Vec<f32>>,
    slot: Arc<Slot>,
    /// When the request entered the queue; the micro-batcher flushes when
    /// the *oldest* pending request has waited `max_batch_delay`.
    enqueued: Instant,
}

impl Drop for Request {
    fn drop(&mut self) {
        // No-op when the batcher already fulfilled the slot.
        self.slot.fulfil(Err(ServeError::Closed));
    }
}

#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<Request>,
    closed: bool,
}

/// Monotonic counters shared between callers and the worker.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicUsize,
}

#[derive(Debug)]
struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    counters: Counters,
    /// The stream-level hardware report: every served utterance's report
    /// folded with [`UtteranceReport::merge`] (a sequential stream through
    /// one scorer — sharded backends have already parallel-merged their
    /// shards underneath).
    hardware: Mutex<Option<UtteranceReport>>,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Requests decoded successfully.
    pub completed: u64,
    /// Requests that failed to decode (the error went to the caller).
    pub failed: u64,
    /// Micro-batches flushed to the decoder.
    pub batches: u64,
    /// Largest micro-batch flushed so far.
    pub largest_batch: usize,
}

impl ServeStats {
    /// Mean utterances per flushed batch — the amortisation the micro-batcher
    /// achieved (1.0 means no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }
}

/// The async batched serving front.
///
/// [`AsrServer::spawn`] moves a [`Recognizer`] onto a dedicated batcher
/// thread, which builds **one** phone decoder from the configured backend and
/// reuses it for every micro-batch — the serving-scale version of
/// [`Recognizer::decode_batch`]'s one-scorer amortisation.  Requests enter
/// through [`AsrServer::submit`] (bounded queue, typed backpressure) and
/// complete through their [`DecodeFuture`]s.
///
/// Dropping the server closes the queue, drains the already-accepted
/// requests, and joins the worker; see [`AsrServer::close`] for the explicit
/// form.
///
/// [`Recognizer::decode_batch`]: asr_core::Recognizer::decode_batch
#[derive(Debug)]
pub struct AsrServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    config: ServeConfig,
}

impl AsrServer {
    /// Validates `config`, builds the backend scorer, and starts the batcher
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a bad serving configuration
    /// and [`ServeError::Decode`] when the recogniser's backend fails to
    /// build.
    pub fn spawn(recognizer: Recognizer, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        // Build the long-lived decoder up front so a bad backend config fails
        // at spawn, not on the first request.
        let decoder = recognizer.phone_decoder()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            hardware: Mutex::new(None),
        });
        let worker_shared = Arc::clone(&shared);
        let worker_config = config.clone();
        let worker = std::thread::Builder::new()
            .name("asr-serve-batcher".into())
            .spawn(move || batcher_loop(&recognizer, decoder, &worker_shared, &worker_config))
            .expect("spawning the batcher thread failed");
        Ok(AsrServer {
            shared,
            worker: Some(worker),
            config,
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Enqueues one utterance for decoding and returns its future.
    ///
    /// Never blocks: admission is a queue-bound check under a short lock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when `max_pending` requests are
    /// already waiting (the request is not enqueued — retry or shed), and
    /// [`ServeError::Closed`] after [`AsrServer::close`]/drop began.
    pub fn submit(&self, features: Vec<Vec<f32>>) -> Result<DecodeFuture, ServeError> {
        let mut queue = self.lock_queue();
        if queue.closed {
            return Err(ServeError::Closed);
        }
        if queue.pending.len() >= self.config.max_pending {
            self.shared
                .counters
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: self.config.max_pending,
            });
        }
        let slot = Slot::new();
        queue.pending.push_back(Request {
            features,
            slot: Arc::clone(&slot),
            enqueued: Instant::now(),
        });
        // Counted while still holding the queue lock: once it drops, the
        // batcher may complete the request, and a stats() snapshot must
        // never see completed > submitted.
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.shared.wakeup.notify_all();
        Ok(DecodeFuture::new(slot))
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// The hardware report of the whole served stream so far: every decoded
    /// utterance's report folded with [`UtteranceReport::merge`].  `None`
    /// until a hardware-backed utterance completes (software backends keep no
    /// report).
    pub fn hardware_report(&self) -> Option<UtteranceReport> {
        self.shared
            .hardware
            .lock()
            .expect("hardware report lock poisoned")
            .clone()
    }

    /// Number of requests currently waiting in the queue.
    pub fn pending(&self) -> usize {
        self.lock_queue().pending.len()
    }

    /// Closes the queue, waits for the already-accepted requests to finish,
    /// and joins the batcher thread.  Equivalent to dropping the server, but
    /// explicit about when the blocking happens.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.shared
            .queue
            .lock()
            .expect("request queue lock poisoned")
    }

    fn shutdown(&mut self) {
        self.lock_queue().closed = true;
        self.shared.wakeup.notify_all();
        if let Some(worker) = self.worker.take() {
            // A panicked worker is already detached from the queue; the drain
            // below (and each Request's drop guard) fails what it left behind.
            let _ = worker.join();
        }
        // Normally empty (the worker drains before exiting); non-empty only
        // if the worker died mid-stream.
        self.lock_queue().pending.clear();
    }
}

impl Drop for AsrServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Closes the queue and fails its pending requests when the worker exits —
/// including by panic.  Without this, a panicking worker (e.g. a poisoned
/// lock) would leave `closed == false`: `submit` would keep accepting
/// requests that nothing will ever dequeue, and their futures would hang
/// until the server itself is dropped.  A no-op on the normal exit path,
/// where the queue is already closed and drained.
struct CloseOnExit<'a>(&'a Shared);

impl Drop for CloseOnExit<'_> {
    fn drop(&mut self) {
        // Recover the queue even if the panic poisoned its lock.
        let mut queue = self
            .0
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        queue.closed = true;
        // Dropping the requests fires their drop guards: every pending
        // future resolves to `ServeError::Closed` instead of hanging.
        queue.pending.clear();
        drop(queue);
        self.0.wakeup.notify_all();
    }
}

/// The worker: wait for requests, coalesce, decode, fulfil — until the queue
/// is closed *and* drained.
fn batcher_loop(
    recognizer: &Recognizer,
    mut decoder: PhoneDecoder,
    shared: &Shared,
    config: &ServeConfig,
) {
    let _close_on_exit = CloseOnExit(shared);
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("request queue lock poisoned");
            // Sleep until there is work (or shutdown with nothing left).
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.closed {
                    return;
                }
                queue = shared
                    .wakeup
                    .wait(queue)
                    .expect("request queue lock poisoned");
            }
            // Micro-batching: give later requests until the *oldest* pending
            // request has waited `max_batch_delay` to join this flush, unless
            // the batch is already full or the server is draining for
            // shutdown (then latency no longer buys anything).  Anchoring the
            // deadline at enqueue time means a request that already waited
            // out a previous flush's decode is not made to wait a fresh
            // window on top.
            if queue.pending.len() < config.max_batch && !queue.closed {
                let deadline = queue
                    .pending
                    .front()
                    .expect("pending is non-empty here")
                    .enqueued
                    + config.max_batch_delay;
                while queue.pending.len() < config.max_batch && !queue.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .wakeup
                        .wait_timeout(queue, deadline - now)
                        .expect("request queue lock poisoned");
                    queue = guard;
                }
            }
            let take = queue.pending.len().min(config.max_batch);
            queue.pending.drain(..take).collect::<Vec<Request>>()
        };

        // Decode outside the lock so submissions stay non-blocking.  The
        // coalesced batch streams through the worker's one long-lived
        // decoder — `decode_batch_with`'s amortisation, unrolled per request
        // so a bad utterance fails alone instead of poisoning (or
        // double-decoding) its batch neighbours.
        let outcomes: Vec<_> = batch
            .iter()
            .map(|request| {
                recognizer
                    .decode_features_with(&request.features, &mut decoder)
                    .map_err(ServeError::from)
            })
            .collect();

        let c = &shared.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.largest_batch.fetch_max(batch.len(), Ordering::Relaxed);
        for (request, outcome) in batch.into_iter().zip(outcomes) {
            match &outcome {
                Ok(result) => {
                    c.completed.fetch_add(1, Ordering::Relaxed);
                    if let Some(report) = &result.hardware {
                        let mut merged = shared
                            .hardware
                            .lock()
                            .expect("hardware report lock poisoned");
                        *merged = Some(match merged.take() {
                            Some(acc) => acc.merge(report),
                            None => report.clone(),
                        });
                    }
                }
                Err(_) => {
                    c.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            request.slot.fulfil(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_on;
    use asr_core::{DecodeError, DecoderConfig};
    use asr_corpus::{SyntheticTask, TaskConfig, TaskGenerator};

    fn task() -> SyntheticTask {
        TaskGenerator::new(77)
            .generate(&TaskConfig::tiny())
            .unwrap()
    }

    fn recognizer(task: &SyntheticTask, config: DecoderConfig) -> Recognizer {
        Recognizer::new(
            task.acoustic_model.clone(),
            task.dictionary.clone(),
            task.language_model.clone(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn serves_requests_and_matches_direct_decode() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let direct = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        let utterances: Vec<_> = (0..6)
            .map(|seed| task.synthesize_utterance(1, 0.2, seed).0)
            .collect();
        let futures: Vec<_> = utterances
            .iter()
            .map(|u| server.submit(u.clone()).unwrap())
            .collect();
        let want = direct.decode_batch(&utterances).unwrap();
        for (future, want) in futures.into_iter().zip(&want) {
            let got = future.wait().unwrap();
            assert_eq!(got.hypothesis, want.hypothesis);
            assert_eq!(got.stats.num_frames(), want.stats.num_frames());
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
        assert!(stats.batches >= 1);
        assert!(stats.largest_batch >= 1);
        assert!(stats.mean_batch_size() >= 1.0);
        // Software backend → no hardware report stream.
        assert!(server.hardware_report().is_none());
        server.close();
    }

    #[test]
    fn hardware_stream_report_accumulates() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 3);
        let frames = features.len();
        let a = server.submit(features.clone()).unwrap();
        let b = server.submit(features).unwrap();
        a.wait().unwrap();
        b.wait().unwrap();
        let report = server.hardware_report().expect("hardware stream report");
        assert_eq!(report.frames, 2 * frames);
    }

    #[test]
    fn queue_full_is_typed_backpressure_not_a_drop() {
        let task = task();
        // A deliberately tiny queue and a long coalescing window so the
        // worker is still waiting while we overfill.
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_pending: 2,
                max_batch: 64,
                max_batch_delay: std::time::Duration::from_millis(250),
            },
        )
        .unwrap();
        let (features, _) = task.synthesize_utterance(1, 0.2, 1);
        let mut accepted = Vec::new();
        let mut rejections = 0;
        for _ in 0..20 {
            match server.submit(features.clone()) {
                Ok(future) => accepted.push(future),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejections > 0, "the bound must push back");
        let stats = server.stats();
        assert_eq!(stats.rejected, rejections);
        // Every *accepted* request completes successfully — backpressure
        // refuses at the door, it never drops admitted work.
        let accepted_count = accepted.len() as u64;
        for future in accepted {
            assert!(future.wait().is_ok());
        }
        assert_eq!(server.stats().completed, accepted_count);
    }

    #[test]
    fn close_drains_accepted_requests_then_rejects_new_ones() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_batch_delay: std::time::Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 5);
        let futures: Vec<_> = (0..4)
            .map(|_| server.submit(features.clone()).unwrap())
            .collect();
        server.close();
        for future in futures {
            // Accepted before close → decoded during the drain, not failed.
            assert_eq!(future.wait().unwrap().hypothesis.words, reference);
        }
    }

    #[test]
    fn submissions_after_close_fail_closed() {
        let task = task();
        let rec = recognizer(&task, DecoderConfig::simd());
        let server = AsrServer::spawn(rec, ServeConfig::default()).unwrap();
        // Close via the explicit path, keeping a handle: mimic with drop
        // ordering instead — mark closed through a second scope.
        let (features, _) = task.synthesize_utterance(1, 0.2, 2);
        {
            // Mark the shared queue closed exactly as shutdown does.
            server.lock_queue().closed = true;
        }
        assert!(matches!(server.submit(features), Err(ServeError::Closed)));
    }

    #[test]
    fn a_bad_utterance_fails_alone_without_poisoning_the_batch() {
        let task = task();
        let dim = task.acoustic_model.feature_dim();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                // Force everything into one coalesced batch.
                max_batch: 8,
                max_batch_delay: std::time::Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let (good, reference) = task.synthesize_utterance(1, 0.2, 4);
        let bad = vec![vec![0.0f32; dim + 1]];
        let first = server.submit(good.clone()).unwrap();
        let poison = server.submit(bad).unwrap();
        let last = server.submit(good).unwrap();
        assert_eq!(first.wait().unwrap().hypothesis.words, reference);
        assert!(matches!(
            poison.wait(),
            Err(ServeError::Decode(DecodeError::DimensionMismatch { .. }))
        ));
        assert_eq!(last.wait().unwrap().hypothesis.words, reference);
        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn a_dying_worker_closes_the_queue_and_fails_pending_futures() {
        // Drive the exit guard directly: whatever takes the batcher down
        // (panic included), the queue must close and pending futures must
        // resolve instead of hanging.
        let shared = Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            counters: Counters::default(),
            hardware: Mutex::new(None),
        };
        let slot = Slot::new();
        shared.queue.lock().unwrap().pending.push_back(Request {
            features: Vec::new(),
            slot: Arc::clone(&slot),
            enqueued: Instant::now(),
        });
        let future = DecodeFuture::new(slot);
        drop(CloseOnExit(&shared));
        assert!(shared.queue.lock().unwrap().closed);
        assert!(matches!(future.wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn futures_are_pollable_on_an_executor() {
        let task = task();
        let server = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(2, 0.2, 6);
        let future = server.submit(features).unwrap();
        let result = block_on(future).unwrap();
        assert_eq!(result.hypothesis.words, reference);
    }

    #[test]
    fn spawn_rejects_invalid_configs_up_front() {
        let task = task();
        let bad_serve = AsrServer::spawn(
            recognizer(&task, DecoderConfig::simd()),
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
        );
        assert!(matches!(bad_serve, Err(ServeError::InvalidConfig(_))));
        // A recogniser whose backend cannot build fails at spawn, not on the
        // first request.  (An invalid SoC config is rejected by Recognizer::new
        // already, so exercise the path through a valid-at-construction but
        // unbuildable sharded config is impossible — instead check the
        // spawn-time decoder build succeeds for a sharded backend.)
        let sharded = AsrServer::spawn(
            recognizer(&task, DecoderConfig::sharded_hardware(2)),
            ServeConfig::default(),
        )
        .unwrap();
        let (features, reference) = task.synthesize_utterance(1, 0.2, 9);
        assert_eq!(
            sharded
                .submit(features)
                .unwrap()
                .wait()
                .unwrap()
                .hypothesis
                .words,
            reference
        );
        assert!(sharded.hardware_report().is_some());
    }
}
